"""Unit tests for the Douglas-Peucker baselines (offline and opening-window)."""

from __future__ import annotations

import math

import pytest

from repro.core.errors import ConfigurationError
from repro.core.geometry import Point
from repro.core.trajectory import TimePoint
from repro.baselines.douglas_peucker import (
    douglas_peucker,
    perpendicular_distance,
    synchronous_distance,
)
from repro.baselines.opening_window import (
    OpeningWindowPolicy,
    OpeningWindowSimplifier,
    opening_window_simplify,
)


def zigzag(n: int, amplitude: float) -> list:
    """A trajectory oscillating around the x axis."""
    return [
        TimePoint(Point(float(i), amplitude if i % 2 else -amplitude), i) for i in range(n)
    ]


def straight(n: int) -> list:
    return [TimePoint(Point(float(i), 0.0), i) for i in range(n)]


class TestPerpendicularDistance:
    def test_point_on_segment(self):
        assert perpendicular_distance(Point(5.0, 0.0), Point(0.0, 0.0), Point(10.0, 0.0)) == 0.0

    def test_point_off_segment(self):
        assert perpendicular_distance(Point(5.0, 3.0), Point(0.0, 0.0), Point(10.0, 0.0)) == 3.0

    def test_point_beyond_endpoint_clamps(self):
        assert perpendicular_distance(Point(13.0, 4.0), Point(0.0, 0.0), Point(10.0, 0.0)) == 5.0

    def test_degenerate_segment(self):
        assert perpendicular_distance(Point(3.0, 4.0), Point(0.0, 0.0), Point(0.0, 0.0)) == 5.0


class TestSynchronousDistance:
    def test_on_time_point_has_zero_distance(self):
        start, end = TimePoint(Point(0.0, 0.0), 0), TimePoint(Point(10.0, 0.0), 10)
        assert synchronous_distance(TimePoint(Point(5.0, 0.0), 5), start, end) == 0.0

    def test_time_misalignment_is_penalised(self):
        start, end = TimePoint(Point(0.0, 0.0), 0), TimePoint(Point(10.0, 0.0), 10)
        # Spatially on the segment but two time units late.
        assert synchronous_distance(TimePoint(Point(5.0, 0.0), 7), start, end) == 2.0

    def test_degenerate_time_span(self):
        start = TimePoint(Point(0.0, 0.0), 5)
        end = TimePoint(Point(10.0, 0.0), 5)
        assert synchronous_distance(TimePoint(Point(3.0, 4.0), 5), start, end) == 4.0


class TestDouglasPeucker:
    def test_short_input_unchanged(self):
        points = straight(2)
        assert douglas_peucker(points, 1.0) == points

    def test_straight_line_collapses_to_endpoints(self):
        simplified = douglas_peucker(straight(50), tolerance=0.5)
        assert len(simplified) == 2
        assert simplified[0].timestamp == 0
        assert simplified[-1].timestamp == 49

    def test_zigzag_below_tolerance_collapses(self):
        simplified = douglas_peucker(zigzag(20, amplitude=0.4), tolerance=1.0)
        assert len(simplified) == 2

    def test_zigzag_above_tolerance_keeps_vertices(self):
        simplified = douglas_peucker(zigzag(20, amplitude=5.0), tolerance=1.0)
        assert len(simplified) > 2

    def test_simplification_respects_tolerance(self):
        """Every dropped point stays within tolerance of the simplified polyline."""
        points = [
            TimePoint(Point(float(i), math.sin(i / 3.0) * 4.0), i) for i in range(40)
        ]
        tolerance = 1.5
        simplified = douglas_peucker(points, tolerance)
        kept_times = [tp.timestamp for tp in simplified]
        for tp in points:
            # Find the simplification segment covering this timestamp.
            for left, right in zip(simplified, simplified[1:]):
                if left.timestamp <= tp.timestamp <= right.timestamp:
                    assert synchronous_distance(tp, left, right) <= tolerance + 1e-9
                    break
            else:
                pytest.fail(f"timestamp {tp.timestamp} not covered by {kept_times}")

    def test_spatial_mode(self):
        simplified = douglas_peucker(zigzag(20, amplitude=5.0), tolerance=1.0, spatiotemporal=False)
        assert len(simplified) > 2

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ConfigurationError):
            douglas_peucker(straight(5), -1.0)


class TestOpeningWindow:
    def test_invalid_tolerance(self):
        with pytest.raises(ConfigurationError):
            OpeningWindowSimplifier(0.0)

    def test_straight_line_produces_single_segment(self):
        segments = opening_window_simplify(straight(30), tolerance=0.5)
        assert len(segments) == 1
        assert segments[0].start.timestamp == 0
        assert segments[0].end.timestamp == 29

    def test_sharp_turn_splits_segments(self):
        points = straight(10) + [TimePoint(Point(9.0 - i, 10.0 + i), 10 + i) for i in range(10)]
        segments = opening_window_simplify(points, tolerance=1.0)
        assert len(segments) >= 2

    def test_segments_chain_in_time(self):
        points = zigzag(40, amplitude=3.0)
        segments = opening_window_simplify(points, tolerance=1.0)
        for previous, following in zip(segments, segments[1:]):
            assert previous.end.timestamp <= following.start.timestamp

    def test_nopw_vs_bopw_split_points(self):
        """The eager policy closes at the latest point, the conservative one earlier or equal."""
        points = straight(5) + [TimePoint(Point(float(5 + i), 5.0 * (i + 1)), 5 + i) for i in range(5)]
        nopw = opening_window_simplify(points, tolerance=1.0, policy=OpeningWindowPolicy.NOPW)
        bopw = opening_window_simplify(points, tolerance=1.0, policy=OpeningWindowPolicy.BOPW)
        assert nopw[0].end.timestamp <= bopw[0].end.timestamp

    def test_flush_emits_trailing_segment(self):
        simplifier = OpeningWindowSimplifier(1.0)
        for tp in straight(5):
            assert simplifier.observe(tp) is None
        segment = simplifier.flush()
        assert segment is not None
        assert segment.start.timestamp == 0
        assert segment.end.timestamp == 4

    def test_flush_on_trivial_window(self):
        simplifier = OpeningWindowSimplifier(1.0)
        simplifier.observe(straight(1)[0])
        assert simplifier.flush() is None

    def test_window_size_tracking(self):
        simplifier = OpeningWindowSimplifier(1.0)
        for tp in straight(4):
            simplifier.observe(tp)
        assert simplifier.window_size == 4
