"""Unit tests for the DP hot-segment baseline and the naive baseline."""

from __future__ import annotations

import pytest

from repro.core.errors import ConfigurationError
from repro.core.geometry import Point, Rectangle
from repro.core.trajectory import TimePoint
from repro.baselines.dp_hot import DPHotSegmentTracker
from repro.baselines.naive import NaiveClient, NaiveCoordinator


BOUNDS = Rectangle(Point(-100.0, -100.0), Point(1100.0, 1100.0))


def straight(n: int, y: float = 0.0, start_t: int = 0) -> list:
    return [TimePoint(Point(float(i * 10), y), start_t + i) for i in range(n)]


def l_shaped(n: int = 20) -> list:
    """Half the points go east, the other half go north: one sharp turn."""
    east = [TimePoint(Point(float(i * 10), 0.0), i) for i in range(n // 2)]
    corner_x = (n // 2 - 1) * 10.0
    north = [
        TimePoint(Point(corner_x, float((i + 1) * 10)), n // 2 + i) for i in range(n // 2)
    ]
    return east + north


class TestDPHotSegmentTracker:
    def test_invalid_tolerance(self):
        with pytest.raises(ConfigurationError):
            DPHotSegmentTracker(BOUNDS, tolerance=0.0)

    def test_straight_motion_stores_nothing_until_flush(self):
        tracker = DPHotSegmentTracker(BOUNDS, tolerance=1.0)
        for tp in straight(20):
            assert tracker.observe(1, tp) is None
        assert tracker.index_size() == 0
        assert tracker.flush_object(1) is not None
        assert tracker.index_size() == 1

    def test_turn_produces_segment(self):
        tracker = DPHotSegmentTracker(BOUNDS, tolerance=1.0)
        emitted = [tracker.observe(1, tp) for tp in l_shaped(20)]
        assert any(segment_id is not None for segment_id in emitted)
        assert tracker.index_size() >= 1

    def test_segment_reuse_across_objects(self):
        """A second object following the same corridor reuses the stored segment."""
        tracker = DPHotSegmentTracker(BOUNDS, tolerance=2.0)
        for tp in l_shaped(20):
            tracker.observe(1, tp)
        size_after_first = tracker.index_size()
        # Second object, same geometry but slightly offset and later in time.
        for tp in l_shaped(20):
            tracker.observe(2, TimePoint(Point(tp.x + 0.5, tp.y + 0.5), tp.timestamp + 100))
        assert tracker.index_size() == size_after_first
        assert tracker.segments_reused >= 1
        assert tracker.reuse_ratio > 0.0
        top = tracker.top_k(1)
        assert top[0].hotness >= 2

    def test_different_corridors_not_merged(self):
        tracker = DPHotSegmentTracker(BOUNDS, tolerance=1.0)
        for tp in l_shaped(20):
            tracker.observe(1, tp)
        for tp in l_shaped(20):
            tracker.observe(2, TimePoint(Point(tp.x, tp.y + 500.0), tp.timestamp))
        assert tracker.segments_reused == 0
        assert tracker.index_size() >= 2

    def test_window_expiry_removes_segments(self):
        tracker = DPHotSegmentTracker(BOUNDS, tolerance=1.0, window=50)
        for tp in l_shaped(20):
            tracker.observe(1, tp)
        assert tracker.index_size() >= 1
        vanished = tracker.advance_time(1000)
        assert vanished >= 1
        assert tracker.index_size() == 0

    def test_top_k_scores(self):
        tracker = DPHotSegmentTracker(BOUNDS, tolerance=1.0)
        for tp in l_shaped(20):
            tracker.observe(1, tp)
        tracker.flush_object(1)
        assert tracker.top_k_score(5) > 0.0

    def test_flush_unknown_object(self):
        tracker = DPHotSegmentTracker(BOUNDS, tolerance=1.0)
        assert tracker.flush_object(99) is None


class TestNaiveBaseline:
    def test_client_counts_messages_and_bytes(self):
        client = NaiveClient(3)
        for tp in straight(10):
            client.observe(tp)
        assert client.measurements_sent == 10
        assert client.bytes_sent == 10 * 16

    def test_coordinator_receives_and_tracks(self):
        coordinator = NaiveCoordinator(BOUNDS, tolerance=1.0, window=100)
        for tp in l_shaped(20):
            coordinator.receive(1, tp)
        assert coordinator.measurements_received == 20
        assert coordinator.bytes_received == 20 * 16
        coordinator.advance_time(30)
        assert coordinator.index_size() >= 0

    def test_coordinator_top_k_score(self):
        coordinator = NaiveCoordinator(BOUNDS, tolerance=1.0, window=100)
        for tp in l_shaped(30):
            coordinator.receive(1, tp)
        # The L-shaped trajectory has at least one closed segment, so the score
        # is non-negative and finite.
        assert coordinator.top_k_score(5) >= 0.0
