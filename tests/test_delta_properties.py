"""Property-based tests for the incremental epoch pipeline (epoch_mode="delta").

The delta pipeline's whole claim is *algebraic*: applying an epoch's delta to
the previous state must equal rebuilding that state from scratch.  Random
event sequences check that claim for each delta carrier independently:

* **membership algebra** (:mod:`repro.coordinator.delta`) — applying a
  composed delta equals applying its parts in order, composition is
  associative, disjoint deltas commute, and the empty delta is the identity;
* **hotness deltas** (:class:`repro.coordinator.hotness.HotnessDeltaLog`) —
  replaying a tracker's drained event log against a mirror reproduces the
  tracker's hot set and counters exactly, under random crossing/expiry
  interleavings and provisional-id renames;
* **pool cache** (:class:`repro.coordinator.overlaps.OverlapPoolCache`) —
  whatever mix of exact hits, prefix resumes and rebuilds the cache chooses
  for a random pool-churn sequence, every resolved structure is bit-for-bit
  the structure a from-scratch build produces;
* **incremental stitching**
  (:class:`repro.coordinator.stitching.IncrementalStitcher`) — after any
  sequence of insert/expire/hotness-change events, the patched corridor
  report equals :func:`~repro.coordinator.stitching.stitch_paths` run fresh
  over the surviving hot set, in both stitching modes.
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

from hypothesis import given, settings, strategies as st

from repro.core.geometry import Point, Rectangle
from repro.core.motion_path import MotionPath, MotionPathRecord
from repro.coordinator.delta import (
    EpochDelta,
    apply_membership,
    compose_membership,
)
from repro.coordinator.hotness import HotnessTracker
from repro.coordinator.overlaps import FsaOverlapStructure, OverlapPoolCache
from repro.coordinator.sharding import ShardGrid
from repro.coordinator.stitching import IncrementalStitcher, stitch_paths

# ---------------------------------------------------------------------------
# Membership algebra
# ---------------------------------------------------------------------------

ids = st.integers(min_value=0, max_value=12)
id_sets = st.frozensets(ids, max_size=8)


@st.composite
def membership_deltas(draw) -> Tuple[frozenset, frozenset]:
    """An ``(added, removed)`` pair with disjoint sides, like real epochs
    produce (a vanished path's id is never re-hot in the same epoch)."""
    added = draw(id_sets)
    removed = draw(id_sets.map(lambda s: s - added))
    return added, removed


class TestMembershipAlgebra:
    @settings(max_examples=300, deadline=None)
    @given(id_sets, membership_deltas(), membership_deltas())
    def test_compose_equals_sequential_application(self, members, first, second):
        composed = compose_membership(first, second)
        assert apply_membership(members, composed) == apply_membership(
            apply_membership(members, first), second
        )

    @settings(max_examples=300, deadline=None)
    @given(id_sets, membership_deltas(), membership_deltas(), membership_deltas())
    def test_compose_is_associative(self, members, a, b, c):
        left = compose_membership(compose_membership(a, b), c)
        right = compose_membership(a, compose_membership(b, c))
        # Composition itself need not be syntactically equal, but the two
        # composites must act identically on every state.
        assert apply_membership(members, left) == apply_membership(members, right)

    @settings(max_examples=300, deadline=None)
    @given(id_sets, membership_deltas(), membership_deltas())
    def test_disjoint_deltas_commute(self, members, first, second):
        touched_first = first[0] | first[1]
        second = (second[0] - touched_first, second[1] - touched_first)
        assert apply_membership(
            members, compose_membership(first, second)
        ) == apply_membership(members, compose_membership(second, first))

    @settings(max_examples=200, deadline=None)
    @given(id_sets)
    def test_empty_delta_is_identity(self, members):
        empty = (frozenset(), frozenset())
        assert apply_membership(members, empty) == members
        delta = EpochDelta(timestamp=10)
        assert delta.is_noop()
        assert apply_membership(members, delta.membership) == members


# ---------------------------------------------------------------------------
# Hotness delta log vs. the tracker it journals
# ---------------------------------------------------------------------------

hotness_scripts = st.lists(
    st.one_of(
        st.tuples(st.just("cross"), st.integers(0, 9), st.integers(0, 30)),
        st.tuples(st.just("advance"), st.integers(0, 60), st.integers(0, 0)),
    ),
    min_size=1,
    max_size=40,
)


class TestHotnessDeltaReplay:
    @settings(max_examples=200, deadline=None)
    @given(hotness_scripts)
    def test_drained_log_rebuilds_the_tracker(self, script):
        """Mirror counters maintained purely from drained logs must equal the
        tracker's own table after every epoch — ``apply(delta, state) ==
        rebuild(full)`` for hotness."""
        tracker = HotnessTracker(window=15)
        tracker.enable_delta_log()
        mirror: Dict[int, int] = {}
        clock = 0
        for op, a, b in script:
            if op == "cross":
                # Crossings never end before already-expired time.
                tracker.record_crossing(a, clock + b)
            else:
                clock = max(clock, a)
                tracker.advance_time(clock)
            log = tracker.drain_delta_log()
            for path_id in log.newly_hot:
                assert mirror.get(path_id, 0) == 0
                mirror[path_id] = 1
            for path_id in log.touched:
                assert mirror[path_id] >= 1
                mirror[path_id] += 1
            for path_id in log.decayed:
                mirror[path_id] -= 1
                assert mirror[path_id] >= 1
            for path_id in log.vanished:
                assert mirror.pop(path_id) == 1
            assert mirror == dict(tracker.items())

    @settings(max_examples=150, deadline=None)
    @given(hotness_scripts, st.integers(1, 5))
    def test_log_survives_provisional_renames(self, script, offset):
        """Crossings recorded under provisional ids then renamed (the parallel
        commit path) must drain as final ids, matching a tracker that used
        final ids all along."""
        provisional = HotnessTracker(window=15)
        provisional.enable_delta_log()
        final = HotnessTracker(window=15)
        final.enable_delta_log()
        provisional.begin_deferred()
        crossed = set()
        for op, a, b in script:
            if op == "cross":
                provisional.record_crossing(a + 1000, b)
                final.record_crossing(a + offset, b)
                crossed.add(a)
        mapping = {a + 1000: a + offset for a in crossed}
        provisional.flush_deferred(mapping)
        final.flush_deferred({})
        log_a, log_b = provisional.drain_delta_log(), final.drain_delta_log()
        assert log_a.newly_hot == log_b.newly_hot
        assert log_a.touched == log_b.touched
        assert dict(provisional.items()) == dict(final.items())


# ---------------------------------------------------------------------------
# Pool cache: every resolution is bit-for-bit the from-scratch build
# ---------------------------------------------------------------------------

coordinate_pool = st.sampled_from([0.0, 100.0, 250.0, 400.0, 500.0, 750.0, 900.0])


@st.composite
def fsa_pools(draw) -> List[Tuple[int, Rectangle]]:
    count = draw(st.integers(min_value=0, max_value=6))
    pool = []
    for object_id in range(count):
        x = draw(coordinate_pool)
        y = draw(coordinate_pool)
        half = draw(st.sampled_from([40.0, 90.0, 160.0]))
        pool.append((object_id, Rectangle.from_center(Point(x, y), half)))
    return pool


@st.composite
def pool_epochs(draw) -> List[List[Dict[int, Rectangle]]]:
    """Several epochs of pools with churn: pools repeat, extend (prefix
    resumes), shrink and mutate across epochs."""
    base = draw(st.lists(fsa_pools(), min_size=1, max_size=4))
    epochs = []
    for _ in range(draw(st.integers(min_value=1, max_value=4))):
        epoch = []
        for pool in base:
            action = draw(st.sampled_from(["same", "extend", "shrink", "mutate"]))
            members = list(pool)
            if action == "extend":
                x = draw(coordinate_pool)
                members = members + [
                    (len(members) + 100, Rectangle.from_center(Point(x, x), 50.0))
                ]
            elif action == "shrink" and members:
                members = members[:-1]
            elif action == "mutate" and members:
                object_id, rect = members[0]
                members = [(object_id, Rectangle.from_center(rect.low, 25.0))] + members[1:]
            epoch.append(dict(members))
        epochs.append(epoch)
    return epochs


class TestPoolCacheBitIdentity:
    @settings(max_examples=150, deadline=None)
    @given(pool_epochs())
    def test_resolved_structures_equal_fresh_builds(self, epochs):
        cache = OverlapPoolCache()
        for pools in epochs:
            structures, miss_indexes, stats = cache.resolve(pools)
            for index in miss_indexes:
                structures[index] = FsaOverlapStructure.build(pools[index])
            cache.store(pools, structures)
            assert stats["pools_total"] == len(pools)
            assert stats["pools_total"] == (
                stats["pools_reused"]
                + stats["pools_prefix_reused"]
                + stats["pools_rebuilt"]
            )
            for pool, structure in zip(pools, structures):
                fresh = FsaOverlapStructure.build(pool)
                assert structure.serialized() == fresh.serialized(), (
                    "cached/prefix-resumed structure diverged from a fresh build"
                )

    @settings(max_examples=100, deadline=None)
    @given(pool_epochs())
    def test_repeat_epochs_hit_the_cache(self, epochs):
        """Replaying the same epoch twice must reuse every pool the second
        time — the low-churn speedup the benchmark table measures."""
        cache = OverlapPoolCache()
        pools = epochs[0]
        structures, miss_indexes, _stats = cache.resolve(pools)
        for index in miss_indexes:
            structures[index] = FsaOverlapStructure.build(pools[index])
        cache.store(pools, structures)
        again, miss_again, stats = cache.resolve(pools)
        assert miss_again == []
        assert stats["pools_reused"] == len(pools)
        for first, second in zip(structures, again):
            assert first.serialized() == second.serialized()

    def test_prefix_resume_must_not_mutate_the_cached_entry(self):
        """Regression: a prefix hit builds from a *snapshot* of the cached
        base, never from the cached structure itself.

        The failure mode being pinned: resolve pool ``P`` (cached), then
        ``P + extra`` (prefix-resumed from ``P``'s entry), then ``P``
        verbatim again.  If the resume had extended the cached structure in
        place, the final verbatim hit would hand back a structure carrying
        ``extra``'s regions — diverging from a fresh build of ``P``.
        """
        cache = OverlapPoolCache()
        base_pool = {
            1: Rectangle.from_center(Point(100.0, 100.0), 50.0),
            2: Rectangle.from_center(Point(120.0, 120.0), 50.0),
        }
        extended_pool = dict(base_pool)
        extended_pool[3] = Rectangle.from_center(Point(110.0, 110.0), 50.0)

        structures, miss_indexes, _stats = cache.resolve([base_pool])
        for index in miss_indexes:
            structures[index] = FsaOverlapStructure.build(base_pool)
        cache.store([base_pool], structures)
        pristine = structures[0].serialized()

        resumed, miss_indexes, stats = cache.resolve([extended_pool])
        assert miss_indexes == [] and stats["pools_prefix_reused"] == 1
        assert resumed[0].serialized() == FsaOverlapStructure.build(
            extended_pool
        ).serialized()
        cache.store([extended_pool], resumed)

        verbatim, miss_indexes, stats = cache.resolve([base_pool])
        assert miss_indexes == [] and stats["pools_reused"] == 1
        assert verbatim[0].serialized() == pristine
        assert verbatim[0].serialized() == FsaOverlapStructure.build(
            base_pool
        ).serialized()

    @settings(max_examples=100, deadline=None)
    @given(pool_epochs())
    def test_prefix_chains_never_corrupt_cached_entries(self, epochs):
        """Property form of the aliasing pin: after any resolve/store
        history, re-resolving every pool ever stored returns a structure
        equal to a fresh build of that pool."""
        cache = OverlapPoolCache()
        seen = []
        for pools in epochs:
            structures, miss_indexes, _stats = cache.resolve(pools)
            for index in miss_indexes:
                structures[index] = FsaOverlapStructure.build(pools[index])
            cache.store(pools, structures)
            seen.extend(pools)
        replayed, _miss, _stats = cache.resolve(seen)
        for pool, structure in zip(seen, replayed):
            if structure is None:
                continue
            assert structure.serialized() == FsaOverlapStructure.build(
                pool
            ).serialized()


# ---------------------------------------------------------------------------
# Incremental stitcher vs. the global reference stitch
# ---------------------------------------------------------------------------

vertex_pool = st.sampled_from(
    [-50.0, 0.0, 100.0, 250.0, 400.0, 500.0, 625.0, 750.0, 900.0, 1000.0, 1050.0]
)

BOUNDS = Rectangle(Point(0.0, 0.0), Point(1000.0, 1000.0))

#: One event per tuple: ("insert", id, x1, y1, x2, y2, hotness) /
#: ("expire", id-index) / ("retouch", id-index, new_hotness)
stitch_events = st.lists(
    st.one_of(
        st.tuples(
            st.just("insert"),
            vertex_pool,
            vertex_pool,
            vertex_pool,
            vertex_pool,
            st.integers(1, 5),
        ),
        st.tuples(st.just("expire"), st.integers(0, 30)),
        st.tuples(st.just("retouch"), st.integers(0, 30), st.integers(1, 9)),
    ),
    min_size=1,
    max_size=30,
)


def _reference(hot: Dict[int, Tuple[MotionPath, int]]):
    return stitch_paths(
        (MotionPathRecord(path_id, path, 0), hotness)
        for path_id, (path, hotness) in hot.items()
    )


class TestIncrementalStitcherProperties:
    @settings(max_examples=200, deadline=None)
    @given(stitch_events, st.integers(0, 3))
    def test_patched_report_equals_global_restitch(self, events, epochs_split):
        """Random insert/expire/retouch sequences, synced in arbitrary epoch
        groupings: the incremental report must equal ``stitch_paths`` over
        the surviving set after every sync."""
        stitcher = IncrementalStitcher()
        hot: Dict[int, Tuple[MotionPath, int]] = {}
        next_id = 0
        rng = random.Random(epochs_split)
        pending = list(events)
        while pending:
            take = max(1, min(len(pending), rng.randrange(1, 8)))
            chunk, pending = pending[:take], pending[take:]
            for event in chunk:
                if event[0] == "insert":
                    _tag, x1, y1, x2, y2, hotness = event
                    hot[next_id] = (MotionPath(Point(x1, y1), Point(x2, y2)), hotness)
                    next_id += 1
                elif event[0] == "expire":
                    live = sorted(hot)
                    if live:
                        del hot[live[event[1] % len(live)]]
                else:
                    live = sorted(hot)
                    if live:
                        path_id = live[event[1] % len(live)]
                        path, _old = hot[path_id]
                        hot[path_id] = (path, event[2])
            stitcher.sync(dict(hot))
            corridors, _stats = stitcher.report("exact", lambda path_id: 0)
            assert corridors == _reference(hot)

    @settings(max_examples=100, deadline=None)
    @given(stitch_events)
    def test_off_mode_report_matches_boundary_split_reference(self, events):
        """The boundary-truncating mode, with a real 2x2 ownership map."""
        grid = ShardGrid(BOUNDS, 2, 2)
        stitcher = IncrementalStitcher()
        hot: Dict[int, Tuple[MotionPath, int]] = {}
        next_id = 0
        for event in events:
            if event[0] == "insert":
                _tag, x1, y1, x2, y2, hotness = event
                hot[next_id] = (MotionPath(Point(x1, y1), Point(x2, y2)), hotness)
                next_id += 1
            elif event[0] == "expire":
                live = sorted(hot)
                if live:
                    del hot[live[event[1] % len(live)]]
            else:
                live = sorted(hot)
                if live:
                    path_id = live[event[1] % len(live)]
                    path, _old = hot[path_id]
                    hot[path_id] = (path, event[2])
        stitcher.sync(dict(hot))

        def owner_of(path_id: int) -> int:
            return grid.shard_id_of(hot[path_id][0].start)

        off_corridors, _stats = stitcher.report("off", owner_of)
        # Reference: global stitch cut where consecutive segments change owner.
        pieces = []
        for corridor in _reference(hot):
            piece = [corridor.segments[0]]
            for previous, segment in zip(corridor.segments, corridor.segments[1:]):
                if owner_of(previous.path_id) != owner_of(segment.path_id):
                    pieces.append(tuple(piece))
                    piece = [segment]
                else:
                    piece.append(segment)
            pieces.append(tuple(piece))
        expected = sorted(
            tuple(segment.path_id for segment in piece) for piece in pieces
        )
        assert sorted(corridor.path_ids for corridor in off_corridors) == expected

    @settings(max_examples=100, deadline=None)
    @given(stitch_events)
    def test_sync_is_idempotent(self, events):
        """Syncing the same state twice changes nothing and reuses chains."""
        stitcher = IncrementalStitcher()
        hot: Dict[int, Tuple[MotionPath, int]] = {}
        next_id = 0
        for event in events:
            if event[0] == "insert":
                _tag, x1, y1, x2, y2, hotness = event
                hot[next_id] = (MotionPath(Point(x1, y1), Point(x2, y2)), hotness)
                next_id += 1
        stitcher.sync(dict(hot))
        first, _ = stitcher.report("exact", lambda path_id: 0)
        stitcher.sync(dict(hot))
        second, stats = stitcher.report("exact", lambda path_id: 0)
        assert second == first
        if first:
            assert stats["corridors_reused"] == len(first)
