"""Unit tests for :mod:`repro.core.trajectory`."""

from __future__ import annotations

import pytest

from repro.core.errors import InvalidTrajectoryError
from repro.core.geometry import Point
from repro.core.trajectory import TimePoint, Trajectory, UncertainTimePoint


def straight_line_trajectory(n: int = 5, step: float = 10.0) -> Trajectory:
    """Object moving along the x axis, one unit of time per step."""
    return Trajectory(
        0, [TimePoint(Point(i * step, 0.0), i) for i in range(n)]
    )


class TestTimePoint:
    def test_accessors(self):
        tp = TimePoint(Point(1.0, 2.0), 7)
        assert tp.x == 1.0
        assert tp.y == 2.0
        assert tp.timestamp == 7

    def test_as_tuple(self):
        assert TimePoint(Point(1.0, 2.0), 3).as_tuple() == (1.0, 2.0, 3)


class TestUncertainTimePoint:
    def test_negative_sigma_rejected(self):
        with pytest.raises(InvalidTrajectoryError):
            UncertainTimePoint(Point(0.0, 0.0), 0, -1.0, 1.0)

    def test_certain_drops_uncertainty(self):
        utp = UncertainTimePoint(Point(1.0, 2.0), 5, 0.5, 0.5)
        tp = utp.certain()
        assert isinstance(tp, TimePoint)
        assert tp.point == Point(1.0, 2.0)
        assert tp.timestamp == 5

    def test_accessors(self):
        utp = UncertainTimePoint(Point(1.0, 2.0), 5, 0.5, 0.25)
        assert utp.x == 1.0 and utp.y == 2.0
        assert utp.sigma_x == 0.5 and utp.sigma_y == 0.25


class TestTrajectoryConstruction:
    def test_empty_trajectory_is_falsy(self):
        assert not Trajectory(0)

    def test_append_and_len(self):
        trajectory = straight_line_trajectory(4)
        assert len(trajectory) == 4

    def test_append_requires_increasing_timestamps(self):
        trajectory = Trajectory(0, [TimePoint(Point(0.0, 0.0), 5)])
        with pytest.raises(InvalidTrajectoryError):
            trajectory.append(TimePoint(Point(1.0, 1.0), 5))

    def test_extend(self):
        trajectory = Trajectory(0)
        trajectory.extend([TimePoint(Point(0.0, 0.0), 0), TimePoint(Point(1.0, 0.0), 1)])
        assert len(trajectory) == 2

    def test_getitem_and_iter(self):
        trajectory = straight_line_trajectory(3)
        assert trajectory[1].point == Point(10.0, 0.0)
        assert [tp.timestamp for tp in trajectory] == [0, 1, 2]

    def test_timepoints_view_is_immutable_copy(self):
        trajectory = straight_line_trajectory(3)
        view = trajectory.timepoints
        assert isinstance(view, tuple)
        assert len(view) == 3


class TestTrajectoryTimes:
    def test_start_and_end_time(self):
        trajectory = straight_line_trajectory(4)
        assert trajectory.start_time == 0
        assert trajectory.end_time == 3
        assert trajectory.duration == 3

    def test_empty_trajectory_time_errors(self):
        with pytest.raises(InvalidTrajectoryError):
            _ = Trajectory(0).start_time
        with pytest.raises(InvalidTrajectoryError):
            _ = Trajectory(0).end_time

    def test_covers_time(self):
        trajectory = straight_line_trajectory(4)
        assert trajectory.covers_time(0)
        assert trajectory.covers_time(2.5)
        assert not trajectory.covers_time(3.5)
        assert not Trajectory(0).covers_time(0)


class TestInterpolation:
    def test_location_at_observed_timestamp(self):
        trajectory = straight_line_trajectory(4)
        assert trajectory.location_at(2) == Point(20.0, 0.0)

    def test_location_at_intermediate_timestamp(self):
        trajectory = straight_line_trajectory(4)
        assert trajectory.location_at(1.5) == Point(15.0, 0.0)

    def test_location_outside_range_rejected(self):
        trajectory = straight_line_trajectory(4)
        with pytest.raises(InvalidTrajectoryError):
            trajectory.location_at(10)

    def test_location_on_empty_trajectory_rejected(self):
        with pytest.raises(InvalidTrajectoryError):
            Trajectory(0).location_at(0)

    def test_interpolation_with_gap_in_timestamps(self):
        trajectory = Trajectory(
            0, [TimePoint(Point(0.0, 0.0), 0), TimePoint(Point(10.0, 10.0), 10)]
        )
        assert trajectory.location_at(5) == Point(5.0, 5.0)


class TestGeometryHelpers:
    def test_bounding_box(self):
        trajectory = Trajectory(
            0,
            [
                TimePoint(Point(0.0, 5.0), 0),
                TimePoint(Point(10.0, -5.0), 1),
                TimePoint(Point(4.0, 2.0), 2),
            ],
        )
        box = trajectory.bounding_box()
        assert box.low == Point(0.0, -5.0)
        assert box.high == Point(10.0, 5.0)

    def test_bounding_box_with_padding(self):
        trajectory = straight_line_trajectory(2)
        box = trajectory.bounding_box(padding=1.0)
        assert box.low == Point(-1.0, -1.0)
        assert box.high == Point(11.0, 1.0)

    def test_bounding_box_empty_rejected(self):
        with pytest.raises(InvalidTrajectoryError):
            Trajectory(0).bounding_box()

    def test_total_length(self):
        trajectory = straight_line_trajectory(4, step=10.0)
        assert trajectory.total_length() == pytest.approx(30.0)

    def test_passes_near_true(self):
        trajectory = straight_line_trajectory(5)
        assert trajectory.passes_near(Point(22.0, 1.0), tolerance=3.0)

    def test_passes_near_false(self):
        trajectory = straight_line_trajectory(5)
        assert not trajectory.passes_near(Point(22.0, 50.0), tolerance=3.0)

    def test_passes_near_empty_is_false(self):
        assert not Trajectory(0).passes_near(Point(0.0, 0.0), tolerance=1.0)


class TestSliceAndResample:
    def test_slice_time(self):
        trajectory = straight_line_trajectory(6)
        sliced = trajectory.slice_time(1, 3)
        assert [tp.timestamp for tp in sliced] == [1, 2, 3]

    def test_slice_time_invalid_range(self):
        with pytest.raises(InvalidTrajectoryError):
            straight_line_trajectory(3).slice_time(3, 1)

    def test_resample_regular(self):
        trajectory = straight_line_trajectory(7)
        resampled = trajectory.resample(2)
        assert [tp.timestamp for tp in resampled] == [0, 2, 4, 6]
        assert resampled[1].point == Point(20.0, 0.0)

    def test_resample_interpolates(self):
        trajectory = Trajectory(
            0, [TimePoint(Point(0.0, 0.0), 0), TimePoint(Point(10.0, 0.0), 10)]
        )
        resampled = trajectory.resample(4)
        assert [tp.timestamp for tp in resampled] == [0, 4, 8]
        assert resampled[1].point == Point(4.0, 0.0)

    def test_resample_invalid_step(self):
        with pytest.raises(InvalidTrajectoryError):
            straight_line_trajectory(3).resample(0)

    def test_resample_empty(self):
        assert len(Trajectory(0).resample(5)) == 0
