"""Differential harness for the columnar kernel (``--kernel columnar``).

The vectorized SoA kernels of :mod:`repro.coordinator.columnar` carry the
same contract the delta pipeline does: **bit-for-bit equal** to the scalar
``object`` reference, which stays pinned as the baseline.  Two layers:

* the full coordinator matrix — backends x shard counts x epoch modes x
  partitions, with forced rebalances and worker kills — driven with the
  same streams under both kernels, every epoch's responses / counters /
  index snapshot compared exactly (reusing the sharding-equivalence
  harness);
* hypothesis kernel-level suites — :class:`CellBlock` candidate kernels
  against a brute-force scalar scan, and :class:`RegionTable` argmin
  queries against the scalar tie-break loops, including the insertion-order
  tie-break cases (equal areas, equal counts) the lexsort key order exists
  for.

The shared-memory shipment transport rides the matrix (``processes``
backend under ``columnar``) and is additionally pinned to actually engage:
epochs must ship through the ring, with zero pickled-pipe fallbacks.
"""

from __future__ import annotations

import random
from typing import Dict, List

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.geometry import Point, Rectangle
from repro.coordinator.columnar import (
    HAVE_NUMPY,
    KERNELS,
    CellBlock,
    RegionTable,
    resolve_kernel,
)
from repro.core.errors import ConfigurationError
from repro.coordinator.overlaps import FsaOverlapStructure
from test_sharding_equivalence import (
    drive,
    index_snapshot,
    make_coordinator,
    skewed_stream,
    synthetic_stream,
)

pytestmark = pytest.mark.skipif(
    not HAVE_NUMPY, reason="columnar kernels require numpy"
)


def drive_both_kernels(stream, **coordinator_kwargs):
    """Drive the same stream under both kernels; assert full-trace equality."""
    reference = drive(make_coordinator(kernel="object", **coordinator_kwargs), stream)
    columnar = drive(make_coordinator(kernel="columnar", **coordinator_kwargs), stream)
    assert reference == columnar, f"kernels diverged for {coordinator_kwargs}"
    return reference


class TestKernelResolution:
    def test_unknown_kernel_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_kernel("simd")

    def test_known_kernels_resolve(self):
        assert resolve_kernel("object") == "object"
        assert resolve_kernel("columnar") == "columnar"

    def test_columnar_degrades_without_numpy(self, monkeypatch):
        import repro.coordinator.columnar as columnar

        monkeypatch.setattr(columnar, "HAVE_NUMPY", False)
        assert columnar.resolve_kernel("columnar") == "object"
        assert columnar.resolve_kernel("object") == "object"

    def test_coordinator_default_is_columnar(self):
        coordinator = make_coordinator(num_shards=1)
        try:
            assert coordinator.config.kernel == "columnar"
        finally:
            coordinator.close()


class TestFullMatrixEquivalence:
    """Coordinator-level bit-for-bit equality across the harness matrix."""

    @pytest.mark.parametrize("num_shards", [1, 4, 16])
    @pytest.mark.parametrize("epoch_mode", ["full", "delta"])
    def test_serial_matrix(self, num_shards, epoch_mode):
        drive_both_kernels(
            synthetic_stream(seed=13),
            num_shards=num_shards,
            backend="serial",
            epoch_mode=epoch_mode,
        )

    @pytest.mark.parametrize("backend", ["threads", "processes"])
    @pytest.mark.parametrize("epoch_mode", ["full", "delta"])
    def test_parallel_backends(self, backend, epoch_mode):
        drive_both_kernels(
            synthetic_stream(seed=29),
            num_shards=4,
            backend=backend,
            epoch_mode=epoch_mode,
        )

    @pytest.mark.parametrize("backend", ["serial", "processes"])
    def test_kd_partition_with_forced_rebalances(self, backend):
        stream = skewed_stream(seed=7)
        kwargs = dict(num_shards=4, backend=backend, partition="kd")
        reference = drive(
            make_coordinator(kernel="object", **kwargs), stream, rebalance_before=(2, 5)
        )
        columnar = drive(
            make_coordinator(kernel="columnar", **kwargs), stream, rebalance_before=(2, 5)
        )
        assert reference == columnar

    def test_cross_kernel_cross_shard_same_snapshot(self):
        """1-shard object vs 16-shard columnar: the whole stack at once."""
        stream = synthetic_stream(seed=47)
        seed_trace = drive(make_coordinator(num_shards=1, kernel="object"), stream)
        fleet_trace = drive(
            make_coordinator(num_shards=16, backend="processes", kernel="columnar"),
            stream,
        )
        assert seed_trace == fleet_trace


class TestSharedMemoryTransport:
    """The process backend must actually ship epochs through shared memory."""

    def test_columnar_ships_via_shared_memory(self):
        stream = synthetic_stream(seed=3, epochs=6)
        coordinator = make_coordinator(num_shards=4, backend="processes", kernel="columnar")
        try:
            drive_trace = []
            for boundary, states in stream:
                for state in states:
                    coordinator.submit_state(state)
                drive_trace.append(coordinator.run_epoch(boundary).responses)
            backend = coordinator.router.pipeline.backend
            assert backend.shm_shipments > 0
            assert backend.shm_fallbacks == 0
        finally:
            coordinator.close()

    def test_object_kernel_never_touches_shared_memory(self):
        stream = synthetic_stream(seed=3, epochs=4)
        coordinator = make_coordinator(num_shards=4, backend="processes", kernel="object")
        try:
            for boundary, states in stream:
                for state in states:
                    coordinator.submit_state(state)
                coordinator.run_epoch(boundary)
            backend = coordinator.router.pipeline.backend
            assert backend.shm_shipments == 0
        finally:
            coordinator.close()

    def test_worker_kill_mid_stream_stays_equivalent(self):
        """Respawn ships inline; answers must still match the object kernel."""
        stream = synthetic_stream(seed=21, epochs=8)

        def run(kernel: str):
            coordinator = make_coordinator(
                num_shards=4, backend="processes", kernel=kernel
            )
            trace = []
            try:
                for index, (boundary, states) in enumerate(stream):
                    if index == 3:
                        coordinator.router.pipeline.backend.kill_worker(0)
                    for state in states:
                        coordinator.submit_state(state)
                    trace.append(coordinator.run_epoch(boundary).responses)
                trace.append(index_snapshot(coordinator))
            finally:
                coordinator.close()
            return trace

        assert run("object") == run("columnar")


# ---------------------------------------------------------------------------
# Kernel-level hypothesis suites
# ---------------------------------------------------------------------------

# Coarse pools force duplicate endpoints, shared borders and exact ties.
coordinate_pool = st.sampled_from([0.0, 1.0, 12.5, 25.0, 49.9, 50.0, 99.0, 100.0])
points = st.builds(Point, coordinate_pool, coordinate_pool)


@st.composite
def cell_entries(draw):
    """(key, endpoint, other) upserts plus a removal subset."""
    n = draw(st.integers(min_value=0, max_value=20))
    entries = []
    for index in range(n):
        key = (draw(st.integers(min_value=0, max_value=9)), draw(st.booleans()))
        entries.append((key, draw(points), draw(points)))
    removals = draw(
        st.lists(st.integers(min_value=0, max_value=max(n - 1, 0)), max_size=6)
    )
    return entries, removals


@st.composite
def regions_strategy(draw):
    a, b = draw(points), draw(points)
    return Rectangle.bounding(a, b)


class TestCellBlockKernels:
    @settings(max_examples=150, deadline=None)
    @given(cell_entries(), points, regions_strategy())
    def test_kernels_match_scalar_scan(self, script, start, region):
        entries, removals = script
        block = CellBlock()
        scalar: Dict = {}
        for key, endpoint, other in entries:
            block.upsert(key, endpoint, other)
            scalar[key] = (endpoint, other)
        for removal in removals:
            if not entries:
                break
            key = entries[removal % len(entries)][0]
            block.remove(key)
            scalar.pop(key, None)

        expected_starts = sorted(
            pid
            for (pid, is_start), (endpoint, other) in scalar.items()
            if is_start and endpoint == start and region.contains_point(other)
        )
        assert sorted(block.start_matches(start, region)) == expected_starts

        expected_from_into = sorted(
            pid
            for (pid, is_start), (endpoint, other) in scalar.items()
            if not is_start and other == start and region.contains_point(endpoint)
        )
        assert sorted(block.from_into_matches(start, region)) == expected_from_into

        pids, xs, ys = block.end_rows_in(region)
        got_ends = sorted(
            (int(pid), float(x), float(y)) for pid, x, y in zip(pids, xs, ys)
        )
        expected_ends = sorted(
            (pid, endpoint.x, endpoint.y)
            for (pid, is_start), (endpoint, _other) in scalar.items()
            if not is_start and region.contains_point(endpoint)
        )
        assert got_ends == expected_ends

        expected_any = sorted(
            pid
            for (pid, _is_start), (endpoint, _other) in scalar.items()
            if region.contains_point(endpoint)
        )
        assert sorted(int(p) for p in block.endpoints_in(region)) == expected_any

    @settings(max_examples=80, deadline=None)
    @given(cell_entries())
    def test_swap_with_last_removal_keeps_the_table_dense(self, script):
        entries, _removals = script
        block = CellBlock()
        for key, endpoint, other in entries:
            block.upsert(key, endpoint, other)
        live = {key for key, _e, _o in entries}
        for key in list(live):
            remaining = block.remove(key)
            live.discard(key)
            assert remaining == len(live)
            assert block.count == len(live)
        assert block.remove((999, True)) == 0  # absent key is a no-op


@st.composite
def overlap_pools_strategy(draw):
    """FSA pools sized to cross the columnar activation threshold."""
    n = draw(st.integers(min_value=1, max_value=14))
    pool = {}
    for object_id in range(n):
        center = draw(points)
        half = draw(st.sampled_from([10.0, 25.0, 25.0, 40.0]))
        pool[object_id] = Rectangle.from_center(center, half)
    return pool


class TestRegionTableKernels:
    @settings(
        max_examples=150,
        deadline=None,
        suppress_health_check=[HealthCheck.filter_too_much],
    )
    @given(overlap_pools_strategy(), points, regions_strategy())
    def test_structure_queries_match_across_kernels(self, pool, probe, fsa):
        reference = FsaOverlapStructure.build(pool, kernel="object")
        columnar = FsaOverlapStructure.build(pool, kernel="columnar")
        assert reference.serialized() == columnar.serialized()

        ref_region = reference.smallest_region_containing(probe)
        col_region = columnar.smallest_region_containing(probe)
        assert (ref_region is None) == (col_region is None)
        if ref_region is not None:
            assert ref_region.members == col_region.members
            assert ref_region.rectangle == col_region.rectangle

        ref_hot = reference.hottest_region_intersecting(fsa)
        col_hot = columnar.hottest_region_intersecting(fsa)
        assert (ref_hot is None) == (col_hot is None)
        if ref_hot is not None:
            assert ref_hot.members == col_hot.members
            assert ref_hot.rectangle == col_hot.rectangle

        assert reference.candidate_vertex_for(fsa) == columnar.candidate_vertex_for(fsa)

    @settings(max_examples=100, deadline=None)
    @given(overlap_pools_strategy(), points, regions_strategy())
    def test_table_path_forced_below_threshold(self, pool, probe, fsa):
        """Drop the activation threshold to 1 so even tiny pools run the
        vectorized table — the threshold must be a pure perf knob."""
        reference = FsaOverlapStructure.build(pool, kernel="object")
        columnar = FsaOverlapStructure.build(pool, kernel="columnar")
        original = FsaOverlapStructure._COLUMNAR_MIN_REGIONS
        FsaOverlapStructure._COLUMNAR_MIN_REGIONS = 1
        try:
            ref_region = reference.smallest_region_containing(probe)
            col_region = columnar.smallest_region_containing(probe)
            assert (ref_region is None) == (col_region is None)
            if ref_region is not None:
                assert ref_region.members == col_region.members
            ref_hot = reference.hottest_region_intersecting(fsa)
            col_hot = columnar.hottest_region_intersecting(fsa)
            assert (ref_hot is None) == (col_hot is None)
            if ref_hot is not None:
                assert ref_hot.members == col_hot.members
        finally:
            FsaOverlapStructure._COLUMNAR_MIN_REGIONS = original

    def test_insertion_order_breaks_exact_ties(self):
        """Two regions with identical area and count: the scalar loops keep
        the first-encountered one; the lexsort's last key must reproduce it."""
        # Two disjoint members produce two singleton regions of equal area
        # and equal count; a probe inside neither forces the intersecting
        # query to tie on (-count, area) across both.
        pool = {
            1: Rectangle(Point(0.0, 0.0), Point(10.0, 10.0)),
            2: Rectangle(Point(20.0, 0.0), Point(30.0, 10.0)),
        }
        reference = FsaOverlapStructure.build(pool, kernel="object")
        columnar = FsaOverlapStructure.build(pool, kernel="columnar")
        original = FsaOverlapStructure._COLUMNAR_MIN_REGIONS
        FsaOverlapStructure._COLUMNAR_MIN_REGIONS = 1
        try:
            fsa = Rectangle(Point(0.0, 0.0), Point(30.0, 10.0))  # hits both
            ref_hot = reference.hottest_region_intersecting(fsa)
            col_hot = columnar.hottest_region_intersecting(fsa)
            assert ref_hot.members == col_hot.members
            probe = Point(5.0, 5.0)
            # Add an identical-geometry region pair for the containment tie.
            assert (
                reference.smallest_region_containing(probe).members
                == columnar.smallest_region_containing(probe).members
            )
        finally:
            FsaOverlapStructure._COLUMNAR_MIN_REGIONS = original

    @settings(max_examples=60, deadline=None)
    @given(overlap_pools_strategy(), points)
    def test_raw_table_matches_scalar_loops(self, pool, probe):
        """RegionTable directly vs a hand-rolled scalar argmin."""
        structure = FsaOverlapStructure.build(pool, kernel="object")
        regions = list(structure.regions())
        if not regions:
            return
        table = RegionTable(structure._regions)
        best = None
        for index, region in enumerate(regions):
            if not region.rectangle.contains_point(probe):
                continue
            key = (region.rectangle.area, -region.count, index)
            if best is None or key < best[0]:
                best = (key, index)
        got = table.smallest_containing(probe)
        if best is None:
            assert got is None
        else:
            assert got == best[1]
