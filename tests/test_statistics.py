"""Unit tests for :mod:`repro.analysis.statistics`."""

from __future__ import annotations

import pytest

from repro.core.errors import ConfigurationError
from repro.core.geometry import Point
from repro.core.motion_path import MotionPath, MotionPathRecord
from repro.analysis.statistics import (
    DistributionSummary,
    hot_path_statistics,
    network_alignment,
    summarise_distribution,
)
from repro.network.road_network import RoadNetwork


def record(path_id: int, start: Point, end: Point) -> MotionPathRecord:
    return MotionPathRecord(path_id, MotionPath(start, end))


class TestSummariseDistribution:
    def test_empty(self):
        summary = summarise_distribution([])
        assert summary == DistributionSummary.empty()
        assert summary.count == 0

    def test_single_value(self):
        summary = summarise_distribution([5.0])
        assert summary.minimum == summary.maximum == summary.mean == summary.median == 5.0
        assert summary.p90 == 5.0
        assert summary.total == 5.0

    def test_known_values(self):
        summary = summarise_distribution([1.0, 2.0, 3.0, 4.0])
        assert summary.count == 4
        assert summary.minimum == 1.0
        assert summary.maximum == 4.0
        assert summary.mean == 2.5
        assert summary.median == 2.5
        assert summary.total == 10.0

    def test_percentile_interpolation(self):
        summary = summarise_distribution(list(range(11)))  # 0..10
        assert summary.median == 5.0
        assert summary.p90 == pytest.approx(9.0)

    def test_order_independent(self):
        assert summarise_distribution([3.0, 1.0, 2.0]) == summarise_distribution([1.0, 2.0, 3.0])


class TestHotPathStatistics:
    def _paths(self):
        return [
            (record(0, Point(0.0, 0.0), Point(100.0, 0.0)), 10),
            (record(1, Point(0.0, 0.0), Point(50.0, 0.0)), 2),
            (record(2, Point(0.0, 0.0), Point(10.0, 0.0)), 1),
            (record(3, Point(0.0, 0.0), Point(20.0, 0.0)), 1),
        ]

    def test_empty_input(self):
        statistics = hot_path_statistics([])
        assert statistics.num_paths == 0
        assert statistics.top_decile_heat_share == 0.0

    def test_distributions(self):
        statistics = hot_path_statistics(self._paths())
        assert statistics.num_paths == 4
        assert statistics.hotness.maximum == 10.0
        assert statistics.hotness.total == 14.0
        assert statistics.length.maximum == 100.0
        assert statistics.score.maximum == 1000.0

    def test_top_decile_heat_share(self):
        statistics = hot_path_statistics(self._paths())
        # 4 paths -> decile size 1 -> hottest path carries 10 of 14 crossings.
        assert statistics.top_decile_heat_share == pytest.approx(10.0 / 14.0)

    def test_uniform_hotness_gives_low_concentration(self):
        paths = [(record(i, Point(0.0, 0.0), Point(10.0, 0.0)), 1) for i in range(20)]
        statistics = hot_path_statistics(paths)
        assert statistics.top_decile_heat_share == pytest.approx(2.0 / 20.0)


class TestNetworkAlignment:
    def _network(self) -> RoadNetwork:
        network = RoadNetwork()
        network.add_node(0, Point(0.0, 0.0))
        network.add_node(1, Point(1000.0, 0.0))
        network.add_node(2, Point(1000.0, 1000.0))
        network.add_link(0, 1)
        network.add_link(1, 2)
        return network

    def test_aligned_paths_detected(self):
        network = self._network()
        paths = [
            (record(0, Point(100.0, 2.0), Point(500.0, -3.0)), 3),   # on the horizontal road
            (record(1, Point(998.0, 100.0), Point(1003.0, 600.0)), 2),  # on the vertical road
            (record(2, Point(500.0, 500.0), Point(600.0, 600.0)), 1),   # off-network
        ]
        alignment = network_alignment(paths, network, tolerance=10.0)
        assert alignment.paths_considered == 3
        assert alignment.aligned_paths == 2
        assert alignment.aligned_fraction == pytest.approx(2.0 / 3.0)
        assert alignment.mean_endpoint_distance > 0.0

    def test_min_hotness_filter(self):
        network = self._network()
        paths = [
            (record(0, Point(100.0, 2.0), Point(500.0, -3.0)), 3),
            (record(2, Point(500.0, 500.0), Point(600.0, 600.0)), 1),
        ]
        alignment = network_alignment(paths, network, tolerance=10.0, min_hotness=2)
        assert alignment.paths_considered == 1
        assert alignment.aligned_fraction == 1.0

    def test_empty_paths(self):
        alignment = network_alignment([], self._network(), tolerance=10.0)
        assert alignment.paths_considered == 0
        assert alignment.aligned_fraction == 0.0
        assert alignment.mean_endpoint_distance == 0.0

    def test_invalid_tolerance(self):
        with pytest.raises(ConfigurationError):
            network_alignment([], self._network(), tolerance=0.0)

    def test_empty_network_rejected(self):
        with pytest.raises(ConfigurationError):
            network_alignment([], RoadNetwork(), tolerance=5.0)

    def test_simulation_paths_align_with_network(self, small_network):
        """Paths discovered on the synthetic workload hug the generating network."""
        from repro.network.generator import NetworkConfig
        from repro.simulation.engine import HotPathSimulation, SimulationConfig

        config = SimulationConfig(
            num_objects=80,
            tolerance=10.0,
            window=50,
            epoch_length=10,
            duration=60,
            seed=5,
            run_dp_baseline=False,
            run_naive_baseline=False,
            network_config=NetworkConfig(area_size=2000.0, grid_nodes_per_axis=6, seed=3),
        )
        result = HotPathSimulation(config).run()
        alignment = network_alignment(
            result.hot_paths(), result.network, tolerance=config.tolerance * 2
        )
        assert alignment.paths_considered > 0
        assert alignment.aligned_fraction > 0.8
