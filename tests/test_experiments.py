"""Tests for the experiment configuration, sweeps and figure runners.

These use an aggressively scaled-down :class:`ExperimentScale` so the whole
module runs in a few seconds while still exercising the exact code paths the
benchmarks use at their (larger) default scale.
"""

from __future__ import annotations

import pytest

from repro.core.errors import ConfigurationError
from repro.experiments.ablations import (
    run_communication_ablation,
    run_grid_resolution_ablation,
    run_uncertainty_ablation,
)
from repro.experiments.config import (
    DEFAULT_SCALE,
    PAPER_DEFAULTS,
    PAPER_OBJECT_COUNTS,
    PAPER_TOLERANCES,
    ExperimentScale,
    scaled_simulation_config,
)
from repro.experiments.figure7 import run_figure7
from repro.experiments.figure8 import run_figure8
from repro.experiments.figure9 import run_figure9, run_figure10
from repro.experiments.sweeps import run_object_count_sweep, run_tolerance_sweep


TINY = ExperimentScale(population=0.004, duration=0.2, network_nodes_per_axis=6)


class TestPaperConstants:
    def test_table2_defaults(self):
        assert PAPER_DEFAULTS["num_objects"] == 20000
        assert PAPER_DEFAULTS["tolerance"] == 10.0
        assert PAPER_DEFAULTS["window"] == 100
        assert PAPER_DEFAULTS["top_k"] == 10
        assert PAPER_DEFAULTS["agility"] == 0.1
        assert PAPER_DEFAULTS["displacement"] == 10.0
        assert PAPER_DEFAULTS["positional_error"] == 1.0
        assert PAPER_DEFAULTS["duration"] == 250
        assert PAPER_DEFAULTS["epoch_length"] == 10

    def test_sweep_values(self):
        assert PAPER_OBJECT_COUNTS == [10000, 20000, 50000, 100000]
        assert PAPER_TOLERANCES == [1.0, 2.0, 10.0, 20.0]


class TestExperimentScale:
    def test_invalid_scales(self):
        with pytest.raises(ConfigurationError):
            ExperimentScale(population=0.0)
        with pytest.raises(ConfigurationError):
            ExperimentScale(population=2.0)
        with pytest.raises(ConfigurationError):
            ExperimentScale(duration=0.0)
        with pytest.raises(ConfigurationError):
            ExperimentScale(network_nodes_per_axis=1)

    def test_scale_objects_has_floor(self):
        scale = ExperimentScale(population=0.001)
        assert scale.scale_objects(10000) == 20

    def test_scale_duration_has_floor(self):
        scale = ExperimentScale(duration=0.01)
        assert scale.scale_duration(250, epoch_length=10) == 31

    def test_from_environment_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        scale = ExperimentScale.from_environment()
        assert scale.population == DEFAULT_SCALE

    def test_from_environment_full_scale(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "1.0")
        scale = ExperimentScale.from_environment()
        assert scale.population == 1.0
        assert scale.network_nodes_per_axis == 33

    def test_from_environment_invalid(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "lots")
        with pytest.raises(ConfigurationError):
            ExperimentScale.from_environment()

    def test_scaled_simulation_config_applies_scale(self):
        config = scaled_simulation_config(scale=TINY, num_objects=20000, tolerance=5.0)
        assert config.num_objects == 80
        assert config.tolerance == 5.0
        assert config.window == 100
        assert config.duration >= 31


class TestSweeps:
    def test_object_count_sweep_rows(self):
        rows = run_object_count_sweep([10000, 20000], scale=TINY, seed=3)
        assert len(rows) == 2
        assert [row.parameter_value for row in rows] == [10000, 20000]
        assert rows[0].scaled_num_objects < rows[1].scaled_num_objects
        for row in rows:
            assert row.index_size > 0
            assert row.uplink_messages > 0
            assert row.naive_messages > row.uplink_messages

    def test_tolerance_sweep_rows(self):
        rows = run_tolerance_sweep([2.0, 20.0], scale=TINY, seed=3)
        assert len(rows) == 2
        assert rows[0].parameter_value == 2.0
        # Larger tolerance suppresses more updates, hence fewer or equal messages.
        assert rows[1].uplink_messages <= rows[0].uplink_messages

    def test_sweep_row_as_dict(self):
        rows = run_object_count_sweep([10000], scale=TINY, seed=3)
        as_dict = rows[0].as_dict()
        assert as_dict["parameter_name"] == "num_objects"
        assert "index_size" in as_dict


class TestFigureRunners:
    def test_figure7_report(self):
        report = run_figure7(object_counts=[10000, 20000], scale=TINY, seed=3)
        assert report.object_counts == [10000, 20000]
        panel_a = report.panel_a()
        panel_b = report.panel_b()
        panel_c = report.panel_c()
        assert len(panel_a["single_path_index_size"]) == 2
        assert len(panel_b["single_path_score"]) == 2
        assert len(panel_c["processing_seconds"]) == 2
        table = report.format_table()
        assert "idx SP" in table
        assert len(table.splitlines()) == 4

    def test_figure7_index_grows_with_objects(self):
        report = run_figure7(object_counts=[10000, 100000], scale=TINY, seed=3)
        sizes = report.panel_a()["single_path_index_size"]
        assert sizes[1] > sizes[0]

    def test_figure8_report(self):
        report = run_figure8(tolerances=[2.0, 20.0], scale=TINY, seed=3)
        assert report.tolerances == [2.0, 20.0]
        table = report.format_table()
        assert "epsilon" in table
        assert len(table.splitlines()) == 4

    def test_figure8_index_shrinks_with_tolerance(self):
        report = run_figure8(tolerances=[2.0, 40.0], scale=TINY, seed=3)
        sizes = report.panel_a()["single_path_index_size"]
        assert sizes[1] <= sizes[0]

    def test_figure9_report(self):
        report = run_figure9(scale=TINY, seed=3, map_width=40, map_height=20)
        assert len(report.discovered_map.splitlines()) == 20
        assert len(report.hot_paths) > 0
        assert 0.0 <= report.coverage_fraction() <= 1.0
        assert "path_id" in report.to_csv()

    def test_figure10_report(self):
        report = run_figure10(scale=TINY, seed=3, k=5, map_width=30, map_height=15)
        assert len(report.hot_paths) <= 5
        assert len(report.discovered_map.splitlines()) == 15


class TestAblations:
    def test_communication_ablation(self):
        rows = run_communication_ablation(tolerances=(5.0, 20.0), scale=TINY, seed=3)
        assert len(rows) == 2
        for row in rows:
            assert row.naive_messages > row.raytrace_messages
            assert 0.0 < row.reduction <= 1.0

    def test_uncertainty_ablation(self):
        rows = run_uncertainty_ablation(deltas=(0.0, 0.2), scale=TINY, seed=3)
        assert len(rows) == 2
        assert rows[0].delta == 0.0
        # A positive delta shrinks tolerance squares, so filtering can only
        # report at least as many messages as the plain-epsilon run.
        assert rows[1].uplink_messages >= rows[0].uplink_messages

    def test_grid_resolution_ablation(self):
        rows = run_grid_resolution_ablation(cell_counts=(8, 32), scale=TINY, seed=3)
        assert len(rows) == 2
        assert all(row.mean_index_size > 0 for row in rows)
