"""Property-based tests for :mod:`repro.coordinator.grid_index`.

Random insert/delete/query sequences run against a brute-force reference
index (a flat list of records with exact-geometry predicates).  Coordinates
are drawn from a small pool spanning inside, on-the-border and outside the
grid bounds, so the sequences routinely produce duplicate endpoints, paths
with both endpoints in one cell and points clamped into border cells — the
configurations behind historical delete bugs.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from hypothesis import given, settings, strategies as st

from repro.core.geometry import Point, Rectangle
from repro.core.motion_path import MotionPath, MotionPathRecord
from repro.coordinator.grid_index import GridConfig, GridIndex

BOUNDS = Rectangle(Point(0.0, 0.0), Point(100.0, 100.0))

# Deliberately coarse coordinate pool: values collide (duplicate endpoints),
# sit exactly on cell borders (12.5 with 8 cells per axis) and fall outside
# the bounds (clamped into border cells).
coordinate_pool = st.sampled_from(
    [-30.0, -1.0, 0.0, 3.0, 12.5, 25.0, 49.9, 50.0, 62.5, 99.0, 100.0, 130.0]
)
pool_points = st.builds(Point, coordinate_pool, coordinate_pool)


@st.composite
def regions(draw) -> Rectangle:
    """Query rectangles: degenerate, empty-region and cross-border shapes."""
    a = draw(pool_points)
    b = draw(pool_points)
    return Rectangle.bounding(a, b)


@st.composite
def operations(draw) -> List[Tuple[str, object]]:
    """A random op sequence: (insert path) | (delete nth live path)."""
    ops = []
    live = 0
    for _ in range(draw(st.integers(min_value=1, max_value=25))):
        if live and draw(st.booleans()) and draw(st.booleans()):
            ops.append(("delete", draw(st.integers(min_value=0, max_value=live - 1))))
            live -= 1
        else:
            ops.append(("insert", MotionPath(draw(pool_points), draw(pool_points))))
            live += 1
    return ops


class ReferenceIndex:
    """Brute-force reference: a list of records, exact geometry everywhere."""

    def __init__(self) -> None:
        self.records: Dict[int, MotionPathRecord] = {}

    def insert(self, record: MotionPathRecord) -> None:
        self.records[record.path_id] = record

    def delete(self, path_id: int) -> None:
        del self.records[path_id]

    def paths_from_into(self, start: Point, region: Rectangle) -> List[int]:
        return sorted(
            r.path_id
            for r in self.records.values()
            if r.path.start == start and region.contains_point(r.path.end)
        )

    def end_vertices_in(self, region: Rectangle) -> Dict[Tuple[float, float], List[int]]:
        vertices: Dict[Tuple[float, float], List[int]] = {}
        for r in self.records.values():
            if region.contains_point(r.path.end):
                vertices.setdefault(r.path.end.as_tuple(), []).append(r.path_id)
        return {vertex: sorted(ids) for vertex, ids in vertices.items()}

    def paths_intersecting(self, region: Rectangle) -> List[int]:
        return sorted(
            r.path_id
            for r in self.records.values()
            if region.contains_point(r.path.start) or region.contains_point(r.path.end)
        )


def build_both(ops) -> Tuple[GridIndex, ReferenceIndex]:
    index = GridIndex(GridConfig(BOUNDS, cells_per_axis=8))
    reference = ReferenceIndex()
    live: List[int] = []
    for op, payload in ops:
        if op == "insert":
            record = index.insert(payload)
            reference.insert(record)
            live.append(record.path_id)
        else:
            path_id = live.pop(payload)
            index.delete(path_id)
            reference.delete(path_id)
    return index, reference


class TestAgainstReference:
    @settings(max_examples=60, deadline=None)
    @given(operations())
    def test_membership_and_size(self, ops):
        index, reference = build_both(ops)
        assert len(index) == len(reference.records)
        for path_id, record in reference.records.items():
            assert path_id in index
            assert index.get(path_id).path == record.path

    @settings(max_examples=60, deadline=None)
    @given(operations(), pool_points, regions())
    def test_paths_from_into_matches_reference(self, ops, start, region):
        index, reference = build_both(ops)
        result = sorted(r.path_id for r in index.paths_from_into(start, region))
        assert result == reference.paths_from_into(start, region)

    @settings(max_examples=60, deadline=None)
    @given(operations(), pool_points, regions())
    def test_paths_starting_at_matches_paths_from_into(self, ops, start, region):
        index, reference = build_both(ops)
        by_start_cell = sorted(r.path_id for r in index.paths_starting_at(start, region))
        assert by_start_cell == reference.paths_from_into(start, region)

    @settings(max_examples=60, deadline=None)
    @given(operations(), regions())
    def test_end_vertices_matches_reference(self, ops, region):
        index, reference = build_both(ops)
        result = {
            vertex.as_tuple(): sorted(ids)
            for vertex, ids in index.end_vertices_in(region).items()
        }
        assert result == reference.end_vertices_in(region)

    @settings(max_examples=60, deadline=None)
    @given(operations(), regions())
    def test_paths_intersecting_matches_reference(self, ops, region):
        index, reference = build_both(ops)
        result = sorted(r.path_id for r in index.paths_intersecting(region))
        assert result == reference.paths_intersecting(region)

    @settings(max_examples=40, deadline=None)
    @given(operations())
    def test_deleting_everything_empties_the_cells(self, ops):
        index, reference = build_both(ops)
        for path_id in list(reference.records):
            index.delete(path_id)
        assert len(index) == 0
        # No stale entries may survive: the cell table must be empty too.
        assert index._cells == {}
