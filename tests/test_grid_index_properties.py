"""Property-based tests for :mod:`repro.coordinator.grid_index`.

Random insert/delete/query sequences run against a brute-force reference
index (a flat list of records with exact-geometry predicates).  Coordinates
are drawn from a small pool spanning inside, on-the-border and outside the
grid bounds, so the sequences routinely produce duplicate endpoints, paths
with both endpoints in one cell and points clamped into border cells — the
configurations behind historical delete bugs.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.geometry import Point, Rectangle
from repro.core.motion_path import MotionPath, MotionPathRecord
from repro.coordinator.columnar import KERNELS
from repro.coordinator.grid_index import GridConfig, GridIndex

BOUNDS = Rectangle(Point(0.0, 0.0), Point(100.0, 100.0))

# Deliberately coarse coordinate pool: values collide (duplicate endpoints),
# sit exactly on cell borders (12.5 with 8 cells per axis) and fall outside
# the bounds (clamped into border cells).
coordinate_pool = st.sampled_from(
    [-30.0, -1.0, 0.0, 3.0, 12.5, 25.0, 49.9, 50.0, 62.5, 99.0, 100.0, 130.0]
)
pool_points = st.builds(Point, coordinate_pool, coordinate_pool)


@st.composite
def regions(draw) -> Rectangle:
    """Query rectangles: degenerate, empty-region and cross-border shapes."""
    a = draw(pool_points)
    b = draw(pool_points)
    return Rectangle.bounding(a, b)


@st.composite
def operations(draw) -> List[Tuple[str, object]]:
    """A random op sequence: (insert path) | (delete nth live path)."""
    ops = []
    live = 0
    for _ in range(draw(st.integers(min_value=1, max_value=25))):
        if live and draw(st.booleans()) and draw(st.booleans()):
            ops.append(("delete", draw(st.integers(min_value=0, max_value=live - 1))))
            live -= 1
        else:
            ops.append(("insert", MotionPath(draw(pool_points), draw(pool_points))))
            live += 1
    return ops


class ReferenceIndex:
    """Brute-force reference: a list of records, exact geometry everywhere."""

    def __init__(self) -> None:
        self.records: Dict[int, MotionPathRecord] = {}

    def insert(self, record: MotionPathRecord) -> None:
        self.records[record.path_id] = record

    def delete(self, path_id: int) -> None:
        del self.records[path_id]

    def paths_from_into(self, start: Point, region: Rectangle) -> List[int]:
        return sorted(
            r.path_id
            for r in self.records.values()
            if r.path.start == start and region.contains_point(r.path.end)
        )

    def end_vertices_in(self, region: Rectangle) -> Dict[Tuple[float, float], List[int]]:
        vertices: Dict[Tuple[float, float], List[int]] = {}
        for r in self.records.values():
            if region.contains_point(r.path.end):
                vertices.setdefault(r.path.end.as_tuple(), []).append(r.path_id)
        return {vertex: sorted(ids) for vertex, ids in vertices.items()}

    def paths_intersecting(self, region: Rectangle) -> List[int]:
        return sorted(
            r.path_id
            for r in self.records.values()
            if region.contains_point(r.path.start) or region.contains_point(r.path.end)
        )


def assert_empty_cells(index: GridIndex) -> None:
    """No stale entry may survive in either kernel's cell store."""
    assert index._cells == {}
    if index._columnar is not None:
        assert index._columnar.blocks == {}


def build_both(ops, kernel: str = "object") -> Tuple[GridIndex, ReferenceIndex]:
    index = GridIndex(GridConfig(BOUNDS, cells_per_axis=8), kernel=kernel)
    reference = ReferenceIndex()
    live: List[int] = []
    for op, payload in ops:
        if op == "insert":
            record = index.insert(payload)
            reference.insert(record)
            live.append(record.path_id)
        else:
            path_id = live.pop(payload)
            index.delete(path_id)
            reference.delete(path_id)
    return index, reference


class TestAgainstReference:
    kernel = "object"

    @settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.differing_executors])
    @given(operations())
    def test_membership_and_size(self, ops):
        index, reference = build_both(ops, self.kernel)
        assert len(index) == len(reference.records)
        for path_id, record in reference.records.items():
            assert path_id in index
            assert index.get(path_id).path == record.path

    @settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.differing_executors])
    @given(operations(), pool_points, regions())
    def test_paths_from_into_matches_reference(self, ops, start, region):
        index, reference = build_both(ops, self.kernel)
        result = sorted(r.path_id for r in index.paths_from_into(start, region))
        assert result == reference.paths_from_into(start, region)

    @settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.differing_executors])
    @given(operations(), pool_points, regions())
    def test_paths_starting_at_matches_paths_from_into(self, ops, start, region):
        index, reference = build_both(ops, self.kernel)
        by_start_cell = sorted(r.path_id for r in index.paths_starting_at(start, region))
        assert by_start_cell == reference.paths_from_into(start, region)

    @settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.differing_executors])
    @given(operations(), regions())
    def test_end_vertices_matches_reference(self, ops, region):
        index, reference = build_both(ops, self.kernel)
        result = {
            vertex.as_tuple(): sorted(ids)
            for vertex, ids in index.end_vertices_in(region).items()
        }
        assert result == reference.end_vertices_in(region)

    @settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.differing_executors])
    @given(operations(), regions())
    def test_paths_intersecting_matches_reference(self, ops, region):
        index, reference = build_both(ops, self.kernel)
        result = sorted(r.path_id for r in index.paths_intersecting(region))
        assert result == reference.paths_intersecting(region)

    @settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.differing_executors])
    @given(operations())
    def test_deleting_everything_empties_the_cells(self, ops):
        index, reference = build_both(ops, self.kernel)
        for path_id in list(reference.records):
            index.delete(path_id)
        assert len(index) == 0
        assert_empty_cells(index)


class TestAgainstReferenceColumnar(TestAgainstReference):
    """The full reference suite again, over the vectorized cell blocks."""

    kernel = "columnar"


# Cell widths that are not exactly representable in binary (100/cells), so
# repeated accumulation ``low + k * width`` and the division in ``_cell_of``
# disagree in the last ulp — the configurations behind max-edge mapping bugs.
ODD_CELL_COUNTS = (3, 7, 8, 13)
KERNEL_AND_CELLS = [
    (kernel, cells) for kernel in KERNELS for cells in ODD_CELL_COUNTS
]


class TestBoundaryCells:
    """Pins for the cell-math audit (max-edge clamping, float accumulation).

    ``_cell_of`` truncates then clamps into ``[0, cells_per_axis - 1]``: a
    point exactly on the bounds' max edge must land in the last cell (not one
    past it), and because ``add_entry``, ``remove_entry`` and every query
    funnel through the same ``_cell_of``, an entry added at any boundary
    point must be findable and removable regardless of which side of a cell
    border the float division puts it on.
    """

    def test_max_edge_maps_to_last_cell(self):
        import pytest  # noqa: F401  (parametrize applied below)

        for cells in ODD_CELL_COUNTS:
            index = GridIndex(GridConfig(BOUNDS, cells_per_axis=cells))
            last = cells - 1
            assert index._cell_of(BOUNDS.high) == (last, last)
            assert index._cell_of(Point(BOUNDS.high.x, 0.0)) == (last, 0)
            assert index._cell_of(Point(0.0, BOUNDS.high.y)) == (0, last)
            # Outside points clamp into border cells rather than indexing
            # past the table.
            assert index._cell_of(Point(BOUNDS.high.x + 1.0, -5.0)) == (last, 0)

    @settings(max_examples=80, deadline=None)
    @given(
        st.sampled_from(KERNEL_AND_CELLS),
        st.integers(min_value=0, max_value=200),
        st.integers(min_value=0, max_value=200),
    )
    def test_cell_of_stays_in_range_under_accumulation(self, kernel_cells, i, j):
        """Accumulated ``low + k * width`` points never index out of range."""
        kernel, cells = kernel_cells
        index = GridIndex(GridConfig(BOUNDS, cells_per_axis=cells), kernel=kernel)
        width = BOUNDS.width / cells
        x = min(BOUNDS.low.x + (i / 200.0) * cells * width, BOUNDS.high.x)
        y = min(BOUNDS.low.y + (j / 200.0) * cells * width, BOUNDS.high.y)
        col, row = index._cell_of(Point(x, y))
        assert 0 <= col < cells and 0 <= row < cells

    @settings(max_examples=80, deadline=None)
    @given(st.sampled_from(KERNEL_AND_CELLS), st.data())
    def test_add_query_remove_agree_on_boundary_points(self, kernel_cells, data):
        """Entries at cell-border and max-edge points round-trip exactly."""
        kernel, cells = kernel_cells
        width = BOUNDS.width / cells
        # Accumulated cell corners (k * width drifts off the exact border for
        # odd counts), the exact max edge, and just-outside points.
        pool = [BOUNDS.low.x + k * width for k in range(cells + 1)]
        pool += [BOUNDS.high.x, BOUNDS.high.x - 1e-9, -2.0, BOUNDS.high.x + 2.0]
        coords = st.sampled_from(pool)
        points = st.builds(Point, coords, coords)
        index = GridIndex(GridConfig(BOUNDS, cells_per_axis=cells), kernel=kernel)
        inserted = []
        for _ in range(data.draw(st.integers(min_value=1, max_value=12))):
            record = index.insert(MotionPath(data.draw(points), data.draw(points)))
            inserted.append(record)
        for record in inserted:
            # The degenerate query at each endpoint must see the entry the
            # matching add_entry stored — whichever cell the float division
            # picked, queries pick the same one.
            start, end = record.path.start, record.path.end
            probe = Rectangle.degenerate(end)
            assert record.path_id in [
                r.path_id for r in index.paths_from_into(start, probe)
            ]
            assert any(
                vertex == end and record.path_id in ids
                for vertex, ids in index.end_vertices_in(probe).items()
            )
        for record in inserted:
            index.delete(record.path_id)
        assert len(index) == 0
        assert_empty_cells(index)

    @settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.differing_executors])
    @given(st.sampled_from(KERNELS), st.data())
    def test_end_vertices_at_query_max_edge_inclusive(self, kernel, data):
        """A vertex exactly on a query region's max edge is found (closed
        containment), including vertices on the bounds' own max edge — the
        cell-range scan must include the clamped last cell."""
        index = GridIndex(GridConfig(BOUNDS, cells_per_axis=8), kernel=kernel)
        edge = data.draw(
            st.sampled_from([12.5, 25.0, 50.0, 62.5, BOUNDS.high.x])
        )
        end = Point(edge, data.draw(st.sampled_from([0.0, 12.5, edge])))
        record = index.insert(MotionPath(Point(1.0, 1.0), end))
        region = Rectangle(BOUNDS.low, Point(edge, max(end.y, BOUNDS.low.y)))
        found = index.end_vertices_in(region)
        assert end in found and record.path_id in found[end]
        # Just below the edge the same closed-bound scan must exclude it.
        if edge > 0.0:
            below = Rectangle(BOUNDS.low, Point(edge - 1e-9, BOUNDS.high.y))
            assert end not in index.end_vertices_in(below)
