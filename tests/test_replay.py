"""Tests for the trajectory replay driver."""

from __future__ import annotations

import pytest

from repro.core.errors import ConfigurationError
from repro.core.geometry import Point, Rectangle
from repro.client.raytrace import RayTraceConfig
from repro.coordinator.coordinator import Coordinator, CoordinatorConfig
from repro.extensions.feedback import FeedbackCoordinator
from repro.simulation.replay import TrajectoryReplayDriver
from repro.workload.scenarios import waypoint_corridor_trajectories


BOUNDS = Rectangle(Point(-5000.0, -5000.0), Point(5000.0, 5000.0))
L_CORRIDOR = [Point(0.0, 0.0), Point(600.0, 0.0), Point(600.0, 600.0)]


def make_coordinator(feedback: bool = False):
    config = CoordinatorConfig(bounds=BOUNDS, window=1000, cells_per_axis=32)
    return FeedbackCoordinator(config) if feedback else Coordinator(config)


class TestValidation:
    def test_invalid_epoch_length(self):
        with pytest.raises(ConfigurationError):
            TrajectoryReplayDriver(make_coordinator(), RayTraceConfig(10.0), epoch_length=0)

    def test_feedback_requires_feedback_coordinator(self):
        with pytest.raises(ConfigurationError):
            TrajectoryReplayDriver(
                make_coordinator(feedback=False), RayTraceConfig(10.0), use_feedback=True
            )

    def test_empty_streams_rejected(self):
        driver = TrajectoryReplayDriver(make_coordinator(), RayTraceConfig(10.0))
        with pytest.raises(ConfigurationError):
            driver.replay({})

    def test_unknown_filter_lookup(self):
        driver = TrajectoryReplayDriver(make_coordinator(), RayTraceConfig(10.0))
        with pytest.raises(ConfigurationError):
            driver.filter_for(3)


class TestReplay:
    def _trajectories(self, **overrides):
        defaults = dict(num_objects=6, duration=60, lateral_spread=2.0, seed=1)
        defaults.update(overrides)
        return waypoint_corridor_trajectories(L_CORRIDOR, **defaults)

    def test_replay_produces_hot_paths(self):
        coordinator = make_coordinator()
        driver = TrajectoryReplayDriver(coordinator, RayTraceConfig(10.0), epoch_length=5)
        stats = driver.replay(self._trajectories())
        assert stats.objects == 6
        assert stats.measurements == 6 * 60
        assert stats.uplink.messages > 0
        assert stats.downlink.messages > 0
        assert coordinator.top_k(3)[0].hotness >= 4

    def test_statistics_consistency(self):
        coordinator = make_coordinator()
        driver = TrajectoryReplayDriver(coordinator, RayTraceConfig(10.0), epoch_length=5)
        stats = driver.replay(self._trajectories())
        # Every response answers a previously submitted state.
        assert stats.downlink.messages <= stats.uplink.messages
        assert stats.epochs > 0

    def test_filters_available_after_replay(self):
        driver = TrajectoryReplayDriver(make_coordinator(), RayTraceConfig(10.0), epoch_length=5)
        driver.replay(self._trajectories(num_objects=3))
        for object_id in range(3):
            filt = driver.filter_for(object_id)
            assert filt.statistics.measurements_processed > 0

    def test_without_flush_trailing_motion_not_indexed(self):
        with_flush = make_coordinator()
        TrajectoryReplayDriver(with_flush, RayTraceConfig(10.0), epoch_length=5).replay(
            self._trajectories()
        )
        without_flush = make_coordinator()
        TrajectoryReplayDriver(
            without_flush, RayTraceConfig(10.0), epoch_length=5, flush_at_end=False
        ).replay(self._trajectories())
        assert without_flush.index_size() <= with_flush.index_size()

    def test_replay_accepts_plain_measurement_lists(self):
        trajectories = self._trajectories(num_objects=2)
        streams = {oid: list(trajectory) for oid, trajectory in trajectories.items()}
        coordinator = make_coordinator()
        driver = TrajectoryReplayDriver(coordinator, RayTraceConfig(10.0), epoch_length=5)
        stats = driver.replay(streams)
        assert stats.objects == 2


class TestFeedbackReplay:
    def test_feedback_replay_runs_and_reports_snaps(self):
        trajectories = waypoint_corridor_trajectories(
            L_CORRIDOR, num_objects=8, duration=60, lateral_spread=2.0, start_stagger=6, seed=2
        )
        base_coordinator = make_coordinator()
        TrajectoryReplayDriver(base_coordinator, RayTraceConfig(10.0), epoch_length=5).replay(
            trajectories
        )
        feedback_coordinator = make_coordinator(feedback=True)
        driver = TrajectoryReplayDriver(
            feedback_coordinator, RayTraceConfig(10.0), epoch_length=5, use_feedback=True
        )
        stats = driver.replay(trajectories)
        assert stats.snapped_reports >= 0
        # Feedback must not fragment the index: it stores no more paths than
        # the base protocol on the same input and stays equally hot at the top.
        assert feedback_coordinator.index_size() <= base_coordinator.index_size() + 2
        assert feedback_coordinator.top_k(1)[0].hotness >= base_coordinator.top_k(1)[0].hotness - 1
