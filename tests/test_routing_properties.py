"""Property suite for :class:`ShardRouter` endpoint-owner routing.

PRs 1–3 covered the routing invariants only indirectly, through the
end-to-end differential harness; the corridor-stitching merge now *depends*
on them directly (each shard welds at the vertices it owns, trusting that it
holds every endpoint entry there and that the boundary ledgers name every
straddling path), so they are pinned here explicitly:

* every inserted path lands on exactly one owner shard — the shard owning
  its start vertex — and the fleet's records partition the path set;
* the start entry lives with the owner, the end entry with the shard owning
  the end vertex (clamped for points outside the monitored area);
* a path is in the boundary ledger iff its endpoints are owned by different
  shards, recorded under that boundary with its true (start, end) owner pair
  and visible from **both** shards' ledger views;
* deletion and parallel-commit renumbering keep the ledger exact.
"""

from __future__ import annotations

from typing import List

from hypothesis import given, settings, strategies as st

from repro.core.geometry import Point, Rectangle
from repro.core.motion_path import MotionPath
from repro.coordinator.sharding import ShardRouter

BOUNDS = Rectangle(Point(0.0, 0.0), Point(1000.0, 1000.0))

# Endpoints collide with the 4x4 shard borders (multiples of 250) and fall
# outside the bounds, so paths routinely straddle shards and clamp in.
coordinate_pool = st.sampled_from(
    [-60.0, 0.0, 100.0, 249.9, 250.0, 500.0, 501.0, 625.0, 750.0, 999.0, 1000.0, 1080.0]
)
points = st.builds(Point, coordinate_pool, coordinate_pool)


@st.composite
def motion_paths(draw) -> MotionPath:
    start = draw(points)
    end = draw(points)
    return MotionPath(start, end)


path_lists = st.lists(motion_paths(), min_size=1, max_size=25)


def make_router(num_shards: int = 16) -> ShardRouter:
    return ShardRouter(BOUNDS, window=50, cells_per_axis=32, num_shards=num_shards)


class TestEndpointOwnerRouting:
    @settings(max_examples=150, deadline=None)
    @given(path_lists)
    def test_every_path_lands_on_exactly_one_owner(self, paths: List[MotionPath]):
        router = make_router()
        records = [router.insert(path) for path in paths]
        assert len(router.owners) == len(records)
        # The owner is the shard of the start vertex, and per-shard record
        # counts partition the insertions (no duplication, no loss).
        for record in records:
            owner = router.owners[record.path_id]
            assert owner is router.shard_of(record.path.start)
        assert sum(len(shard.index) for shard in router.shards) == len(records)
        owning_shards = [router.owners[r.path_id].shard_id for r in records]
        for record, shard_id in zip(records, owning_shards):
            for shard in router.shards:
                holds = record.path_id in shard.index
                assert holds == (shard.shard_id == shard_id)

    @settings(max_examples=150, deadline=None)
    @given(path_lists)
    def test_endpoint_entries_live_with_their_vertex_owners(self, paths):
        router = make_router()
        records = [router.insert(path) for path in paths]
        for record in records:
            start, end = record.path.start, record.path.end
            start_owner = router.shard_of(start)
            end_owner = router.shard_of(end)
            starting = start_owner.index.paths_starting_at(
                start, Rectangle.degenerate(end)
            )
            assert any(r.path_id == record.path_id for r in starting)
            ends = end_owner.index.end_vertices_in(Rectangle.degenerate(end))
            assert record.path_id in ends.get(end, [])


class TestBoundaryLedger:
    @settings(max_examples=150, deadline=None)
    @given(path_lists)
    def test_straddling_paths_are_on_both_boundary_ledgers(self, paths):
        router = make_router()
        records = [router.insert(path) for path in paths]
        ledgered = {
            path_id
            for entries in router.boundary_ledger.values()
            for path_id in entries
        }
        for record in records:
            start_shard = router.shard_of(record.path.start).shard_id
            end_shard = router.shard_of(record.path.end).shard_id
            if start_shard == end_shard:
                assert record.path_id not in ledgered
                continue
            key = (min(start_shard, end_shard), max(start_shard, end_shard))
            assert router.boundary_ledger[key][record.path_id] == (
                start_shard,
                end_shard,
            )
            # Both endpoint owners see the straddling path in their view.
            assert record.path_id in router.boundary_ledger_of(start_shard)
            assert record.path_id in router.boundary_ledger_of(end_shard)
            # A third shard does not.
            for shard in router.shards:
                if shard.shard_id not in (start_shard, end_shard):
                    assert record.path_id not in router.boundary_ledger_of(
                        shard.shard_id
                    )

    @settings(max_examples=150, deadline=None)
    @given(path_lists)
    def test_ledger_counts_match_geometry(self, paths):
        router = make_router()
        records = [router.insert(path) for path in paths]
        straddling = sum(
            1
            for record in records
            if router.shard_of(record.path.start)
            is not router.shard_of(record.path.end)
        )
        assert router.shard_statistics()["straddling_paths"] == straddling
        # Ledgers never hold empty boundary buckets.
        for entries in router.boundary_ledger.values():
            assert entries

    @settings(max_examples=100, deadline=None)
    @given(path_lists)
    def test_delete_drains_the_ledger(self, paths):
        router = make_router()
        records = [router.insert(path) for path in paths]
        for record in records:
            router.delete(record.path_id)
        assert router.boundary_ledger == {}
        assert router.owners == {}
        assert sum(len(shard.index) for shard in router.shards) == 0

    @settings(max_examples=100, deadline=None)
    @given(path_lists)
    def test_parallel_commit_renumbering_rekeys_the_ledger(self, paths):
        """Provisional ids recorded during a parallel commit must leave the
        ledger keyed by the final, renumbered ids."""
        router = make_router()
        router.begin_parallel_commit(len(paths))
        try:
            for position, path in enumerate(paths):
                router.set_commit_position(position)
                router.insert(path)
        finally:
            router.set_commit_position(None)
            mapping = router.finish_parallel_commit()
        assert sorted(mapping.values()) == list(range(len(paths)))
        ledgered = {
            path_id
            for entries in router.boundary_ledger.values()
            for path_id in entries
        }
        final_ids = set(mapping.values())
        assert ledgered <= final_ids  # no provisional id survives
        expected = set()
        for final_id in final_ids:
            path = router.owners[final_id].index.get(final_id).path
            if router.shard_of(path.start) is not router.shard_of(path.end):
                expected.add(final_id)
        assert ledgered == expected
