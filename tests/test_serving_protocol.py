"""Unit tests for the serving wire protocol and the server's dispatch table."""

from __future__ import annotations

import json
import random

import pytest

from repro.core.errors import ConfigurationError, CoordinatorError
from repro.core.geometry import Point, Rectangle
from repro.client.state import ObjectState
from repro.coordinator.coordinator import Coordinator, CoordinatorConfig
from repro.serving.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    coordinator_snapshot,
    decode_message,
    decode_update,
    encode_message,
    encode_update,
)
from repro.serving.server import IngestionServer, ServingConfig

BOUNDS = Rectangle(Point(0.0, 0.0), Point(1000.0, 1000.0))


def make_state(seed: int = 0) -> ObjectState:
    rng = random.Random(seed)
    start = Point(rng.uniform(0, 1000), rng.uniform(0, 1000))
    fsa = Rectangle.from_center(start, rng.uniform(10, 100))
    return ObjectState(rng.randrange(50), start, 3, fsa.low, fsa.high, 8)


def make_server(**config) -> IngestionServer:
    coordinator = Coordinator(
        CoordinatorConfig(bounds=BOUNDS, window=60, cells_per_axis=16)
    )
    return IngestionServer(coordinator, ServingConfig(**config))


class TestMessageCodec:
    def test_message_round_trip(self):
        payload = {"op": "batch", "client": 3, "seq": 0, "updates": [[1, 2.0, 3.0]]}
        line = encode_message(payload)
        assert line.endswith(b"\n") and line.count(b"\n") == 1
        assert decode_message(line) == payload

    @pytest.mark.parametrize(
        "line",
        [b"not json\n", b"[1,2,3]\n", b'"a string"\n', b"\xff\xfe\n"],
    )
    def test_malformed_lines_rejected(self, line):
        with pytest.raises(ProtocolError):
            decode_message(line)

    def test_update_round_trip(self):
        state = make_state(7)
        row = encode_update(state)
        assert len(row) == 9
        # JSON round trip included: the row must survive the wire exactly.
        decoded = decode_update(json.loads(json.dumps(row)))
        assert decoded == state

    @pytest.mark.parametrize(
        "row",
        [
            [],
            [1, 2, 3],
            list(range(10)),
            "not a row",
            [None] * 9,
            ["x", 0.0, 0.0, 5, 0.0, 0.0, 10.0, 10.0, 9],
        ],
    )
    def test_malformed_updates_rejected(self, row):
        with pytest.raises(ProtocolError):
            decode_update(row)


class TestServingConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ServingConfig(auto_epoch_seconds=0.0)
        with pytest.raises(ConfigurationError):
            ServingConfig(auto_epoch_timestamps=0)

    def test_port_requires_started_server(self):
        server = make_server()
        try:
            with pytest.raises(ConfigurationError):
                server.port
        finally:
            server.coordinator.close()


class TestDispatch:
    """Request handling minus the sockets: dispatch is synchronous by design."""

    def make(self):
        server = make_server()
        return server, server.coordinator

    def test_batch_tick_snapshot_flow(self):
        server, coordinator = self.make()
        try:
            rows = [encode_update(make_state(seed)) for seed in range(6)]
            ack = server.dispatch({"op": "batch", "client": 0, "seq": 0, "updates": rows})
            assert ack == {"ok": True, "accepted": 6, "seq": 0}

            outcome = server.dispatch({"op": "tick", "now": 10})
            assert outcome["ok"] and outcome["epoch"]["states_processed"] == 6

            snapshot = server.dispatch({"op": "snapshot"})["snapshot"]
            assert snapshot == coordinator_snapshot(coordinator)
            assert snapshot["size"] > 0
        finally:
            coordinator.close()

    def test_duplicate_batch_is_idempotent(self):
        server, coordinator = self.make()
        try:
            rows = [encode_update(make_state(1))]
            first = server.dispatch({"op": "batch", "client": 2, "seq": 5, "updates": rows})
            again = server.dispatch({"op": "batch", "client": 2, "seq": 5, "updates": rows})
            assert first["accepted"] == 1
            assert again == {"ok": True, "accepted": 0, "duplicate": True, "seq": 5}
            assert server.batcher.pending_updates == 1
        finally:
            coordinator.close()

    def test_stale_tick_is_an_error_not_a_commit(self):
        server, coordinator = self.make()
        try:
            server.dispatch({"op": "tick", "now": 10})
            with pytest.raises(CoordinatorError):
                server.dispatch({"op": "tick", "now": 10})
            # handle_line maps it to a protocol-level error response.
            response = server.handle_line(encode_message({"op": "tick", "now": 5}))
            assert response["ok"] is False and "boundary" in response["error"]
        finally:
            coordinator.close()

    def test_unknown_and_malformed_ops_counted(self):
        server, coordinator = self.make()
        try:
            assert server.handle_line(b"junk\n")["ok"] is False
            assert server.handle_line(encode_message({"op": "warp"}))["ok"] is False
            bad_batch = server.handle_line(
                encode_message({"op": "batch", "client": "x"})
            )
            assert bad_batch["ok"] is False
            assert server.protocol_errors == 3
        finally:
            coordinator.close()

    def test_hello_reports_protocol_version(self):
        server, coordinator = self.make()
        try:
            assert server.dispatch({"op": "hello"}) == {
                "ok": True,
                "version": PROTOCOL_VERSION,
            }
        finally:
            coordinator.close()

    def test_stats_surface_batcher_counters(self):
        server, coordinator = self.make()
        try:
            rows = [encode_update(make_state(2))]
            server.dispatch({"op": "batch", "client": 0, "seq": 0, "updates": rows})
            server.dispatch({"op": "tick", "now": 10})
            stats = server.dispatch({"op": "stats"})["stats"]
            assert stats["accepted_batches"] == 1
            assert stats["epochs"] == 1
            assert stats["index_size"] == coordinator.index_size()
            assert "p99_ms" in stats
        finally:
            coordinator.close()
