"""Tests for :mod:`repro.coordinator.execution`.

Three layers:

* property tests of :func:`conflict_groups` — the partition must be exactly
  the connected components of the "shard footprints intersect or object ids
  collide" relation, so no two conflicting states ever commit concurrently;
* unit tests of backend selection, pool lifecycle and
  :meth:`HotnessTracker.flush_deferred`;
* a regression differential driving the ``threads`` and ``processes``
  backends with a boundary-stressing stream (shared starts, FSAs straddling
  shard borders, duplicate object ids, out-of-order timestamps) and asserting
  bit-for-bit equality with the ``serial`` backend.
"""

from __future__ import annotations

import random
from typing import List

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.errors import ConfigurationError
from repro.core.geometry import Point, Rectangle
from repro.client.state import ObjectState
from repro.coordinator.coordinator import Coordinator, CoordinatorConfig
from repro.coordinator.execution import (
    BACKEND_NAMES,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    conflict_groups,
    create_backend,
)
from repro.coordinator.hotness import HotnessTracker
from repro.coordinator.sharding import ShardGrid

BOUNDS = Rectangle(Point(0.0, 0.0), Point(1000.0, 1000.0))
GRID = ShardGrid(BOUNDS, 4, 4)

# Coordinates collide with the 4x4 shard borders (multiples of 250) and fall
# outside the bounds, so footprints routinely share border shards.
coordinate_pool = st.sampled_from(
    [-40.0, 0.0, 100.0, 249.9, 250.0, 500.0, 625.0, 750.0, 999.0, 1000.0, 1100.0]
)
half_extents = st.sampled_from([1.0, 30.0, 130.0, 300.0])


@st.composite
def object_states(draw) -> ObjectState:
    object_id = draw(st.integers(min_value=0, max_value=8))
    start = Point(draw(coordinate_pool), draw(coordinate_pool))
    centre = Point(draw(coordinate_pool), draw(coordinate_pool))
    half = draw(half_extents)
    fsa = Rectangle.from_center(centre, half)
    t_end = draw(st.integers(min_value=1, max_value=50))
    return ObjectState(object_id, start, 0, fsa.low, fsa.high, t_end)


def footprint(state: ObjectState) -> set:
    shards = {GRID.shard_id_of(state.start)}
    shards.update(GRID.shard_ids_overlapping(state.fsa))
    return shards


class TestConflictGroups:
    @given(st.lists(object_states(), min_size=0, max_size=25))
    @settings(max_examples=200, deadline=None)
    def test_groups_partition_positions(self, states):
        groups = conflict_groups(states, GRID)
        flattened = sorted(position for group in groups for position in group)
        assert flattened == list(range(len(states)))
        for group in groups:
            assert group == sorted(group)  # submission order within each group

    @given(st.lists(object_states(), min_size=2, max_size=25))
    @settings(max_examples=200, deadline=None)
    def test_conflicting_states_share_a_group(self, states):
        """Any two states sharing a shard (or an object id) land in one group."""
        groups = conflict_groups(states, GRID)
        group_of = {
            position: index for index, group in enumerate(groups) for position in group
        }
        for a in range(len(states)):
            for b in range(a + 1, len(states)):
                shared_shard = footprint(states[a]) & footprint(states[b])
                same_object = states[a].object_id == states[b].object_id
                if shared_shard or same_object:
                    assert group_of[a] == group_of[b], (
                        f"states {a} and {b} conflict "
                        f"(shards {shared_shard}, same_object={same_object}) "
                        "but were placed in different groups"
                    )

    @given(st.lists(object_states(), min_size=2, max_size=25))
    @settings(max_examples=100, deadline=None)
    def test_groups_are_deterministic(self, states):
        assert conflict_groups(states, GRID) == conflict_groups(states, GRID)

    def test_disjoint_states_split_into_groups(self):
        """Far-apart states must NOT collapse into one group (parallelism exists)."""
        states = [
            ObjectState(1, Point(50.0, 50.0), 0, Point(40.0, 40.0), Point(60.0, 60.0), 5),
            ObjectState(2, Point(900.0, 900.0), 0, Point(880.0, 880.0), Point(920.0, 920.0), 5),
        ]
        assert conflict_groups(states, GRID) == [[0], [1]]


class TestBackendSelection:
    def test_create_backend_names(self):
        assert isinstance(create_backend("serial"), SerialBackend)
        assert isinstance(create_backend("threads"), ThreadBackend)
        assert isinstance(create_backend("processes"), ProcessBackend)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError):
            create_backend("asyncio")

    def test_coordinator_config_validates_backend(self):
        with pytest.raises(ConfigurationError):
            CoordinatorConfig(bounds=BOUNDS, backend="not-a-backend")

    def test_backend_names_cover_all_backends(self):
        assert set(BACKEND_NAMES) == {"serial", "threads", "processes"}

    def test_single_shard_ignores_backend(self):
        coordinator = Coordinator(
            CoordinatorConfig(bounds=BOUNDS, num_shards=1, backend="threads")
        )
        assert coordinator.router is None
        coordinator.close()  # must be a safe no-op

    def test_sharded_coordinator_uses_requested_backend(self):
        for name in BACKEND_NAMES:
            coordinator = Coordinator(
                CoordinatorConfig(bounds=BOUNDS, num_shards=4, backend=name)
            )
            assert coordinator.router.pipeline.backend.name == name
            coordinator.close()


class TestHotnessDeferral:
    def test_flush_renames_counts_and_buffered_events(self):
        tracker = HotnessTracker(window=10)
        tracker.begin_deferred()
        tracker.record_crossing(100, t_end=1)  # provisional id
        tracker.record_crossing(100, t_end=2)
        tracker.record_crossing(7, t_end=3)    # pre-existing id, untouched
        assert tracker.pending_events == 0     # pushes are buffered
        tracker.flush_deferred({100: 5})
        assert tracker.hotness(100) == 0
        assert tracker.hotness(5) == 2
        assert tracker.hotness(7) == 1
        assert tracker.pending_events == 3
        # Expiry events follow the rename: the window closes on the new id.
        vanished = tracker.advance_time(20)
        assert sorted(vanished) == [5, 7]
        assert len(tracker) == 0

    def test_counters_visible_while_deferred(self):
        tracker = HotnessTracker(window=10)
        tracker.begin_deferred()
        tracker.record_crossing(3, t_end=1)
        assert tracker.hotness(3) == 1  # same-epoch reads see the crossing
        tracker.flush_deferred({})
        assert tracker.hotness(3) == 1
        assert tracker.pending_events == 1

    def test_flush_without_begin_is_harmless(self):
        tracker = HotnessTracker(window=10)
        tracker.flush_deferred({3: 4})
        assert tracker.hotness(4) == 0
        assert tracker.pending_events == 0


def boundary_stream(seed: int, epochs: int = 6, per_epoch: int = 24):
    """States engineered to stress shard boundaries and duplicate reporters."""
    rng = random.Random(seed)
    start_pool = [
        Point(rng.uniform(-50.0, 1050.0), rng.uniform(-50.0, 1050.0)) for _ in range(8)
    ] + [
        Point(250.0, 250.0),   # 4x4 shard corner
        Point(500.0, 500.0),   # centre corner of the 2x2 layout
        Point(750.0, 10.0),    # on a 4x4 vertical border
        Point(-30.0, 980.0),   # clamped into a border shard
    ]
    stream = []
    for epoch in range(1, epochs + 1):
        boundary = epoch * 10
        states = []
        for _ in range(per_epoch):
            start = rng.choice(start_pool)
            centre = Point(
                start.x + rng.uniform(-250.0, 250.0), start.y + rng.uniform(-250.0, 250.0)
            )
            fsa = Rectangle.from_center(centre, rng.uniform(5.0, 150.0))
            t_end = boundary - rng.randrange(10)
            states.append(
                ObjectState(
                    rng.randrange(per_epoch),  # duplicates likely
                    start,
                    max(0, t_end - 5),
                    fsa.low,
                    fsa.high,
                    t_end,
                )
            )
        stream.append((boundary, states))
    return stream


def drive(coordinator: Coordinator, stream, close_before_epoch: int = -1) -> List[dict]:
    """Feed the stream epoch by epoch, snapshotting the full state after each.

    ``close_before_epoch`` closes the coordinator's worker pool just before
    that epoch runs, forcing a parallel backend to revive it mid-stream.
    """
    trace = []
    try:
        for index, (boundary, states) in enumerate(stream):
            if index == close_before_epoch:
                coordinator.close()
            for state in states:
                coordinator.submit_state(state)
            outcome = coordinator.run_epoch(boundary)
            trace.append(
                {
                    "responses": outcome.responses,
                    "inserted": outcome.paths_inserted,
                    "reused": outcome.paths_reused,
                    "expired": outcome.paths_expired,
                    "records": sorted(
                        (r.path_id, r.path.start.as_tuple(), r.path.end.as_tuple(), r.created_at)
                        for r in coordinator.index.records
                    ),
                    "hotness": sorted(coordinator.hotness.items()),
                    "top_k": coordinator.top_k(10),
                }
            )
    finally:
        coordinator.close()
    return trace


class TestBackendRegression:
    """``threads`` and ``processes`` must match ``serial`` on stress streams."""

    @pytest.mark.parametrize("backend", ["threads", "processes"])
    @pytest.mark.parametrize("num_shards", [4, 16])
    def test_parallel_backend_matches_serial(self, backend, num_shards):
        def make(backend_name):
            return Coordinator(
                CoordinatorConfig(
                    bounds=BOUNDS,
                    window=40,
                    cells_per_axis=32,
                    num_shards=num_shards,
                    backend=backend_name,
                )
            )

        stream = boundary_stream(seed=17)
        expected = drive(make("serial"), stream)
        actual = drive(make(backend), stream)
        for epoch, (exp, act) in enumerate(zip(expected, actual)):
            assert act == exp, f"{backend} diverged from serial at epoch {epoch}"

    def test_process_workers_revive_from_snapshot_after_close(self):
        """Closing mid-stream forces a respawn: fresh workers must bootstrap
        their replicas from the live-record snapshot (the journal prefix they
        never saw has been truncated) and stay bit-for-bit exact."""
        stream = boundary_stream(seed=31, epochs=6)
        serial = drive(
            Coordinator(
                CoordinatorConfig(bounds=BOUNDS, window=40, num_shards=4, backend="serial")
            ),
            stream,
        )
        revived = drive(
            Coordinator(
                CoordinatorConfig(bounds=BOUNDS, window=40, num_shards=4, backend="processes")
            ),
            stream,
            close_before_epoch=3,
        )
        assert revived == serial

    def test_journal_only_recorded_for_process_backend(self):
        """serial/threads never consume the journal, so it must stay empty."""
        stream = boundary_stream(seed=7, epochs=2)
        for backend, journal_expected in (("serial", False), ("threads", False)):
            coordinator = Coordinator(
                CoordinatorConfig(bounds=BOUNDS, window=40, num_shards=4, backend=backend)
            )
            drive(coordinator, stream)
            assert bool(coordinator.router.journal) == journal_expected, backend

    def test_more_workers_than_shards_is_clamped_and_exact(self):
        """Satellite regression: ``workers > num_shards`` used to spawn
        workers with empty shard sets that replayed empty journals forever.
        The pool must clamp to the shard count, and the results must stay
        bit-for-bit identical."""
        stream = boundary_stream(seed=13, epochs=4)
        serial = drive(
            Coordinator(
                CoordinatorConfig(bounds=BOUNDS, window=40, num_shards=4, backend="serial")
            ),
            stream,
        )
        coordinator = Coordinator(
            CoordinatorConfig(bounds=BOUNDS, window=40, num_shards=4, backend="serial")
        )
        # Swap in an oversized process pool directly (the CLI has no worker
        # knob, but the backend API does).
        backend = ProcessBackend(workers=9)
        coordinator.router.pipeline.backend = backend
        coordinator.router._journal_enabled = True
        try:
            oversized = drive(coordinator, stream)
            assert oversized == serial
            assert len(backend._processes) == 0  # drive() closed the pool
        finally:
            backend.close()

    def test_oversized_pool_spawns_at_most_one_worker_per_shard(self):
        coordinator = Coordinator(
            CoordinatorConfig(bounds=BOUNDS, window=40, num_shards=4, backend="serial")
        )
        backend = ProcessBackend(workers=9)
        coordinator.router.pipeline.backend = backend
        coordinator.router._journal_enabled = True
        try:
            for state in boundary_stream(seed=13, epochs=1)[0][1]:
                coordinator.submit_state(state)
            coordinator.run_epoch(10)
            assert len(backend._processes) == 4
            # Every shard is assigned, and every spawned worker holds >= 1 shard.
            assert sorted(backend._assignment) == [0, 1, 2, 3]
            assert set(backend._assignment.values()) == set(range(4))
        finally:
            backend.close()
            coordinator.close()

    def test_invalid_worker_counts_rejected(self):
        with pytest.raises(ConfigurationError):
            ProcessBackend(workers=0)
        with pytest.raises(ConfigurationError):
            ThreadBackend(workers=-1)
        with pytest.raises(ConfigurationError):
            create_backend("processes", workers=0)
        with pytest.raises(ConfigurationError):
            ProcessBackend.assign_shards([5, 3], workers=0)


    def test_parallel_path_ids_match_serial_allocation(self):
        """Renumbering reproduces the exact ids the serial replay allocates."""
        stream = boundary_stream(seed=23, epochs=4)
        serial = drive(
            Coordinator(
                CoordinatorConfig(bounds=BOUNDS, window=40, num_shards=4, backend="serial")
            ),
            stream,
        )
        threaded = drive(
            Coordinator(
                CoordinatorConfig(bounds=BOUNDS, window=40, num_shards=4, backend="threads")
            ),
            stream,
        )
        for exp, act in zip(serial, threaded):
            assert [r[0] for r in act["records"]] == [r[0] for r in exp["records"]]


class TestLoadAwareAssignment:
    """``ProcessBackend.assign_shards``: deterministic LPT balancing."""

    def test_heaviest_shards_spread_across_workers(self):
        assignment = ProcessBackend.assign_shards([100, 90, 1, 2], workers=2)
        # The two hot shards must not share a worker.
        assert assignment[0] != assignment[1]
        loads = {}
        for shard_id, worker in assignment.items():
            loads[worker] = loads.get(worker, 0) + [100, 90, 1, 2][shard_id]
        assert max(loads.values()) <= 102

    def test_assignment_is_deterministic(self):
        loads = [5, 30, 30, 1, 17, 0, 8, 2]
        reference = ProcessBackend.assign_shards(loads, workers=3)
        for _ in range(5):
            assert ProcessBackend.assign_shards(loads, workers=3) == reference

    def test_every_shard_gets_a_worker(self):
        assignment = ProcessBackend.assign_shards([0] * 16, workers=5)
        assert sorted(assignment) == list(range(16))
        assert set(assignment.values()) <= set(range(5))

    def test_previous_pins_are_honoured(self):
        """Pinned shards stay on their workers; the rest LPT-balance around
        the pinned totals."""
        loads = [50, 1, 1, 1]
        assignment = ProcessBackend.assign_shards(
            loads, workers=4, previous={1: 3, 2: 2}
        )
        assert assignment[1] == 3
        assert assignment[2] == 2
        assert sorted(assignment) == [0, 1, 2, 3]
        # The heavy unpinned shard lands on an idle worker, not a pinned one.
        assert assignment[0] in (0, 1)

    def test_out_of_range_pins_are_ignored(self):
        assignment = ProcessBackend.assign_shards(
            [5, 5], workers=2, previous={7: 0, 0: 9}
        )
        assert sorted(assignment) == [0, 1]
        assert set(assignment.values()) <= {0, 1}

    def test_reassignment_is_stable_under_unchanged_load(self):
        """Satellite regression: re-running the assignment with the old map
        pinned must reproduce it exactly — the from-scratch LPT used to
        reshuffle shards (and so retire replicas) even when nothing moved."""
        loads = [30, 20, 10, 5, 5]
        first = ProcessBackend.assign_shards(loads, workers=3)
        assert ProcessBackend.assign_shards(loads, workers=3, previous=first) == first

    def test_skewed_loads_beat_the_old_modulo_split(self):
        """The motivating case: hot downtown shards used to collide on the
        same modulo worker.  With shard loads concentrated on shards 0 and
        4 (which share ``shard_id % 4 == 0``), LPT must separate them."""
        loads = [80, 1, 1, 1, 70, 1, 1, 1]
        assignment = ProcessBackend.assign_shards(loads, workers=4)
        assert assignment[0] != assignment[4]
        per_worker = {}
        for shard_id, worker in assignment.items():
            per_worker[worker] = per_worker.get(worker, 0) + loads[shard_id]
        # Old modulo split would put 150 on one worker; LPT caps near max load.
        assert max(per_worker.values()) <= 81


class TestReplicaReuse:
    """Satellite regression: a migration that leaves a worker's shard set
    untouched must keep its process (and warmed replicas) alive — the old
    ``on_rebalance`` tore the whole fleet down on every migration."""

    def test_elastic_split_reuses_untouched_workers(self):
        coordinator = Coordinator(
            CoordinatorConfig(
                bounds=BOUNDS,
                window=200,
                cells_per_axis=32,
                num_shards=4,
                backend="serial",
                elastic="auto",
                max_shards=6,
                # Quiet threshold: only the *forced* split below migrates —
                # the post-split kd fleet must not auto-refit at the next
                # boundary (that would legitimately re-stale every worker).
                rebalance_threshold=6.0,
            )
        )
        router = coordinator.router
        # Pin the worker count below any clamp crossing (4 workers serve
        # both the 4- and the 5-shard fleet), as the oversized-pool tests do.
        backend = ProcessBackend(workers=4)
        router.pipeline.backend = backend
        router._journal_enabled = True
        try:
            rng = random.Random(5)
            states = []
            for i in range(40):  # downtown: shard 0 of the 2x2 layout
                x, y = rng.uniform(10.0, 400.0), rng.uniform(10.0, 400.0)
                states.append(
                    ObjectState(
                        i, Point(x, y), 0, Point(x - 20, y - 20), Point(x + 20, y + 20), 5
                    )
                )
            for offset, (cx, cy) in enumerate(
                [(700.0, 200.0), (200.0, 700.0), (700.0, 700.0)]
            ):
                states.append(
                    ObjectState(
                        100 + offset,
                        Point(cx, cy),
                        0,
                        Point(cx - 20, cy - 20),
                        Point(cx + 20, cy + 20),
                        5,
                    )
                )
            for state in states:
                coordinator.submit_state(state)
            coordinator.run_epoch(10)
            assert len(backend._processes) == 4
            assert backend.workers_reused == 0
            # Forced elastic action: split the hot downtown shard (4 -> 5).
            # Shards 1-3 keep their bounds and records; with one shard per
            # worker, the downtown worker must rebuild (its shard split) and
            # one cold worker inherits the spilled half — the other two keep
            # their exact sets and must survive untouched.
            assert router.rebalance() is True
            assert len(router.shards) == 5
            assert backend.workers_reused == 2
            stale = set(backend._stale_workers)
            assert len(stale) == 2
            # The next epoch touches every shard: exactly the stale workers
            # respawn lazily; nothing counts as a crash restart.
            followup = [
                (200 + i, x, y)
                for i, (x, y) in enumerate(
                    [(30.0, 30.0), (480.0, 100.0), (700.0, 200.0), (200.0, 700.0), (700.0, 700.0)]
                )
            ]
            for object_id, x, y in followup:
                coordinator.submit_state(
                    ObjectState(
                        object_id,
                        Point(x, y),
                        10,
                        Point(x - 15, y - 15),
                        Point(x + 15, y + 15),
                        15,
                    )
                )
            coordinator.run_epoch(20)
            assert backend.workers_respawned == len(stale)
            assert backend.worker_restarts == 0
            assert not backend._stale_workers
            assert len(backend._processes) == 4
        finally:
            coordinator.close()

    def test_stop_the_world_fallback_without_fleet_update(self):
        """``on_rebalance(None)`` (or before any fleet exists) still means
        full retirement — the legacy contract."""
        backend = ProcessBackend(workers=2)
        backend.on_rebalance(None)  # no fleet: harmless no-op shutdown
        assert backend.workers_reused == 0
        assert backend.workers_respawned == 0
        backend.close()


class TestWorkerFaultRecovery:
    """Kill-and-restart of process workers must be answer-invariant.

    ``restart_worker`` is the explicit recovery path (callable from outside
    ``on_rebalance`` — the kill-worker fault injection depends on it); the
    pipeline's dead-worker detection is the implicit one.  Both respawn from
    a live-state snapshot and must stay bit-for-bit equal to serial.
    """

    @staticmethod
    def make(backend_name: str) -> Coordinator:
        return Coordinator(
            CoordinatorConfig(bounds=BOUNDS, window=40, num_shards=4, backend=backend_name)
        )

    @staticmethod
    def drive_with_fault(coordinator: Coordinator, stream, fault) -> List[dict]:
        """Like :func:`drive`, but calls ``fault(coordinator, index)`` before
        each epoch's submissions."""
        trace = []
        try:
            for index, (boundary, states) in enumerate(stream):
                fault(coordinator, index)
                for state in states:
                    coordinator.submit_state(state)
                outcome = coordinator.run_epoch(boundary)
                trace.append(
                    {
                        "responses": outcome.responses,
                        "records": sorted(
                            (r.path_id, r.path.start.as_tuple(), r.path.end.as_tuple())
                            for r in coordinator.index.records
                        ),
                        "hotness": sorted(coordinator.hotness.items()),
                        "top_k": coordinator.top_k(10),
                    }
                )
        finally:
            coordinator.close()
        return trace

    def test_explicit_restart_after_kill_is_exact(self):
        """The regression this satellite exists for: ``restart_worker`` used
        to be reachable only through ``on_rebalance``; killed workers now
        recover eagerly between epochs without perturbing any answer."""
        stream = boundary_stream(seed=23, epochs=6)
        expected = self.drive_with_fault(self.make("serial"), stream, lambda c, i: None)

        def kill_then_restart(coordinator: Coordinator, index: int) -> None:
            if index not in (2, 4):
                return
            backend = coordinator.router.pipeline.backend
            shard_id = index % len(coordinator.router.shards)
            worker = backend.worker_for_shard(shard_id)
            backend.kill_worker(worker)
            assert not backend.workers_alive()[worker]
            assert backend.restart_worker(coordinator.router, shard_id) == worker
            assert backend.workers_alive()[worker]

        coordinator = self.make("processes")
        backend = coordinator.router.pipeline.backend
        actual = self.drive_with_fault(coordinator, stream, kill_then_restart)
        assert backend.worker_restarts == 2
        assert actual == expected

    def test_dead_worker_is_detected_and_respawned_mid_pipeline(self):
        """A worker that dies *without* an explicit restart: the next pipeline
        round trip must detect the corpse, respawn from snapshot and retry —
        still bit-for-bit equal to serial."""
        stream = boundary_stream(seed=23, epochs=6)
        expected = self.drive_with_fault(self.make("serial"), stream, lambda c, i: None)

        def kill_only(coordinator: Coordinator, index: int) -> None:
            if index == 3:
                coordinator.router.pipeline.backend.kill_worker(0)

        coordinator = self.make("processes")
        backend = coordinator.router.pipeline.backend
        actual = self.drive_with_fault(coordinator, stream, kill_only)
        assert backend.worker_restarts >= 1
        assert actual == expected

    def test_restart_worker_spawns_the_fleet_when_cold(self):
        """Before the first epoch there is no fleet; restart_worker must
        bring one up rather than index into an empty pool."""
        coordinator = self.make("processes")
        try:
            backend = coordinator.router.pipeline.backend
            assert backend.worker_count == 0
            worker = backend.restart_worker(coordinator.router, shard_id=0)
            assert backend.worker_count > 0
            assert backend.workers_alive()[worker]
        finally:
            coordinator.close()

    def test_fault_hooks_validate_their_targets(self):
        coordinator = self.make("processes")
        try:
            backend = coordinator.router.pipeline.backend
            assert backend.worker_for_shard(0) is None  # fleet not spawned yet
            with pytest.raises(ConfigurationError):
                backend.kill_worker(0)
            coordinator.submit_state(boundary_stream(seed=1, epochs=1)[0][1][0])
            coordinator.run_epoch(10)
            with pytest.raises(ConfigurationError):
                backend.kill_worker(backend.worker_count)
            with pytest.raises(ConfigurationError):
                backend.restart_worker(coordinator.router, shard_id=999)
        finally:
            coordinator.close()
