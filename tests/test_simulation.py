"""Integration tests for the end-to-end simulation engine."""

from __future__ import annotations

import pytest

from repro.core.errors import ConfigurationError
from repro.network.generator import NetworkConfig
from repro.simulation.engine import HotPathSimulation, SimulationConfig


SMALL_NETWORK = NetworkConfig(area_size=2000.0, grid_nodes_per_axis=6, seed=3)


def small_config(**overrides) -> SimulationConfig:
    defaults = dict(
        num_objects=80,
        tolerance=10.0,
        window=50,
        epoch_length=10,
        duration=80,
        seed=5,
        network_config=SMALL_NETWORK,
    )
    defaults.update(overrides)
    return SimulationConfig(**defaults)


class TestSimulationConfig:
    def test_invalid_tolerance(self):
        with pytest.raises(ConfigurationError):
            small_config(tolerance=0.0)

    def test_invalid_epoch(self):
        with pytest.raises(ConfigurationError):
            small_config(epoch_length=0)

    def test_duration_must_exceed_epoch(self):
        with pytest.raises(ConfigurationError):
            small_config(duration=10, epoch_length=10)

    def test_workload_config_derivation(self):
        config = small_config(delta=0.1)
        workload = config.workload_config()
        assert workload.num_objects == config.num_objects
        assert workload.report_uncertainty  # delta > 0 implies uncertain measurements


class TestSimulationRun:
    @pytest.fixture(scope="class")
    def result(self):
        return HotPathSimulation(small_config()).run()

    def test_epochs_recorded(self, result):
        # duration=80, epoch=10 -> epochs at t=10..70 plus the final one at t=79.
        assert len(result.metrics.epochs) == 8

    def test_index_contains_paths(self, result):
        assert result.coordinator.index_size() > 0
        assert len(result.hot_paths()) > 0

    def test_top_k_paths_sorted_by_hotness(self, result):
        top = result.top_k_paths(10)
        hotness_values = [scored.hotness for scored in top]
        assert hotness_values == sorted(hotness_values, reverse=True)

    def test_top_k_score_positive(self, result):
        assert result.top_k_score(10) > 0.0

    def test_summary_keys(self, result):
        summary = result.summary()
        assert summary["uplink_messages"] > 0
        assert summary["naive_uplink_messages"] > summary["uplink_messages"]
        assert 0.0 < summary["message_reduction_versus_naive"] <= 1.0

    def test_dp_baseline_ran(self, result):
        assert result.dp_baseline is not None
        assert result.metrics.mean_dp_index_size >= 0.0

    def test_responses_track_states(self, result):
        # Every processed state message is answered by exactly one downlink
        # response; states submitted after the final epoch stay unanswered, so
        # the downlink count can lag the uplink count by at most that residue.
        downlink = result.metrics.downlink.messages
        uplink = result.metrics.uplink.messages
        assert 0 < downlink <= uplink
        assert downlink == result.metrics.total_states_processed

    def test_hot_paths_have_positive_hotness_and_length(self, result):
        for record, hotness in result.hot_paths():
            assert hotness >= 1
            assert record.path.length >= 0.0

    def test_paths_lie_inside_monitored_area(self, result):
        bounds = result.network.bounding_box(padding=result.config.tolerance * 4)
        for record, _ in result.hot_paths():
            assert bounds.contains_point(record.path.start)
            assert bounds.contains_point(record.path.end)


class TestSimulationVariants:
    def test_without_baselines(self):
        result = HotPathSimulation(
            small_config(run_dp_baseline=False, run_naive_baseline=False, duration=60)
        ).run()
        assert result.dp_baseline is None
        assert result.metrics.naive_uplink.messages == 0
        assert result.coordinator.index_size() >= 0

    def test_with_uncertainty(self):
        result = HotPathSimulation(
            small_config(delta=0.1, duration=60, run_dp_baseline=False)
        ).run()
        assert result.metrics.uplink.messages > 0

    def test_determinism(self):
        first = HotPathSimulation(small_config(duration=60)).run()
        second = HotPathSimulation(small_config(duration=60)).run()
        assert first.summary() == pytest.approx(second.summary(), rel=1e-9, abs=1e-2)

    def test_larger_tolerance_reduces_messages(self):
        tight = HotPathSimulation(
            small_config(tolerance=2.0, duration=60, run_dp_baseline=False)
        ).run()
        loose = HotPathSimulation(
            small_config(tolerance=40.0, duration=60, run_dp_baseline=False)
        ).run()
        assert loose.metrics.uplink.messages <= tight.metrics.uplink.messages

    def test_custom_network_is_used(self, tiny_manual_network):
        config = SimulationConfig(
            num_objects=20,
            tolerance=5.0,
            window=30,
            epoch_length=5,
            duration=40,
            seed=1,
        )
        result = HotPathSimulation(config, network=tiny_manual_network).run()
        assert result.network is tiny_manual_network
