"""Differential harness: sharded coordinators must match the seed coordinator.

Two layers of scenarios drive a single-shard coordinator (the seed
architecture) and sharded fleets (2x2 and 4x4) with the *same* inputs:

* synthetic state-message streams crafted to stress shard boundaries
  (shared start vertices, FSAs straddling shard borders, endpoints exactly on
  borders, points outside the monitored area, out-of-order timestamps);
* full end-to-end simulations over several seeds and workload shapes.

Every scenario runs for each execution backend (``serial``, ``threads``,
``processes`` — see :mod:`repro.coordinator.execution`): the parallel
backends run the candidate passes on worker pools and commit decisions per
conflict group, and must still be bit-for-bit identical to the seed.

Equality is asserted bit-for-bit at every epoch: the responses sent back to
objects, the bookkeeping counters, the full index contents (ids, geometry,
creation times), the hotness table and the top-k under both rankings.  Any
divergence — an approximate merge, a non-deterministic tie-break, a missed
cross-shard path — fails the suite.

The shard-local FSA overlap structures run inside every one of these
scenarios (the default adaptive halo is exact, so the bit-for-bit contract
covers them); :class:`TestOverlapHalo` adds the harness's *deviation mode*,
which quantifies — instead of forbidding — the divergence a truncated fixed
``overlap_halo`` introduces, and pins that it is deterministic and
backend-independent.
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

import pytest

from repro.core.geometry import Point, Rectangle
from repro.client.state import ObjectState
from repro.coordinator.coordinator import Coordinator, CoordinatorConfig
from repro.coordinator.grid_index import GridIndex
from repro.coordinator.hotness import HotnessTracker
from repro.coordinator.sharding import ShardRouter, ShardedSinglePath
from repro.coordinator.single_path import SinglePathStrategy
from repro.network.generator import NetworkConfig
from repro.simulation.engine import HotPathSimulation, SimulationConfig

BOUNDS = Rectangle(Point(0.0, 0.0), Point(1000.0, 1000.0))
SHARD_COUNTS = (4, 16)  # 2x2 and 4x4
PARALLEL_BACKENDS = ("threads", "processes")


def make_coordinator(
    num_shards: int,
    window: int = 60,
    backend: str = "serial",
    overlap_halo: int = None,
    partition: str = "uniform",
    rebalance_threshold: float = 2.0,
    epoch_mode: str = "delta",
    kernel: str = "columnar",
) -> Coordinator:
    return Coordinator(
        CoordinatorConfig(
            bounds=BOUNDS,
            window=window,
            cells_per_axis=32,
            num_shards=num_shards,
            backend=backend,
            overlap_halo=overlap_halo,
            partition=partition,
            rebalance_threshold=rebalance_threshold,
            epoch_mode=epoch_mode,
            kernel=kernel,
        )
    )


def index_snapshot(coordinator: Coordinator) -> Dict:
    """Canonical, order-independent snapshot of all coordinator state."""
    records = sorted(
        (record.path_id, record.path.start.as_tuple(), record.path.end.as_tuple(), record.created_at)
        for record in coordinator.index.records
    )
    return {
        "size": coordinator.index_size(),
        "records": records,
        "hotness": sorted(coordinator.hotness.items()),
        "pending_events": coordinator.hotness.pending_events,
        "top_k_hotness": coordinator.top_k(10),
        "top_k_score": coordinator.top_k(10, by_score=True),
        "top_k_score_value": coordinator.top_k_score(10),
    }


def synthetic_stream(seed: int, epochs: int = 8, per_epoch: int = 30) -> List[Tuple[int, List[ObjectState]]]:
    """A seeded state-message stream engineered to stress shard boundaries.

    Start vertices are drawn from a small pool that includes points exactly on
    the 2x2 and 4x4 shard borders (x or y in {250, 500, 750}) and points
    outside the monitored area; FSAs are large enough to straddle borders and
    end timestamps are emitted out of submission order.
    """
    rng = random.Random(seed)
    start_pool = [
        Point(rng.uniform(-50.0, 1050.0), rng.uniform(-50.0, 1050.0)) for _ in range(12)
    ]
    start_pool += [
        Point(500.0, 300.0),  # on the 2x2 vertical border
        Point(250.0, 750.0),  # on 4x4 borders
        Point(500.0, 500.0),  # the exact centre, corner of all four 2x2 shards
        Point(-20.0, 500.0),  # clamped into a border shard
    ]
    stream = []
    for epoch in range(1, epochs + 1):
        boundary = epoch * 10
        states = []
        for i in range(per_epoch):
            object_id = rng.randrange(per_epoch * 2)
            start = rng.choice(start_pool)
            half = rng.uniform(5.0, 120.0)
            centre = Point(
                start.x + rng.uniform(-200.0, 200.0),
                start.y + rng.uniform(-200.0, 200.0),
            )
            fsa = Rectangle.from_center(centre, half)
            t_end = boundary - rng.randrange(10)  # deliberately out of order
            states.append(
                ObjectState(object_id, start, max(0, t_end - 5), fsa.low, fsa.high, t_end)
            )
        stream.append((boundary, states))
    return stream


def skewed_stream(seed: int, epochs: int = 8, per_epoch: int = 30) -> List[Tuple[int, List[ObjectState]]]:
    """A density-skewed stream: most activity in a downtown hotspot corner.

    The workload the load-adaptive kd partition exists for — a uniform 4x4
    grid concentrates ~80% of the records on the downtown shards, driving the
    imbalance statistic well past any rebalance threshold.
    """
    rng = random.Random(seed)
    stream = []
    for epoch in range(1, epochs + 1):
        boundary = epoch * 10
        states = []
        for _ in range(per_epoch):
            if rng.random() < 0.8:
                start = Point(rng.uniform(0.0, 250.0), rng.uniform(0.0, 250.0))
            else:
                start = Point(rng.uniform(-50.0, 1050.0), rng.uniform(-50.0, 1050.0))
            centre = Point(
                start.x + rng.uniform(-150.0, 150.0),
                start.y + rng.uniform(-150.0, 150.0),
            )
            fsa = Rectangle.from_center(centre, rng.uniform(5.0, 120.0))
            t_end = boundary - rng.randrange(10)
            states.append(
                ObjectState(
                    rng.randrange(per_epoch * 2), start, max(0, t_end - 5), fsa.low, fsa.high, t_end
                )
            )
        stream.append((boundary, states))
    return stream


def drive(coordinator: Coordinator, stream, rebalance_before: Tuple[int, ...] = ()) -> List[Dict]:
    """Feed the stream epoch by epoch, snapshotting after every epoch.

    ``rebalance_before`` forces a partition refit-and-migrate at those epoch
    indices (before the epoch runs) — on top of whatever automatic
    rebalancing the coordinator's own threshold triggers.
    """
    trace = []
    try:
        for index, (boundary, states) in enumerate(stream):
            if index in rebalance_before and coordinator.router is not None:
                coordinator.router.rebalance()
            for state in states:
                coordinator.submit_state(state)
            outcome = coordinator.run_epoch(boundary)
            trace.append(
                {
                    "responses": outcome.responses,
                    "states_processed": outcome.states_processed,
                    "paths_inserted": outcome.paths_inserted,
                    "paths_reused": outcome.paths_reused,
                    "paths_expired": outcome.paths_expired,
                    "snapshot": index_snapshot(coordinator),
                }
            )
    finally:
        coordinator.close()
    return trace


class TestSeedEquivalence:
    """``num_shards=1`` must be the seed architecture, bit for bit."""

    def test_single_shard_uses_seed_structures(self):
        coordinator = make_coordinator(1)
        assert coordinator.router is None
        assert isinstance(coordinator.index, GridIndex)
        assert isinstance(coordinator.hotness, HotnessTracker)
        assert isinstance(coordinator.strategy, SinglePathStrategy)

    @pytest.mark.parametrize("seed", [3, 11, 42])
    def test_single_shard_is_deterministic(self, seed):
        stream = synthetic_stream(seed)
        assert drive(make_coordinator(1), stream) == drive(make_coordinator(1), stream)


class TestStreamDifferential:
    """Sharded fleets replayed against the seed coordinator, epoch by epoch."""

    @pytest.mark.parametrize("seed", [3, 11, 42, 1234])
    @pytest.mark.parametrize("num_shards", SHARD_COUNTS)
    def test_sharded_trace_matches_seed(self, num_shards, seed):
        stream = synthetic_stream(seed)
        seed_trace = drive(make_coordinator(1), stream)
        sharded_trace = drive(make_coordinator(num_shards), stream)
        for epoch, (expected, actual) in enumerate(zip(seed_trace, sharded_trace)):
            assert actual == expected, f"divergence at epoch {epoch}"

    @pytest.mark.parametrize("seed", [11, 42])
    @pytest.mark.parametrize("backend", PARALLEL_BACKENDS)
    @pytest.mark.parametrize("num_shards", SHARD_COUNTS)
    def test_parallel_backend_trace_matches_seed(self, num_shards, backend, seed):
        """2x2 and 4x4 fleets on the worker-pool backends, bit for bit."""
        stream = synthetic_stream(seed)
        seed_trace = drive(make_coordinator(1), stream)
        parallel_trace = drive(make_coordinator(num_shards, backend=backend), stream)
        for epoch, (expected, actual) in enumerate(zip(seed_trace, parallel_trace)):
            assert actual == expected, (
                f"backend={backend} diverged from the seed at epoch {epoch}"
            )

    @pytest.mark.parametrize("num_shards", SHARD_COUNTS)
    def test_sharded_coordinator_really_shards(self, num_shards):
        coordinator = make_coordinator(num_shards)
        assert isinstance(coordinator.router, ShardRouter)
        assert isinstance(coordinator.strategy, ShardedSinglePath)
        drive(coordinator, synthetic_stream(7))
        stats = coordinator.shard_statistics()
        assert stats["num_shards"] == num_shards
        assert stats["total_records"] == coordinator.index_size()
        # The stream spreads over the whole area, so several shards own paths.
        assert stats["max_shard_records"] < stats["total_records"]


class TestRebalanceDifferential:
    """Load-adaptive kd partitions and mid-replay migrations, bit for bit.

    The partition layer decides *where* per-shard state lives, never what
    the algorithm answers — so a kd fleet with rebalancing enabled (and a
    fleet forced to migrate mid-replay) must reproduce the seed coordinator
    exactly, on every backend.  Every scenario asserts rebalances actually
    happened, so the equivalence claim is never vacuous.
    """

    @pytest.mark.parametrize("backend", ("serial",) + PARALLEL_BACKENDS)
    @pytest.mark.parametrize("num_shards", SHARD_COUNTS)
    def test_kd_fleet_with_auto_rebalance_matches_seed(self, num_shards, backend):
        """The skewed downtown stream, a tight threshold (rebalances fire
        nearly every epoch), 2x2 and 4x4 fleets, all three backends."""
        stream = skewed_stream(42)
        seed_trace = drive(make_coordinator(1), stream)
        kd = make_coordinator(
            num_shards, backend=backend, partition="kd", rebalance_threshold=1.2
        )
        kd_trace = drive(kd, stream)
        for epoch, (expected, actual) in enumerate(zip(seed_trace, kd_trace)):
            assert actual == expected, (
                f"kd/{backend} diverged from the seed at epoch {epoch}"
            )
        stats = kd.shard_statistics()
        assert stats["rebalances"] > 0, "no rebalance fired — vacuous scenario"

    @pytest.mark.parametrize("seed", [11, 42])
    @pytest.mark.parametrize("num_shards", SHARD_COUNTS)
    def test_forced_midreplay_migration_matches_seed(self, num_shards, seed):
        """Explicit migrations between epochs — including one refitting a
        uniform fleet onto kd splits mid-stream — change nothing."""
        stream = synthetic_stream(seed)
        seed_trace = drive(make_coordinator(1), stream)
        migrated = make_coordinator(num_shards)  # starts uniform
        migrated_trace = drive(migrated, stream, rebalance_before=(2, 5))
        for epoch, (expected, actual) in enumerate(zip(seed_trace, migrated_trace)):
            assert actual == expected, f"migration diverged at epoch {epoch}"
        assert migrated.router.rebalances >= 1

    @pytest.mark.parametrize("backend", PARALLEL_BACKENDS)
    def test_forced_migration_on_parallel_backends_matches_seed(self, backend):
        """Process workers must re-bootstrap replicas from the migrated
        snapshot (journal reset, new load-aware assignment) mid-stream."""
        stream = skewed_stream(11)
        seed_trace = drive(make_coordinator(1), stream)
        migrated = make_coordinator(16, backend=backend, partition="kd")
        migrated_trace = drive(migrated, stream, rebalance_before=(1, 3, 6))
        for epoch, (expected, actual) in enumerate(zip(seed_trace, migrated_trace)):
            assert actual == expected, (
                f"{backend} migration diverged at epoch {epoch}"
            )
        assert migrated.router.rebalances >= 3

    def test_kd_rebalancing_actually_balances_the_skew(self):
        """The point of the whole layer: on the downtown workload the kd
        fleet ends far better balanced than the uniform grid, at identical
        answers."""
        stream = skewed_stream(42)
        uniform = make_coordinator(16)
        kd = make_coordinator(16, partition="kd", rebalance_threshold=1.2)
        uniform_trace = drive(uniform, stream)
        kd_trace = drive(kd, stream)
        assert kd_trace == uniform_trace
        uniform_stats = uniform.shard_statistics()
        kd_stats = kd.shard_statistics()
        assert uniform_stats["total_records"] == kd_stats["total_records"]
        assert kd_stats["imbalance"] < uniform_stats["imbalance"] / 2

    def test_corridor_report_survives_migrations(self):
        """The boundary ledger is *recomputed* at migration, and the corridor
        stitch welds against it — so the corridor report after every epoch
        (with migrations forced between epochs) must equal the seed's global
        stitch, not just the path-level snapshot."""
        stream = skewed_stream(21)
        seed = make_coordinator(1)
        kd = make_coordinator(16, partition="kd", rebalance_threshold=1.2)
        try:
            for index, (boundary, states) in enumerate(stream):
                if index in (2, 5):
                    kd.router.rebalance()
                for state in states:
                    seed.submit_state(state)
                    kd.submit_state(state)
                seed.run_epoch(boundary)
                kd.run_epoch(boundary)
                assert [corridor.path_ids for corridor in kd.hot_corridors()] == [
                    corridor.path_ids for corridor in seed.hot_corridors()
                ], f"corridor report diverged at epoch {index}"
            assert kd.router.rebalances >= 2
        finally:
            seed.close()
            kd.close()

    def test_kd_is_deterministic_across_runs_and_backends(self):
        """Adaptive rebalancing must stay reproducible: identical traces and
        identical final partitions on every run and backend."""
        stream = skewed_stream(7)

        def run(backend):
            coordinator = make_coordinator(
                16, backend=backend, partition="kd", rebalance_threshold=1.2
            )
            trace = drive(coordinator, stream)
            return trace, coordinator.router.grid.describe()

        reference_trace, reference_partition = run("serial")
        again_trace, again_partition = run("serial")
        assert again_trace == reference_trace
        assert again_partition == reference_partition
        for backend in PARALLEL_BACKENDS:
            parallel_trace, parallel_partition = run(backend)
            assert parallel_trace == reference_trace, f"kd diverged on {backend}"
            assert parallel_partition == reference_partition, (
                f"partition fit diverged on {backend}"
            )


def drive_with_corridors(
    coordinator: Coordinator, stream, rebalance_before: Tuple[int, ...] = ()
) -> List[Dict]:
    """Like :func:`drive`, but also snapshots the corridor report and the
    per-epoch :class:`~repro.coordinator.delta.EpochDelta` after every epoch,
    so the incremental pipeline's whole answer surface is compared."""
    trace = []
    try:
        for index, (boundary, states) in enumerate(stream):
            if index in rebalance_before and coordinator.router is not None:
                coordinator.router.rebalance()
            for state in states:
                coordinator.submit_state(state)
            outcome = coordinator.run_epoch(boundary)
            trace.append(
                {
                    "responses": outcome.responses,
                    "states_processed": outcome.states_processed,
                    "paths_inserted": outcome.paths_inserted,
                    "paths_reused": outcome.paths_reused,
                    "paths_expired": outcome.paths_expired,
                    "snapshot": index_snapshot(coordinator),
                    "corridors": coordinator.hot_corridors(),
                    "delta": outcome.delta,
                }
            )
    finally:
        coordinator.close()
    return trace


def assert_mode_equal(full_trace, delta_trace, context: str) -> None:
    """Per-epoch bit-for-bit equality of everything except the delta itself."""
    assert len(delta_trace) == len(full_trace)
    for epoch, (expected, actual) in enumerate(zip(full_trace, delta_trace)):
        for key in (
            "responses",
            "states_processed",
            "paths_inserted",
            "paths_reused",
            "paths_expired",
            "snapshot",
            "corridors",
        ):
            assert actual[key] == expected[key], (
                f"{context}: {key} diverged from full mode at epoch {epoch}"
            )


class TestEpochModeDifferential:
    """``epoch_mode="delta"`` vs ``epoch_mode="full"``, bit for bit per epoch.

    The incremental pipeline (cross-epoch halo-pool reuse, corridor-chain
    patching, delta-shipped worker state) is pure plumbing: every epoch's
    responses, index contents, hotness table, top-k and corridor report must
    equal a full per-epoch rebuild exactly — under churn, expiry, forced
    migrations and every backend.  Each scenario also pins that the delta
    machinery actually engaged (reuse counters non-zero, deltas emitted), so
    the equivalence claim is never vacuous.
    """

    @pytest.mark.parametrize("seed", [3, 11, 42])
    @pytest.mark.parametrize("num_shards", SHARD_COUNTS)
    def test_delta_trace_matches_full(self, num_shards, seed):
        stream = synthetic_stream(seed)
        full_trace = drive_with_corridors(
            make_coordinator(num_shards, epoch_mode="full"), stream
        )
        delta_coordinator = make_coordinator(num_shards, epoch_mode="delta")
        delta_trace = drive_with_corridors(delta_coordinator, stream)
        assert_mode_equal(full_trace, delta_trace, f"shards={num_shards}")
        # Full mode emits no deltas; delta mode emits one per epoch.
        assert all(entry["delta"] is None for entry in full_trace)
        assert all(entry["delta"] is not None for entry in delta_trace)

    @pytest.mark.parametrize("backend", PARALLEL_BACKENDS)
    @pytest.mark.parametrize("num_shards", SHARD_COUNTS)
    def test_delta_on_parallel_backends_matches_full(self, num_shards, backend):
        stream = synthetic_stream(11)
        full_trace = drive_with_corridors(
            make_coordinator(num_shards, epoch_mode="full"), stream
        )
        delta_trace = drive_with_corridors(
            make_coordinator(num_shards, backend=backend, epoch_mode="delta"), stream
        )
        assert_mode_equal(full_trace, delta_trace, f"{backend}/shards={num_shards}")

    def test_single_shard_delta_matches_full(self):
        """The seed architecture runs the incremental stitcher too."""
        stream = synthetic_stream(42)
        full_trace = drive_with_corridors(make_coordinator(1, epoch_mode="full"), stream)
        delta_trace = drive_with_corridors(make_coordinator(1, epoch_mode="delta"), stream)
        assert_mode_equal(full_trace, delta_trace, "single-shard")

    @pytest.mark.parametrize("backend", ("serial",) + PARALLEL_BACKENDS)
    def test_delta_with_kd_rebalance_matches_full(self, backend):
        """Forced migrations + tight-threshold auto-rebalances mid-replay:
        the pool cache (content-addressed) and the incremental stitcher
        (geometry-based) must survive the record re-placement unchanged."""
        stream = skewed_stream(42)
        full_trace = drive_with_corridors(
            make_coordinator(16, epoch_mode="full"), stream
        )
        delta = make_coordinator(
            16, backend=backend, partition="kd", rebalance_threshold=1.2,
            epoch_mode="delta",
        )
        delta_trace = drive_with_corridors(delta, stream, rebalance_before=(2, 5))
        assert_mode_equal(full_trace, delta_trace, f"kd/{backend}")
        assert delta.router.rebalances >= 2, "no rebalance fired — vacuous scenario"
        assert any(entry["delta"].rebalanced for entry in delta_trace)

    @pytest.mark.parametrize("num_shards", (1,) + SHARD_COUNTS)
    def test_delta_under_forced_expiry_churn_matches_full(self, num_shards):
        """A short window forces paths to expire mid-replay (corridor-aware
        expiry must drop them from chains) and quiet epochs interleave with
        bursts, so chains are built, patched and torn down repeatedly."""
        stream = synthetic_stream(21, epochs=10, per_epoch=20)
        # Quiet epochs: drop all states from epochs 4 and 7 so expiry runs
        # against an unchanged submission side.
        stream = [
            (boundary, [] if index in (4, 7) else states)
            for index, (boundary, states) in enumerate(stream)
        ]
        full_trace = drive_with_corridors(
            make_coordinator(num_shards, window=25, epoch_mode="full"), stream
        )
        delta_trace = drive_with_corridors(
            make_coordinator(num_shards, window=25, epoch_mode="delta"), stream
        )
        assert_mode_equal(full_trace, delta_trace, f"expiry/shards={num_shards}")
        assert any(entry["paths_expired"] > 0 for entry in delta_trace), (
            "window never expired a path — vacuous scenario"
        )
        assert any(entry["delta"].deleted for entry in delta_trace)

    def test_epoch_delta_tracks_hot_membership(self):
        """The emitted delta is a faithful journal: applying each epoch's
        membership delta to the previous hot set yields the next hot set,
        and inserted/deleted ids match the index mutations."""
        from repro.coordinator.delta import apply_membership

        stream = synthetic_stream(11)
        coordinator = make_coordinator(4, window=25, epoch_mode="delta")
        hot: frozenset = frozenset()
        known_ids: set = set()
        try:
            for boundary, states in stream:
                for state in states:
                    coordinator.submit_state(state)
                outcome = coordinator.run_epoch(boundary)
                delta = outcome.delta
                assert delta is not None and delta.timestamp == boundary
                added, removed = delta.membership
                assert not (added & removed), "newly_hot and vanished overlap"
                hot = apply_membership(hot, delta.membership)
                assert hot == frozenset(
                    path_id for path_id, _h in coordinator.hotness.items()
                )
                # Inserted ids are new, live in the index, and never recycled.
                for path_id in delta.inserted:
                    assert path_id not in known_ids
                    known_ids.add(path_id)
                assert len(delta.inserted) == outcome.paths_inserted
                assert len(delta.deleted) == outcome.paths_expired
                for path_id in delta.deleted:
                    assert path_id not in coordinator.index
        finally:
            coordinator.close()

    def test_delta_counters_account_for_reuse(self):
        """A repeating stream must actually *hit* the caches: unchanged halo
        pools are reused across epochs and corridor chains are patched, and
        the statistics surface says so."""
        rng_stream = synthetic_stream(3, epochs=2, per_epoch=25)
        # Re-report the exact same states each epoch (fresh end timestamps
        # keep the window alive) — pool membership is then stable.
        base_states = rng_stream[0][1]
        stream = []
        for epoch in range(1, 7):
            boundary = epoch * 10
            states = [
                ObjectState(
                    s.object_id, s.start, boundary - 5, s.fsa_low, s.fsa_high, boundary - 1
                )
                for s in base_states
            ]
            stream.append((boundary, states))
        coordinator = make_coordinator(4, window=60, epoch_mode="delta")
        try:
            for boundary, states in stream:
                for state in states:
                    coordinator.submit_state(state)
                coordinator.run_epoch(boundary)
                coordinator.hot_corridors()
            stats = coordinator.shard_statistics()
        finally:
            coordinator.close()
        assert stats["pools_reused"] > 0, "pool cache never hit on a repeating stream"
        assert stats["pools_total"] == (
            stats["pools_reused"] + stats["pools_prefix_reused"] + stats["pools_rebuilt"]
        )
        assert stats["chains_reused"] + stats["corridors_reused"] > 0
        # Full mode reports the same schema, all-zero.
        full = make_coordinator(4, epoch_mode="full")
        try:
            full_stats = full.shard_statistics()
        finally:
            full.close()
        for key in (
            "pools_total", "pools_reused", "pools_prefix_reused", "pools_rebuilt",
            "chains_rewelded", "chains_reused", "corridors_patched",
            "corridors_reused", "expiry_coalesced",
        ):
            assert full_stats[key] == 0


def trace_deviation(expected, actual):
    """Harness deviation mode: quantify a halo-truncated run against the seed.

    A fixed ``overlap_halo`` may truncate FSAs out of a shard's pool, so the
    trace is allowed to diverge — but the divergence must be *measured*, not
    waved away.  Returns the fraction of per-object responses that differ and
    the relative final top-k score delta.  Both traces must still process the
    same submissions (deviation changes answers, never drops work).
    """
    assert len(actual) == len(expected)  # deviation never drops an epoch
    responses = mismatched = 0
    for exp, act in zip(expected, actual):
        assert act["states_processed"] == exp["states_processed"]
        assert len(act["responses"]) == len(exp["responses"])
        for expected_response, actual_response in zip(exp["responses"], act["responses"]):
            responses += 1
            mismatched += expected_response != actual_response
    expected_score = expected[-1]["snapshot"]["top_k_score_value"]
    actual_score = actual[-1]["snapshot"]["top_k_score_value"]
    if expected_score:
        score_delta = abs(actual_score - expected_score) / expected_score
    else:
        score_delta = abs(actual_score - expected_score)
    return {
        "response_mismatch_fraction": mismatched / responses if responses else 0.0,
        "top_k_score_relative_delta": score_delta,
    }


class TestOverlapHalo:
    """Shard-local overlap structures: the adaptive halo and full-cover rings
    stay bit-for-bit; truncated rings deviate by a quantified, bounded amount.
    """

    @pytest.mark.parametrize("backend", ("serial",) + PARALLEL_BACKENDS)
    @pytest.mark.parametrize("num_shards", SHARD_COUNTS)
    def test_full_cover_fixed_halo_matches_seed(self, num_shards, backend):
        """A ring covering the whole shard grid pools every FSA everywhere,
        so the fixed-halo code path must reproduce the seed bit for bit."""
        stream = synthetic_stream(11)
        seed_trace = drive(make_coordinator(1), stream)
        full_cover = drive(
            make_coordinator(num_shards, backend=backend, overlap_halo=4), stream
        )
        for epoch, (expected, actual) in enumerate(zip(seed_trace, full_cover)):
            assert actual == expected, f"full-cover halo diverged at epoch {epoch}"

    @pytest.mark.parametrize("seed", [11, 42])
    def test_adaptive_halo_deviation_is_zero(self, seed):
        """The default halo is exact; the deviation mode must report zero."""
        stream = synthetic_stream(seed)
        seed_trace = drive(make_coordinator(1), stream)
        adaptive = drive(make_coordinator(16, overlap_halo=None), stream)
        deviation = trace_deviation(seed_trace, adaptive)
        assert deviation == {
            "response_mismatch_fraction": 0.0,
            "top_k_score_relative_delta": 0.0,
        }

    @pytest.mark.parametrize("seed", [11, 42])
    def test_truncated_halo_deviation_is_quantified_and_bounded(self, seed):
        """``overlap_halo=0`` strips the cross-shard pool down to each shard's
        own FSAs.  On the boundary-stressing stream roughly a quarter of the
        responses shift (measured: 0.23-0.29), so the deviation must be real
        (> 0, the knob is not a no-op), bounded (the truncation degrades
        gracefully), and shrink to nothing as the ring grows."""
        stream = synthetic_stream(seed)
        seed_trace = drive(make_coordinator(1), stream)
        deviations = {}
        for halo in (0, 1, 4):
            trace = drive(make_coordinator(16, overlap_halo=halo), stream)
            deviations[halo] = trace_deviation(seed_trace, trace)
        assert 0.0 < deviations[0]["response_mismatch_fraction"] <= 0.5
        assert deviations[0]["top_k_score_relative_delta"] <= 0.25
        assert (
            deviations[1]["response_mismatch_fraction"]
            <= deviations[0]["response_mismatch_fraction"]
        )
        assert deviations[4]["response_mismatch_fraction"] == 0.0

    def test_truncated_halo_is_deterministic_and_backend_independent(self):
        """Approximation must still be reproducible: the same fixed halo gives
        the same trace on every run and every execution backend."""
        stream = synthetic_stream(42)
        serial = drive(make_coordinator(16, overlap_halo=0), stream)
        again = drive(make_coordinator(16, overlap_halo=0), stream)
        assert again == serial
        for backend in PARALLEL_BACKENDS:
            parallel = drive(
                make_coordinator(16, backend=backend, overlap_halo=0), stream
            )
            assert parallel == serial, f"halo run diverged on backend={backend}"


class TestSimulationDifferential:
    """End-to-end simulations: same workload, different shard counts."""

    WORKLOADS = {
        "default": dict(num_objects=70, duration=80, agility=0.1),
        "agile": dict(num_objects=50, duration=70, agility=0.4),
        "dense": dict(num_objects=110, duration=60, agility=0.1),
    }

    @staticmethod
    def _run(num_shards: int, seed: int, workload: str, backend: str = "serial"):
        params = TestSimulationDifferential.WORKLOADS[workload]
        config = SimulationConfig(
            tolerance=10.0,
            window=50,
            epoch_length=10,
            num_shards=num_shards,
            backend=backend,
            seed=seed,
            network_config=NetworkConfig(area_size=2000.0, grid_nodes_per_axis=6, seed=seed),
            run_dp_baseline=False,
            run_naive_baseline=False,
            **params,
        )
        return HotPathSimulation(config).run()

    @pytest.mark.parametrize("seed,workload", [(3, "default"), (9, "agile"), (21, "dense")])
    @pytest.mark.parametrize("num_shards", SHARD_COUNTS)
    def test_simulation_matches_seed(self, num_shards, seed, workload):
        baseline = self._run(1, seed, workload)
        sharded = self._run(num_shards, seed, workload)

        assert index_snapshot(sharded.coordinator) == index_snapshot(baseline.coordinator)
        assert sharded.top_k_paths() == baseline.top_k_paths()
        assert sharded.top_k_score() == baseline.top_k_score()

        # The per-epoch series must agree too, not just the final state
        # (processing time is the one field allowed to differ).
        for expected, actual in zip(baseline.metrics.epochs, sharded.metrics.epochs):
            assert actual.timestamp == expected.timestamp
            assert actual.index_size == expected.index_size
            assert actual.top_k_score == expected.top_k_score
            assert actual.states_processed == expected.states_processed
            assert actual.paths_inserted == expected.paths_inserted
            assert actual.paths_reused == expected.paths_reused
            assert actual.paths_expired == expected.paths_expired

    @pytest.mark.parametrize("backend", ["threads", "processes"])
    def test_simulation_with_parallel_backend_matches_seed(self, backend):
        baseline = self._run(1, 9, "agile")
        parallel = self._run(16, 9, "agile", backend=backend)
        assert index_snapshot(parallel.coordinator) == index_snapshot(baseline.coordinator)
        assert parallel.top_k_paths() == baseline.top_k_paths()
        assert parallel.top_k_score() == baseline.top_k_score()
