"""End-to-end integration tests on deterministic scenarios with known ground truth.

The network workload is stochastic, so these tests instead drive the full
client/coordinator protocol over the hand-crafted scenario trajectories whose
hot paths are known by construction: a shared straight corridor must produce a
small number of paths with hotness equal to the number of objects that
travelled it.
"""

from __future__ import annotations

from typing import Dict, List

import pytest

from repro.core.geometry import Point, Rectangle
from repro.core.trajectory import Trajectory
from repro.client.raytrace import RayTraceConfig, RayTraceFilter
from repro.coordinator.coordinator import Coordinator, CoordinatorConfig
from repro.workload.scenarios import (
    converging_event_trajectories,
    evacuation_trajectories,
    linear_corridor_trajectories,
    waypoint_corridor_trajectories,
)


def replay_trajectories(
    trajectories: Dict[int, Trajectory],
    tolerance: float,
    bounds: Rectangle,
    window: int = 1000,
    epoch_length: int = 5,
) -> Coordinator:
    """Drive the full RayTrace + SinglePath pipeline over offline trajectories.

    Measurements are replayed in global timestamp order; the coordinator runs
    one epoch every ``epoch_length`` timestamps, exactly like the simulation
    engine, but without any stochastic workload in the loop.
    """
    coordinator = Coordinator(
        CoordinatorConfig(bounds=bounds, window=window, cells_per_axis=32)
    )
    config = RayTraceConfig(tolerance)
    filters: Dict[int, RayTraceFilter] = {}
    start_times = {oid: trajectory.start_time for oid, trajectory in trajectories.items()}
    end_time = max(trajectory.end_time for trajectory in trajectories.values())

    for timestamp in range(0, end_time + 1):
        for object_id, trajectory in trajectories.items():
            if timestamp < start_times[object_id] or timestamp > trajectory.end_time:
                continue
            index = timestamp - start_times[object_id]
            measurement = trajectory[index]
            if object_id not in filters:
                filters[object_id] = RayTraceFilter(object_id, measurement, config)
                continue
            state = filters[object_id].observe(measurement)
            if state is not None:
                coordinator.submit_state(state)
        if timestamp % epoch_length == 0 and timestamp > 0:
            outcome = coordinator.run_epoch(timestamp)
            for response in outcome.responses:
                follow_up = filters[response.object_id].receive_response(response)
                if follow_up is not None:
                    coordinator.submit_state(follow_up)

    # Flush: force every filter to report its final SSA so trailing motion is indexed.
    for object_id, filt in filters.items():
        if not filt.waiting and filt.fsa_timestamp > filt.ssa_start.timestamp:
            coordinator.submit_state(filt.current_state())
    coordinator.run_epoch(end_time + 1)
    return coordinator


BOUNDS = Rectangle(Point(-5000.0, -5000.0), Point(5000.0, 5000.0))


L_CORRIDOR = [Point(0.0, 0.0), Point(600.0, 0.0), Point(600.0, 600.0)]


class TestStraightCorridorScenario:
    def test_straight_corridor_gives_one_private_path_per_object(self):
        """Objects moving perfectly straight never report mid-way, so each ends up
        with a single covering path of hotness 1 — the degenerate case discussed
        in Section 3.1 (a single object's problem reduces to trajectory
        simplification)."""
        trajectories = linear_corridor_trajectories(
            num_objects=6, length=1000.0, duration=50, lateral_spread=2.0, seed=1
        )
        coordinator = replay_trajectories(trajectories, tolerance=10.0, bounds=BOUNDS)
        assert coordinator.index_size() == 6
        assert all(hotness == 1 for _, hotness in coordinator.hot_paths())


class TestTurningCorridorScenario:
    def test_shared_corridor_produces_hot_paths(self):
        trajectories = waypoint_corridor_trajectories(
            L_CORRIDOR, num_objects=6, duration=60, lateral_spread=2.0, seed=1
        )
        coordinator = replay_trajectories(trajectories, tolerance=10.0, bounds=BOUNDS)
        top = coordinator.top_k(3)
        assert top, "no motion paths were discovered"
        assert top[0].hotness >= 4

    def test_corridor_paths_follow_the_corridor(self):
        trajectories = waypoint_corridor_trajectories(
            L_CORRIDOR, num_objects=6, duration=60, lateral_spread=2.0, seed=1
        )
        coordinator = replay_trajectories(trajectories, tolerance=10.0, bounds=BOUNDS)
        for record, hotness in coordinator.hot_paths():
            if hotness < 2:
                continue
            # The corridor stays inside the L-shaped band around the waypoints.
            for endpoint in (record.path.start, record.path.end):
                assert -50.0 <= endpoint.x <= 650.0
                assert -50.0 <= endpoint.y <= 650.0

    def test_staggered_objects_still_accumulate_hotness(self):
        """Objects crossing the corridor at different times still heat the same paths."""
        trajectories = waypoint_corridor_trajectories(
            L_CORRIDOR, num_objects=5, duration=40, lateral_spread=1.0, start_stagger=3, seed=2
        )
        coordinator = replay_trajectories(trajectories, tolerance=8.0, bounds=BOUNDS)
        top = coordinator.top_k(3)
        assert top[0].hotness >= 2

    def test_disjoint_corridors_do_not_share_paths(self):
        north_waypoints = [Point(0.0, 2000.0), Point(500.0, 2000.0), Point(500.0, 2400.0)]
        south_waypoints = [Point(0.0, -2000.0), Point(500.0, -2000.0), Point(500.0, -2400.0)]
        north = waypoint_corridor_trajectories(north_waypoints, num_objects=3, duration=30, seed=3)
        south = waypoint_corridor_trajectories(south_waypoints, num_objects=3, duration=30, seed=4)
        merged = dict(north)
        offset = len(north)
        for object_id, trajectory in south.items():
            clone = Trajectory(object_id + offset, trajectory.timepoints)
            merged[object_id + offset] = clone
        coordinator = replay_trajectories(merged, tolerance=10.0, bounds=BOUNDS)
        for record, _ in coordinator.hot_paths():
            y_values = (record.path.start.y, record.path.end.y)
            assert all(y > 1000.0 for y in y_values) or all(y < -1000.0 for y in y_values)


class TestConvergingScenario:
    def test_paths_near_venue_are_hottest(self):
        venue = Point(0.0, 0.0)
        trajectories = converging_event_trajectories(
            num_objects=12, venue=venue, spawn_radius=1500.0, duration=60, num_corridors=3, seed=5
        )
        coordinator = replay_trajectories(trajectories, tolerance=15.0, bounds=BOUNDS)
        top = coordinator.top_k(5)
        assert top, "no motion paths discovered"
        assert top[0].hotness >= 2
        # The hottest path should sit on one of the shared approach corridors,
        # i.e. closer to the venue than the spawn ring.
        hottest = top[0]
        closest = min(
            hottest.path.start.euclidean_distance_to(venue),
            hottest.path.end.euclidean_distance_to(venue),
        )
        assert closest < 1200.0


class TestEvacuationScenario:
    def test_escape_routes_are_discovered(self):
        danger = Point(0.0, 0.0)
        trajectories = evacuation_trajectories(
            num_objects=12, danger_zone=danger, evacuation_radius=2000.0,
            num_escape_routes=2, duration=60, seed=6,
        )
        coordinator = replay_trajectories(trajectories, tolerance=20.0, bounds=BOUNDS)
        top = coordinator.top_k(4)
        assert top
        assert top[0].hotness >= 3

    def test_hot_paths_point_away_from_danger(self):
        danger = Point(0.0, 0.0)
        trajectories = evacuation_trajectories(
            num_objects=10, danger_zone=danger, evacuation_radius=2000.0,
            num_escape_routes=2, duration=60, seed=7,
        )
        coordinator = replay_trajectories(trajectories, tolerance=20.0, bounds=BOUNDS)
        outward = 0
        total = 0
        for record, hotness in coordinator.hot_paths():
            if hotness < 2:
                continue
            total += 1
            start_distance = record.path.start.euclidean_distance_to(danger)
            end_distance = record.path.end.euclidean_distance_to(danger)
            if end_distance >= start_distance:
                outward += 1
        assert total > 0
        assert outward >= total * 0.7
