"""Unit tests for :mod:`repro.coordinator.single_path`."""

from __future__ import annotations

import pytest

from repro.core.geometry import Point, Rectangle
from repro.core.motion_path import MotionPath
from repro.client.state import ObjectState
from repro.coordinator.grid_index import GridConfig, GridIndex
from repro.coordinator.hotness import HotnessTracker
from repro.coordinator.single_path import SinglePathStrategy


BOUNDS = Rectangle(Point(0.0, 0.0), Point(1000.0, 1000.0))


def make_strategy(window: int = 100):
    index = GridIndex(GridConfig(BOUNDS, cells_per_axis=16))
    hotness = HotnessTracker(window)
    return SinglePathStrategy(index, hotness), index, hotness


def state(object_id: int, start: Point, fsa_low: Point, fsa_high: Point, t_start=0, t_end=10) -> ObjectState:
    return ObjectState(object_id, start, t_start, fsa_low, fsa_high, t_end)


class TestEmptyEpoch:
    def test_no_states_no_decisions(self):
        strategy, index, hotness = make_strategy()
        result = strategy.process_epoch([])
        assert result.decisions == []
        assert len(index) == 0


class TestCase1ExistingPath:
    def test_existing_path_is_reused(self):
        strategy, index, hotness = make_strategy()
        existing = index.insert(MotionPath(Point(100.0, 100.0), Point(200.0, 200.0)))
        hotness.record_crossing(existing.path_id, 0)

        report = state(1, Point(100.0, 100.0), Point(190.0, 190.0), Point(210.0, 210.0))
        result = strategy.process_epoch([report])

        assert result.paths_reused == 1
        assert result.paths_inserted == 0
        assert hotness.hotness(existing.path_id) == 2
        assert result.decisions[0].response.endpoint == Point(200.0, 200.0)
        assert len(index) == 1

    def test_hottest_existing_path_is_preferred(self):
        strategy, index, hotness = make_strategy()
        cold = index.insert(MotionPath(Point(100.0, 100.0), Point(195.0, 195.0)))
        hot = index.insert(MotionPath(Point(100.0, 100.0), Point(205.0, 205.0)))
        hotness.record_crossing(cold.path_id, 0)
        hotness.record_crossing(hot.path_id, 0)
        hotness.record_crossing(hot.path_id, 1)

        report = state(1, Point(100.0, 100.0), Point(190.0, 190.0), Point(210.0, 210.0))
        result = strategy.process_epoch([report])

        assert result.decisions[0].path_id == hot.path_id

    def test_shared_candidate_boosts_selection(self):
        """A path available to two reporters should win over one available to a single reporter."""
        strategy, index, hotness = make_strategy()
        shared = index.insert(MotionPath(Point(100.0, 100.0), Point(200.0, 200.0)))
        private = index.insert(MotionPath(Point(100.0, 100.0), Point(120.0, 120.0)))
        hotness.record_crossing(shared.path_id, 0)
        hotness.record_crossing(private.path_id, 0)
        hotness.record_crossing(private.path_id, 1)

        # Object 1 can reach both paths; object 2 only the shared one.  The
        # co-occurrence boost (+1 for object 2's interest) ties the shared
        # path with the private one for object 1; the private path still has
        # higher raw hotness, so object 1 keeps it — but object 2's decision
        # must reuse the shared path rather than creating anything new.
        report_1 = state(1, Point(100.0, 100.0), Point(110.0, 110.0), Point(210.0, 210.0))
        report_2 = state(2, Point(100.0, 100.0), Point(190.0, 190.0), Point(210.0, 210.0))
        result = strategy.process_epoch([report_1, report_2])

        assert result.paths_inserted == 0
        assert result.paths_reused == 2
        decision_2 = [d for d in result.decisions if d.object_id == 2][0]
        assert decision_2.path_id == shared.path_id


class TestCase2ExistingVertex:
    def test_existing_end_vertex_is_adopted(self):
        strategy, index, hotness = make_strategy()
        # An existing path ends at (300, 300); the reporting object starts
        # somewhere else so Case 1 cannot apply, but the vertex lies in its FSA.
        existing = index.insert(MotionPath(Point(50.0, 50.0), Point(300.0, 300.0)))
        hotness.record_crossing(existing.path_id, 0)

        report = state(1, Point(250.0, 250.0), Point(290.0, 290.0), Point(310.0, 310.0))
        result = strategy.process_epoch([report])

        assert result.paths_inserted == 1
        decision = result.decisions[0]
        assert decision.response.endpoint == Point(300.0, 300.0)
        assert not decision.fabricated_vertex
        new_record = index.get(decision.path_id)
        assert new_record.path.start == Point(250.0, 250.0)
        assert new_record.path.end == Point(300.0, 300.0)

    def test_hotter_vertex_preferred(self):
        strategy, index, hotness = make_strategy()
        cold_path = index.insert(MotionPath(Point(0.0, 0.0), Point(295.0, 295.0)))
        hot_path_a = index.insert(MotionPath(Point(0.0, 0.0), Point(305.0, 305.0)))
        hot_path_b = index.insert(MotionPath(Point(10.0, 0.0), Point(305.0, 305.0)))
        hotness.record_crossing(cold_path.path_id, 0)
        hotness.record_crossing(hot_path_a.path_id, 0)
        hotness.record_crossing(hot_path_b.path_id, 0)

        report = state(1, Point(250.0, 250.0), Point(290.0, 290.0), Point(310.0, 310.0))
        result = strategy.process_epoch([report])
        assert result.decisions[0].response.endpoint == Point(305.0, 305.0)


class TestCase3FabricatedVertex:
    def test_lone_object_gets_vertex_inside_own_fsa(self):
        strategy, index, hotness = make_strategy()
        report = state(1, Point(100.0, 100.0), Point(190.0, 190.0), Point(210.0, 210.0))
        result = strategy.process_epoch([report])

        assert result.paths_inserted == 1
        decision = result.decisions[0]
        assert decision.fabricated_vertex
        assert report.fsa.contains_point(decision.response.endpoint)

    def test_overlapping_objects_share_fabricated_vertex(self):
        """Objects reporting together with overlapping FSAs adopt the same endpoint."""
        strategy, index, hotness = make_strategy()
        report_1 = state(1, Point(100.0, 100.0), Point(190.0, 190.0), Point(215.0, 215.0))
        report_2 = state(2, Point(120.0, 100.0), Point(205.0, 205.0), Point(230.0, 230.0))
        result = strategy.process_epoch([report_1, report_2])

        endpoints = {decision.response.endpoint for decision in result.decisions}
        assert len(endpoints) == 1
        # Two distinct paths (different starts) converge on the shared vertex.
        assert result.paths_inserted == 2
        vertex = endpoints.pop()
        assert len(index.end_vertices_in(Rectangle.degenerate(vertex))) == 1

    def test_same_start_and_shared_vertex_deduplicates_path(self):
        """Objects with the same SSA start and overlapping FSAs share one path record."""
        strategy, index, hotness = make_strategy()
        report_1 = state(1, Point(100.0, 100.0), Point(190.0, 190.0), Point(215.0, 215.0))
        report_2 = state(2, Point(100.0, 100.0), Point(205.0, 205.0), Point(230.0, 230.0))
        result = strategy.process_epoch([report_1, report_2])

        assert len(index) == 1
        only_record = next(iter(index.records))
        assert hotness.hotness(only_record.path_id) == 2
        assert result.paths_inserted == 1
        assert result.paths_reused == 1

    def test_degenerate_endpoint_is_nudged(self):
        """If the chosen vertex equals the start, the endpoint falls back to the FSA centre."""
        strategy, index, hotness = make_strategy()
        # Existing path ends exactly at the reporting object's start point and
        # that vertex lies inside its FSA, so it would be chosen as endpoint.
        existing = index.insert(MotionPath(Point(0.0, 0.0), Point(100.0, 100.0)))
        hotness.record_crossing(existing.path_id, 0)
        hotness.record_crossing(existing.path_id, 1)
        hotness.record_crossing(existing.path_id, 2)

        report = state(1, Point(100.0, 100.0), Point(95.0, 95.0), Point(115.0, 115.0))
        result = strategy.process_epoch([report])
        decision = result.decisions[0]
        assert decision.response.endpoint != Point(100.0, 100.0)
        created = index.get(decision.path_id)
        assert created.path.length > 0.0


class TestCrossingBookkeeping:
    def test_every_decision_records_a_crossing(self):
        strategy, index, hotness = make_strategy()
        reports = [
            state(i, Point(100.0 + 50.0 * i, 100.0), Point(80.0 + 50.0 * i, 80.0), Point(120.0 + 50.0 * i, 120.0))
            for i in range(4)
        ]
        strategy.process_epoch(reports)
        assert hotness.total_crossings() == 4

    def test_response_timestamp_matches_state_end(self):
        strategy, index, hotness = make_strategy()
        report = state(1, Point(100.0, 100.0), Point(190.0, 190.0), Point(210.0, 210.0), t_start=5, t_end=17)
        result = strategy.process_epoch([report])
        assert result.decisions[0].response.timestamp == 17
