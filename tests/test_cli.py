"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.core.errors import ConfigurationError
from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.command == "run"
        assert args.objects == 500
        assert args.tolerance == 10.0

    def test_run_overrides(self):
        args = build_parser().parse_args(
            ["run", "--objects", "50", "--tolerance", "5", "--duration", "60"]
        )
        assert args.objects == 50
        assert args.tolerance == 5.0
        assert args.duration == 60

    def test_figure_subcommands_exist(self):
        for command in ("figure7", "figure8", "figure9", "figure10", "ablations"):
            args = build_parser().parse_args([command])
            assert args.command == command

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["not-a-command"])

    def test_run_shards_flag(self):
        args = build_parser().parse_args(["run", "--shards", "4"])
        assert args.shards == 4
        assert build_parser().parse_args(["run"]).shards == 1

    def test_run_backend_flag(self):
        for backend in ("serial", "threads", "processes"):
            args = build_parser().parse_args(["run", "--backend", backend])
            assert args.backend == backend
        assert build_parser().parse_args(["run"]).backend == "serial"

    def test_run_backend_rejects_unknown_value(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--backend", "gpu"])

    def test_run_stitching_flag(self):
        for mode in ("off", "exact"):
            args = build_parser().parse_args(["run", "--stitching", mode])
            assert args.stitching == mode
        assert build_parser().parse_args(["run"]).stitching == "exact"

    def test_run_stitching_rejects_unknown_value(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--stitching", "approximate"])

    def test_run_partition_flag(self):
        for kind in ("uniform", "kd"):
            args = build_parser().parse_args(["run", "--partition", kind])
            assert args.partition == kind
        defaults = build_parser().parse_args(["run"])
        assert defaults.partition == "uniform"
        assert defaults.rebalance_threshold == 2.0

    def test_run_partition_rejects_unknown_value(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--partition", "voronoi"])

    def test_run_rebalance_threshold_flag(self):
        args = build_parser().parse_args(["run", "--rebalance-threshold", "1.3"])
        assert args.rebalance_threshold == pytest.approx(1.3)


class TestHelp:
    """``python -m repro --help`` must document the scale-out flags."""

    def test_top_level_help_shows_examples(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--help"])
        assert excinfo.value.code == 0
        captured = capsys.readouterr().out
        assert "examples:" in captured
        assert "--shards 4 --backend threads" in captured

    def test_run_help_documents_shards_and_backend(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "--help"])
        assert excinfo.value.code == 0
        captured = capsys.readouterr().out
        assert "--shards" in captured
        assert "--backend" in captured
        assert "{serial,threads,processes}" in captured
        assert "central coordinator" in captured
        assert "examples:" in captured

    def test_run_help_documents_stitching(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "--help"])
        assert excinfo.value.code == 0
        captured = capsys.readouterr().out
        assert "--stitching" in captured
        assert "{off,exact}" in captured
        assert "composite corridors" in captured
        assert "truncate at" in captured

    def test_run_help_documents_partition(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "--help"])
        assert excinfo.value.code == 0
        captured = capsys.readouterr().out
        assert "--partition" in captured
        assert "{uniform,kd}" in captured
        assert "--rebalance-threshold" in captured
        assert "endpoint density" in captured


class TestRunCommand:
    def test_run_prints_summary_and_paths(self, capsys):
        exit_code = main(
            [
                "run",
                "--objects", "60",
                "--duration", "60",
                "--network-nodes", "6",
                "--area", "2000",
                "--seed", "3",
            ]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "index size" in captured
        assert "message reduction vs naive" in captured
        assert "hottest motion paths" in captured
        assert "composite corridors" in captured

    def test_run_with_stitching_off_reports_truncation(self, capsys):
        exit_code = main(
            [
                "run",
                "--objects", "60",
                "--duration", "60",
                "--network-nodes", "6",
                "--area", "2000",
                "--seed", "3",
                "--shards", "4",
                "--stitching", "off",
            ]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "stitching: off" in captured
        assert "cross-shard merge off" in captured

    def test_run_with_kd_partition_reports_rebalances(self, capsys):
        exit_code = main(
            [
                "run",
                "--objects", "60",
                "--duration", "60",
                "--network-nodes", "6",
                "--area", "2000",
                "--seed", "3",
                "--shards", "4",
                "--partition", "kd",
                "--rebalance-threshold", "1.2",
            ]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "partition: kd" in captured
        assert "imbalance:" in captured
        assert "rebalances:" in captured

    def test_run_with_shards_reports_fleet(self, capsys):
        exit_code = main(
            [
                "run",
                "--objects", "60",
                "--duration", "60",
                "--network-nodes", "6",
                "--area", "2000",
                "--seed", "3",
                "--shards", "4",
            ]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "coordinator shards: 4" in captured

    def test_run_with_parallel_backend(self, capsys):
        exit_code = main(
            [
                "run",
                "--objects", "60",
                "--duration", "60",
                "--network-nodes", "6",
                "--area", "2000",
                "--seed", "3",
                "--shards", "4",
                "--backend", "threads",
            ]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "coordinator backend: threads" in captured
        assert "coordinator shards: 4" in captured


class TestFigureCommands:
    def test_figure7_small_scale(self, capsys):
        exit_code = main(["figure7", "--scale", "0.002", "--seed", "3"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "idx SP" in captured

    def test_figure8_writes_csv(self, capsys, tmp_path):
        exit_code = main(["figure8", "--scale", "0.002", "--seed", "3", "--csv", str(tmp_path)])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert (tmp_path / "figure8.csv").exists()
        assert "csv written" in captured

    def test_figure9_renders_maps(self, capsys):
        exit_code = main(["figure9", "--scale", "0.002", "--seed", "3", "--width", "30", "--height", "12"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "Discovered motion paths" in captured
        assert "coverage" in captured

    def test_figure10_renders_map(self, capsys):
        exit_code = main(["figure10", "--scale", "0.002", "--seed", "3", "--width", "30", "--height", "12"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "top paths rendered" in captured

    def test_ablations_with_csv(self, capsys, tmp_path):
        exit_code = main(["ablations", "--scale", "0.002", "--seed", "3", "--csv", str(tmp_path)])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "communication (RayTrace vs naive):" in captured
        assert (tmp_path / "ablation_communication.csv").exists()
        assert (tmp_path / "ablation_uncertainty.csv").exists()
        assert (tmp_path / "ablation_grid_resolution.csv").exists()


class TestServeCommand:
    def test_list_scenarios(self, capsys):
        exit_code = main(["serve", "--list-scenarios"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        for scenario_id in ("uniform_trickle", "bursty_downtown", "ramp", "thundering_herd"):
            assert scenario_id in captured

    def test_scenario_run_gates_on_equivalence_and_validation(self, capsys):
        exit_code = main(
            ["serve", "--scenario", "uniform_trickle", "--seed", "3", "--shards", "2"]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "seed-replay equivalence: bit-for-bit EQUAL" in captured
        assert "validation passed" in captured

    def test_chaos_flags_reach_the_runner(self, capsys):
        exit_code = main(
            [
                "serve",
                "--scenario",
                "uniform_trickle",
                "--seed",
                "3",
                "--shards",
                "4",
                "--partition",
                "kd",
                "--chaos",
                "force_rebalance",
                "--chaos-rate",
                "0.9",
                "--chaos-seed",
                "5",
            ]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "chaos=force_rebalance" in captured
        assert "rebalances=" in captured
        assert "bit-for-bit EQUAL" in captured

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ConfigurationError):
            main(["serve", "--scenario", "no_such_traffic"])
