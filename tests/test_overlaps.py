"""Unit tests for :mod:`repro.coordinator.overlaps`."""

from __future__ import annotations

import pytest

from repro.core.geometry import Point, Rectangle
from repro.coordinator.overlaps import FsaOverlapStructure, OverlapRegion


def rect(x0, y0, x1, y1) -> Rectangle:
    return Rectangle(Point(x0, y0), Point(x1, y1))


class TestOverlapRegion:
    def test_count(self):
        region = OverlapRegion(rect(0, 0, 1, 1), frozenset({1, 2, 3}))
        assert region.count == 3


class TestBuild:
    def test_single_fsa(self):
        structure = FsaOverlapStructure.build({1: rect(0, 0, 10, 10)})
        regions = list(structure.regions())
        assert len(regions) == 1
        assert regions[0].members == frozenset({1})

    def test_disjoint_fsas_produce_no_overlaps(self):
        structure = FsaOverlapStructure.build(
            {1: rect(0, 0, 10, 10), 2: rect(20, 20, 30, 30)}
        )
        assert len(structure) == 2

    def test_two_overlapping_fsas(self):
        structure = FsaOverlapStructure.build(
            {1: rect(0, 0, 10, 10), 2: rect(5, 5, 15, 15)}
        )
        members = {region.members for region in structure.regions()}
        assert frozenset({1}) in members
        assert frozenset({2}) in members
        assert frozenset({1, 2}) in members

    def test_three_way_overlap_from_example_2(self):
        """The R1/R2/R3 configuration of the paper's Example 2."""
        structure = FsaOverlapStructure.build(
            {
                1: rect(0, 0, 10, 10),
                2: rect(6, 0, 16, 10),
                3: rect(3, 5, 13, 15),
            }
        )
        counts = {region.members: region.count for region in structure.regions()}
        assert counts[frozenset({1, 2, 3})] == 3
        assert counts[frozenset({1, 2})] == 2
        assert counts[frozenset({2, 3})] == 2
        assert counts[frozenset({1, 3})] == 2


class TestQueries:
    def _three_way(self) -> FsaOverlapStructure:
        return FsaOverlapStructure.build(
            {
                1: rect(0, 0, 10, 10),
                2: rect(6, 0, 16, 10),
                3: rect(3, 5, 13, 15),
            }
        )

    def test_smallest_region_containing_prefers_deepest_overlap(self):
        structure = self._three_way()
        # A point in the triple intersection.
        region = structure.smallest_region_containing(Point(7.0, 7.0))
        assert region is not None
        assert region.members == frozenset({1, 2, 3})

    def test_smallest_region_containing_single_member(self):
        structure = self._three_way()
        region = structure.smallest_region_containing(Point(1.0, 1.0))
        assert region is not None
        assert region.members == frozenset({1})

    def test_smallest_region_containing_outside_everything(self):
        structure = self._three_way()
        assert structure.smallest_region_containing(Point(100.0, 100.0)) is None

    def test_hottest_region_intersecting(self):
        structure = self._three_way()
        region = structure.hottest_region_intersecting(rect(0, 0, 10, 10))
        assert region is not None
        assert region.count == 3

    def test_hottest_region_intersecting_disjoint(self):
        structure = self._three_way()
        assert structure.hottest_region_intersecting(rect(100, 100, 110, 110)) is None

    def test_candidate_vertex_is_shared_between_objects(self):
        """Two objects touching the same overlap fabricate the exact same vertex."""
        structure = self._three_way()
        vertex_1 = structure.candidate_vertex_for(rect(0, 0, 10, 10))
        vertex_2 = structure.candidate_vertex_for(rect(6, 0, 16, 10))
        assert vertex_1 is not None and vertex_2 is not None
        assert vertex_1[0] == vertex_2[0]
        assert vertex_1[1] == vertex_2[1] == 3

    def test_candidate_vertex_for_disjoint_region(self):
        structure = self._three_way()
        assert structure.candidate_vertex_for(rect(200, 200, 210, 210)) is None

    def test_region_cap_limits_growth(self):
        structure = FsaOverlapStructure(max_regions=5)
        for i in range(20):
            structure.add(i, rect(i * 0.1, 0, i * 0.1 + 10, 10))
        # All singletons are always stored; derived overlaps are capped.
        assert len(structure) >= 20
        assert len(structure) < 20 + 200
