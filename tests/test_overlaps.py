"""Unit tests for :mod:`repro.coordinator.overlaps`."""

from __future__ import annotations

import pytest

from repro.core.geometry import Point, Rectangle
from repro.coordinator.overlaps import FsaOverlapStructure, OverlapRegion


def rect(x0, y0, x1, y1) -> Rectangle:
    return Rectangle(Point(x0, y0), Point(x1, y1))


class TestOverlapRegion:
    def test_count(self):
        region = OverlapRegion(rect(0, 0, 1, 1), frozenset({1, 2, 3}))
        assert region.count == 3


class TestBuild:
    def test_single_fsa(self):
        structure = FsaOverlapStructure.build({1: rect(0, 0, 10, 10)})
        regions = list(structure.regions())
        assert len(regions) == 1
        assert regions[0].members == frozenset({1})

    def test_disjoint_fsas_produce_no_overlaps(self):
        structure = FsaOverlapStructure.build(
            {1: rect(0, 0, 10, 10), 2: rect(20, 20, 30, 30)}
        )
        assert len(structure) == 2

    def test_two_overlapping_fsas(self):
        structure = FsaOverlapStructure.build(
            {1: rect(0, 0, 10, 10), 2: rect(5, 5, 15, 15)}
        )
        members = {region.members for region in structure.regions()}
        assert frozenset({1}) in members
        assert frozenset({2}) in members
        assert frozenset({1, 2}) in members

    def test_three_way_overlap_from_example_2(self):
        """The R1/R2/R3 configuration of the paper's Example 2."""
        structure = FsaOverlapStructure.build(
            {
                1: rect(0, 0, 10, 10),
                2: rect(6, 0, 16, 10),
                3: rect(3, 5, 13, 15),
            }
        )
        counts = {region.members: region.count for region in structure.regions()}
        assert counts[frozenset({1, 2, 3})] == 3
        assert counts[frozenset({1, 2})] == 2
        assert counts[frozenset({2, 3})] == 2
        assert counts[frozenset({1, 3})] == 2


class TestQueries:
    def _three_way(self) -> FsaOverlapStructure:
        return FsaOverlapStructure.build(
            {
                1: rect(0, 0, 10, 10),
                2: rect(6, 0, 16, 10),
                3: rect(3, 5, 13, 15),
            }
        )

    def test_smallest_region_containing_prefers_deepest_overlap(self):
        structure = self._three_way()
        # A point in the triple intersection.
        region = structure.smallest_region_containing(Point(7.0, 7.0))
        assert region is not None
        assert region.members == frozenset({1, 2, 3})

    def test_smallest_region_containing_single_member(self):
        structure = self._three_way()
        region = structure.smallest_region_containing(Point(1.0, 1.0))
        assert region is not None
        assert region.members == frozenset({1})

    def test_smallest_region_containing_outside_everything(self):
        structure = self._three_way()
        assert structure.smallest_region_containing(Point(100.0, 100.0)) is None

    def test_hottest_region_intersecting(self):
        structure = self._three_way()
        region = structure.hottest_region_intersecting(rect(0, 0, 10, 10))
        assert region is not None
        assert region.count == 3

    def test_hottest_region_intersecting_disjoint(self):
        structure = self._three_way()
        assert structure.hottest_region_intersecting(rect(100, 100, 110, 110)) is None

    def test_candidate_vertex_is_shared_between_objects(self):
        """Two objects touching the same overlap fabricate the exact same vertex."""
        structure = self._three_way()
        vertex_1 = structure.candidate_vertex_for(rect(0, 0, 10, 10))
        vertex_2 = structure.candidate_vertex_for(rect(6, 0, 16, 10))
        assert vertex_1 is not None and vertex_2 is not None
        assert vertex_1[0] == vertex_2[0]
        assert vertex_1[1] == vertex_2[1] == 3

    def test_candidate_vertex_for_disjoint_region(self):
        structure = self._three_way()
        assert structure.candidate_vertex_for(rect(200, 200, 210, 210)) is None

    def test_region_cap_is_a_hard_bound(self):
        """Regression: the cap used to be soft — ``add`` only stopped *deriving*
        after the table overshot, and the final merge inserted every derived
        region regardless, so overlapping-FSA floods grew past ``max_regions``."""
        structure = FsaOverlapStructure(max_regions=5)
        for i in range(20):
            structure.add(i, rect(i * 0.1, 0, i * 0.1 + 10, 10))
            assert len(structure) <= 5
        assert len(structure) == 5

    def test_region_cap_keeps_earlier_insertions(self):
        """Insertion-order priority: early FSAs and their overlaps keep their
        slots; late arrivals into a full table are dropped deterministically."""
        structure = FsaOverlapStructure(max_regions=3)
        structure.add(1, rect(0, 0, 10, 10))
        structure.add(2, rect(5, 5, 15, 15))  # fills the table: {1}, {2}, {1,2}
        before = {region.members: region.rectangle for region in structure.regions()}
        structure.add(3, rect(0, 0, 20, 20))  # overlaps everything, but no room
        assert {region.members: region.rectangle for region in structure.regions()} == before

    def test_region_cap_flood_stays_deterministic(self):
        """A pairwise-overlapping flood never exceeds the cap and two identical
        builds keep the exact same regions in the exact same order."""
        fsas = {i: rect(i * 0.5, 0.0, i * 0.5 + 50.0, 50.0) for i in range(40)}
        first = FsaOverlapStructure.build(fsas, max_regions=25)
        second = FsaOverlapStructure.build(fsas, max_regions=25)
        assert len(first) <= 25
        assert [(r.members, r.rectangle) for r in first.regions()] == [
            (r.members, r.rectangle) for r in second.regions()
        ]


class TestZeroAreaIntersections:
    """Edge-adjacent FSAs must not create degenerate derived regions."""

    def test_edge_touching_fsas_store_no_derived_region(self):
        structure = FsaOverlapStructure.build(
            {1: rect(0, 0, 10, 10), 2: rect(10, 0, 20, 10)}  # share the x=10 edge
        )
        assert {region.members for region in structure.regions()} == {
            frozenset({1}),
            frozenset({2}),
        }

    def test_zero_area_region_cannot_win_smallest_containing(self):
        """Regression: the degenerate {1,2} seam (area 0) used to beat the real
        singletons in the ``area <`` tie-break of smallest_region_containing."""
        structure = FsaOverlapStructure.build(
            {1: rect(0, 0, 10, 10), 2: rect(10, 0, 20, 10)}
        )
        region = structure.smallest_region_containing(Point(10.0, 5.0))
        assert region is not None
        assert region.count == 1
        assert not region.rectangle.is_degenerate()

    def test_zero_area_region_not_returned_for_fabrication(self):
        """Regression: hottest_region_intersecting could hand out the seam,
        fabricating a vertex in a region no object can be strictly inside."""
        structure = FsaOverlapStructure.build(
            {1: rect(0, 0, 10, 10), 2: rect(10, 0, 20, 10)}
        )
        region = structure.hottest_region_intersecting(rect(8, 0, 12, 10))
        assert region is not None
        assert region.count == 1

    def test_corner_touching_fsas_store_no_derived_region(self):
        structure = FsaOverlapStructure.build(
            {1: rect(0, 0, 10, 10), 2: rect(10, 10, 20, 20)}  # share one corner
        )
        assert len(structure) == 2

    def test_degenerate_singleton_is_kept(self):
        """The singleton region *is* the FSA; a degenerate FSA still counts."""
        structure = FsaOverlapStructure.build({1: rect(5, 5, 5, 5)})
        assert len(structure) == 1


class TestDuplicateReports:
    """One object reporting twice in an epoch: the later FSA wins in R_all.

    This pins the intended semantics of ``fsas[state.object_id] = state.fsa``
    in the epoch pipelines (see the stage-1 comment in
    :mod:`repro.coordinator.sharding`): the structure holds one FSA per
    *object*, not per state message, and a re-report replaces the earlier FSA
    while both state messages are still decided against the structure.
    """

    def test_build_keeps_later_fsa_per_object(self):
        earlier, later = rect(0, 0, 10, 10), rect(100, 100, 110, 110)
        fsas = {}
        for object_id, fsa in ((7, earlier), (8, rect(3, 3, 12, 12)), (7, later)):
            fsas[object_id] = fsa
        structure = FsaOverlapStructure.build(fsas)
        regions = {region.members: region.rectangle for region in structure.regions()}
        assert regions[frozenset({7})] == later
        # The earlier FSA contributes nothing: no overlap with object 8 remains.
        assert frozenset({7, 8}) not in regions

    def test_serialized_round_trip_preserves_region_order(self):
        structure = FsaOverlapStructure.build(
            {1: rect(0, 0, 10, 10), 2: rect(6, 0, 16, 10), 3: rect(3, 5, 13, 15)}
        )
        rebuilt = FsaOverlapStructure.from_serialized(structure.serialized())
        assert [(r.members, r.rectangle) for r in rebuilt.regions()] == [
            (r.members, r.rectangle) for r in structure.regions()
        ]
