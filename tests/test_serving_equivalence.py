"""Served-vs-direct equivalence: the front door must not change answers.

The contract: a scenario driven through the TCP front door — real sockets,
concurrent clients, backpressure, reconnects — must leave the coordinator
bit-for-bit equal to a *seed* coordinator (single shard, serial backend,
the paper's architecture) replaying the same accepted updates at the same
epoch boundaries.  And the accepted log must replay identically through
every fleet shape, including fleets forced through kd rebalances mid-replay.

This is the serving layer's version of ``test_sharding_equivalence.py``:
the network, the batcher and the epoch ticker are all new machinery that
could silently reorder, drop or duplicate updates; snapshot equality over
the wire is the proof they do not.
"""

from __future__ import annotations

import asyncio
import json
import random
import time

import pytest

from repro.core.geometry import Point, Rectangle
from repro.client.state import ObjectState
from repro.coordinator.coordinator import Coordinator, CoordinatorConfig
from repro.serving.protocol import coordinator_snapshot, encode_update
from repro.serving.scenarios import (
    SCENARIOS,
    InjectionConfig,
    ScenarioRunner,
    _WireClient,
    get_scenario,
    replay_accepted_log,
)
from repro.serving.server import IngestionServer, ServingConfig

BACKENDS = ["serial", "threads", "processes"]
PARTITIONS = ["uniform", "kd"]


def seed_replay(result):
    """The reference snapshot: the seed shape replaying the accepted log."""
    return replay_accepted_log(result.accepted_log)


class TestServedMatchesSeedReplay:
    """Every backend × partition fleet serves the seed coordinator's answers."""

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("partition", PARTITIONS)
    def test_uniform_trickle_bit_for_bit(self, backend, partition):
        runner = ScenarioRunner(num_shards=4, backend=backend, partition=partition)
        result = runner.run("uniform_trickle", seed=11)

        assert result.accepted_updates == result.submitted_updates
        assert result.report == seed_replay(result)

    @pytest.mark.parametrize("scenario_id", sorted(SCENARIOS))
    def test_every_scenario_on_a_kd_fleet(self, scenario_id):
        runner = ScenarioRunner(num_shards=4, backend="threads", partition="kd")
        result = runner.run(scenario_id, seed=5)

        assert result.accepted_updates == result.submitted_updates
        assert result.report == seed_replay(result)
        assert result.passed, result.validation_errors

    def test_snapshot_reports_real_state(self):
        result = ScenarioRunner(num_shards=1).run("uniform_trickle", seed=2)

        report = result.report
        assert report["size"] == len(report["records"]) > 0
        assert report["top_k_hotness"]
        # The snapshot is wire-pure: a JSON round trip is the identity.
        assert json.loads(json.dumps(report)) == report


class TestForcedRebalanceInvariance:
    """kd migrations mid-run and mid-replay must be invisible in the answers."""

    def test_forced_mid_run_rebalances_leave_answers_unchanged(self):
        runner = ScenarioRunner(num_shards=4, backend="threads", partition="kd")
        injection = InjectionConfig(
            enabled=True, fault="force_rebalance", rate=0.6, seed=9
        )
        result = runner.run("bursty_downtown", seed=7, injection=injection)

        assert result.forced_rebalances >= 1
        assert result.report == seed_replay(result)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_replay_through_rebalancing_fleets_matches_seed(self, backend):
        result = ScenarioRunner(num_shards=4, backend="serial", partition="kd").run(
            "bursty_downtown", seed=3
        )
        reference = seed_replay(result)

        fleet = replay_accepted_log(
            result.accepted_log,
            num_shards=4,
            backend=backend,
            partition="kd",
            rebalance_before=(1, 3),
        )
        assert fleet == reference
        assert result.report == reference


class TestConcurrentClients:
    """Racing clients must not perturb the committed state."""

    @pytest.mark.parametrize("backend", ["serial", "processes"])
    def test_concurrent_sends_replay_bit_for_bit(self, backend):
        runner = ScenarioRunner(num_shards=4, backend=backend, partition="kd")
        result = runner.run("bursty_downtown", seed=13, concurrent=True)

        assert result.accepted_updates == result.submitted_updates
        assert result.report == seed_replay(result)

    def test_concurrent_run_equals_serialized_run(self):
        """Same scenario seed, racing vs. ordered sends: same committed state.

        The batcher's canonical ``(client, seq)`` epoch ordering makes the
        commit independent of the arrival interleaving — so the two modes
        must agree on everything but timing.
        """
        runner = ScenarioRunner(num_shards=2, backend="threads", partition="uniform")
        ordered = runner.run("uniform_trickle", seed=21, concurrent=False)
        racing = runner.run("uniform_trickle", seed=21, concurrent=True)

        assert racing.accepted_log == ordered.accepted_log
        assert racing.report == ordered.report


class TestEpochModeServing:
    """``epoch_mode`` is invisible over the wire: delta-mode served fleets and
    replays must land on exactly the seed snapshot, chaos included."""

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_delta_serving_matches_full_seed_replay(self, backend):
        runner = ScenarioRunner(
            num_shards=4, backend=backend, partition="kd", epoch_mode="delta"
        )
        result = runner.run("bursty_downtown", seed=7)

        full_reference = replay_accepted_log(result.accepted_log, epoch_mode="full")
        assert result.report == full_reference
        assert replay_accepted_log(result.accepted_log, epoch_mode="delta") == full_reference

    def test_full_mode_serving_still_matches_delta_replay(self):
        runner = ScenarioRunner(num_shards=4, backend="threads", epoch_mode="full")
        result = runner.run("uniform_trickle", seed=11)

        assert result.report == replay_accepted_log(result.accepted_log, epoch_mode="delta")

    def test_chaos_faults_with_delta_mode_match_full_replay(self):
        """Forced rebalances racing the delta pipeline's caches mid-run."""
        runner = ScenarioRunner(
            num_shards=4, backend="threads", partition="kd", epoch_mode="delta"
        )
        injection = InjectionConfig(
            enabled=True, fault="force_rebalance", rate=0.6, seed=9
        )
        result = runner.run("bursty_downtown", seed=7, injection=injection)

        assert result.forced_rebalances >= 1
        assert result.report == replay_accepted_log(result.accepted_log, epoch_mode="full")

    def test_delta_replay_through_rebalancing_fleet_matches_full(self):
        result = ScenarioRunner(num_shards=4, epoch_mode="delta").run(
            "bursty_downtown", seed=3
        )
        reference = replay_accepted_log(result.accepted_log, epoch_mode="full")
        fleet = replay_accepted_log(
            result.accepted_log,
            num_shards=4,
            backend="processes",
            partition="kd",
            rebalance_before=(1, 3),
            epoch_mode="delta",
        )
        assert fleet == reference


BOUNDS = Rectangle(Point(0.0, 0.0), Point(1000.0, 1000.0))


class TestAutoEpochTicker:
    """The wall-clock epoch ticker under concurrent client load.

    Epoch boundaries here are *nondeterministic* (the ticker races the
    clients), but the accepted log records exactly which updates each
    committed epoch contained — so replaying the log through a fresh seed
    coordinator must still reproduce the served snapshot bit for bit.  This
    is the serving seam PR 7 left untested, pinned in both epoch modes.
    """

    CLIENTS = 4
    BATCHES_PER_CLIENT = 12
    UPDATES_PER_BATCH = 8

    @staticmethod
    def _batch_rows(client_id: int, seq: int):
        rng = random.Random(client_id * 10_007 + seq)
        rows = []
        for _ in range(TestAutoEpochTicker.UPDATES_PER_BATCH):
            start = Point(rng.uniform(0, 1000), rng.uniform(0, 1000))
            fsa = Rectangle.from_center(
                Point(
                    min(max(start.x + rng.uniform(-150, 150), 0.0), 1000.0),
                    min(max(start.y + rng.uniform(-150, 150), 0.0), 1000.0),
                ),
                rng.uniform(10, 80),
            )
            # Timestamps far below any boundary the ticker will reach keep
            # every row admissible whatever epoch it happens to land in.
            rows.append(
                encode_update(
                    ObjectState(
                        rng.randrange(60), start, 0, fsa.low, fsa.high, 1
                    )
                )
            )
        return rows

    async def _drive(self, epoch_mode: str):
        coordinator = Coordinator(
            CoordinatorConfig(
                bounds=BOUNDS,
                window=1_000_000,  # nothing expires mid-run: keeps rows admissible
                cells_per_axis=32,
                num_shards=4,
                partition="kd",
                epoch_mode=epoch_mode,
            )
        )
        server = IngestionServer(
            coordinator,
            ServingConfig(port=0, auto_epoch_seconds=0.01, auto_epoch_timestamps=10),
        )
        await server.start()
        try:
            host, port = server.config.host, server.port

            async def client(client_id: int) -> None:
                wire = await _WireClient.connect(host, port)
                try:
                    for seq in range(self.BATCHES_PER_CLIENT):
                        ack = await wire.request(
                            {
                                "op": "batch",
                                "client": client_id,
                                "seq": seq,
                                "updates": self._batch_rows(client_id, seq),
                            }
                        )
                        assert ack["ok"], ack
                        # Spread the batches across several ticker intervals so
                        # the load genuinely interleaves with wall-clock commits.
                        await asyncio.sleep(0.003)
                finally:
                    await wire.close()

            await asyncio.gather(*(client(i) for i in range(self.CLIENTS)))
            # Drain: wait until the ticker has committed every accepted update.
            deadline = time.monotonic() + 5.0
            while (
                server.batcher.pending_updates or server.batcher.epochs_committed < 3
            ) and time.monotonic() < deadline:
                await asyncio.sleep(0.01)
            assert server.batcher.pending_updates == 0, "ticker never drained the queue"
            assert server.batcher.epochs_committed >= 3, (
                "the wall-clock ticker never fired three times"
            )
            snapshot = coordinator_snapshot(coordinator)
            accepted_log = list(server.batcher.accepted_log)
            accepted = server.batcher.accepted_updates
        finally:
            await server.stop()
            coordinator.close()
        return snapshot, accepted_log, accepted

    @pytest.mark.parametrize("epoch_mode", ["full", "delta"])
    def test_ticker_committed_state_replays_bit_for_bit(self, epoch_mode):
        snapshot, accepted_log, accepted = asyncio.run(self._drive(epoch_mode))
        assert accepted == self.CLIENTS * self.BATCHES_PER_CLIENT * self.UPDATES_PER_BATCH
        assert sum(len(rows) for _now, rows in accepted_log) == accepted
        # The served snapshot equals the seed replay of the ticker's log —
        # in both epoch modes, whatever boundaries the wall clock produced.
        for replay_mode in ("full", "delta"):
            assert snapshot == replay_accepted_log(
                accepted_log,
                window=1_000_000,
                cells_per_axis=32,
                epoch_mode=replay_mode,
            ), f"served {epoch_mode} snapshot != {replay_mode} seed replay"


class TestReconnectStorm:
    def test_thundering_herd_reconnects_and_stays_equal(self):
        scenario = get_scenario("thundering_herd")
        result = ScenarioRunner(num_shards=4, backend="threads", partition="kd").run(
            scenario, seed=17
        )

        assert result.reconnects == scenario.num_clients
        assert result.accepted_updates == result.submitted_updates
        assert result.report == seed_replay(result)
