"""Served-vs-direct equivalence: the front door must not change answers.

The contract: a scenario driven through the TCP front door — real sockets,
concurrent clients, backpressure, reconnects — must leave the coordinator
bit-for-bit equal to a *seed* coordinator (single shard, serial backend,
the paper's architecture) replaying the same accepted updates at the same
epoch boundaries.  And the accepted log must replay identically through
every fleet shape, including fleets forced through kd rebalances mid-replay.

This is the serving layer's version of ``test_sharding_equivalence.py``:
the network, the batcher and the epoch ticker are all new machinery that
could silently reorder, drop or duplicate updates; snapshot equality over
the wire is the proof they do not.
"""

from __future__ import annotations

import json

import pytest

from repro.serving.scenarios import (
    SCENARIOS,
    InjectionConfig,
    ScenarioRunner,
    get_scenario,
    replay_accepted_log,
)

BACKENDS = ["serial", "threads", "processes"]
PARTITIONS = ["uniform", "kd"]


def seed_replay(result):
    """The reference snapshot: the seed shape replaying the accepted log."""
    return replay_accepted_log(result.accepted_log)


class TestServedMatchesSeedReplay:
    """Every backend × partition fleet serves the seed coordinator's answers."""

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("partition", PARTITIONS)
    def test_uniform_trickle_bit_for_bit(self, backend, partition):
        runner = ScenarioRunner(num_shards=4, backend=backend, partition=partition)
        result = runner.run("uniform_trickle", seed=11)

        assert result.accepted_updates == result.submitted_updates
        assert result.report == seed_replay(result)

    @pytest.mark.parametrize("scenario_id", sorted(SCENARIOS))
    def test_every_scenario_on_a_kd_fleet(self, scenario_id):
        runner = ScenarioRunner(num_shards=4, backend="threads", partition="kd")
        result = runner.run(scenario_id, seed=5)

        assert result.accepted_updates == result.submitted_updates
        assert result.report == seed_replay(result)
        assert result.passed, result.validation_errors

    def test_snapshot_reports_real_state(self):
        result = ScenarioRunner(num_shards=1).run("uniform_trickle", seed=2)

        report = result.report
        assert report["size"] == len(report["records"]) > 0
        assert report["top_k_hotness"]
        # The snapshot is wire-pure: a JSON round trip is the identity.
        assert json.loads(json.dumps(report)) == report


class TestForcedRebalanceInvariance:
    """kd migrations mid-run and mid-replay must be invisible in the answers."""

    def test_forced_mid_run_rebalances_leave_answers_unchanged(self):
        runner = ScenarioRunner(num_shards=4, backend="threads", partition="kd")
        injection = InjectionConfig(
            enabled=True, fault="force_rebalance", rate=0.6, seed=9
        )
        result = runner.run("bursty_downtown", seed=7, injection=injection)

        assert result.forced_rebalances >= 1
        assert result.report == seed_replay(result)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_replay_through_rebalancing_fleets_matches_seed(self, backend):
        result = ScenarioRunner(num_shards=4, backend="serial", partition="kd").run(
            "bursty_downtown", seed=3
        )
        reference = seed_replay(result)

        fleet = replay_accepted_log(
            result.accepted_log,
            num_shards=4,
            backend=backend,
            partition="kd",
            rebalance_before=(1, 3),
        )
        assert fleet == reference
        assert result.report == reference


class TestConcurrentClients:
    """Racing clients must not perturb the committed state."""

    @pytest.mark.parametrize("backend", ["serial", "processes"])
    def test_concurrent_sends_replay_bit_for_bit(self, backend):
        runner = ScenarioRunner(num_shards=4, backend=backend, partition="kd")
        result = runner.run("bursty_downtown", seed=13, concurrent=True)

        assert result.accepted_updates == result.submitted_updates
        assert result.report == seed_replay(result)

    def test_concurrent_run_equals_serialized_run(self):
        """Same scenario seed, racing vs. ordered sends: same committed state.

        The batcher's canonical ``(client, seq)`` epoch ordering makes the
        commit independent of the arrival interleaving — so the two modes
        must agree on everything but timing.
        """
        runner = ScenarioRunner(num_shards=2, backend="threads", partition="uniform")
        ordered = runner.run("uniform_trickle", seed=21, concurrent=False)
        racing = runner.run("uniform_trickle", seed=21, concurrent=True)

        assert racing.accepted_log == ordered.accepted_log
        assert racing.report == ordered.report


class TestReconnectStorm:
    def test_thundering_herd_reconnects_and_stays_equal(self):
        scenario = get_scenario("thundering_herd")
        result = ScenarioRunner(num_shards=4, backend="threads", partition="kd").run(
            scenario, seed=17
        )

        assert result.reconnects == scenario.num_clients
        assert result.accepted_updates == result.submitted_updates
        assert result.report == seed_replay(result)
