"""Property tests for :class:`EpochBatcher` — the serving determinism core.

Three properties carry the whole serving equivalence contract:

* **Interleaving independence** — any arrival permutation of the same
  accepted batches commits the same epoch, bit for bit.  This is why
  racing TCP clients cannot perturb the coordinator.
* **Backpressure never loses an accepted update** — rejection is all or
  nothing (a batch is never truncated), every rejected batch succeeds on
  retry after a commit drains the queue, and the union of committed
  updates equals exactly the accepted offers.
* **Duplicate idempotence** — redelivering any accepted ``(client, seq)``
  any number of times, in any position, changes nothing.
"""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.core.geometry import Point, Rectangle
from repro.client.state import ObjectState
from repro.coordinator.coordinator import Coordinator, CoordinatorConfig
from repro.serving.batcher import EpochBatcher, canonical_order
from repro.serving.protocol import coordinator_snapshot

BOUNDS = Rectangle(Point(0.0, 0.0), Point(1000.0, 1000.0))


def make_coordinator() -> Coordinator:
    return Coordinator(
        CoordinatorConfig(bounds=BOUNDS, window=60, cells_per_axis=16)
    )


def make_states(client: int, seq: int, size: int) -> tuple:
    """A deterministic batch payload — a pure function of (client, seq)."""
    rng = random.Random(client * 7919 + seq)
    states = []
    for index in range(size):
        start = Point(rng.uniform(0.0, 1000.0), rng.uniform(0.0, 1000.0))
        fsa = Rectangle.from_center(
            Point(start.x + rng.uniform(-150.0, 150.0), start.y + rng.uniform(-150.0, 150.0)),
            rng.uniform(5.0, 120.0),
        )
        t_end = 10 - rng.randrange(10)
        states.append(
            ObjectState(
                client * 100 + rng.randrange(6),
                start,
                max(0, t_end - 5),
                fsa.low,
                fsa.high,
                t_end,
            )
        )
    return tuple(states)


#: A set of batches: distinct (client, seq) keys with small payload sizes.
batch_sets = st.dictionaries(
    keys=st.tuples(st.integers(0, 3), st.integers(0, 5)),
    values=st.integers(1, 4),
    min_size=1,
    max_size=8,
).map(
    lambda sizes: [
        (client, seq, make_states(client, seq, size))
        for (client, seq), size in sizes.items()
    ]
)


class TestInterleavingIndependence:
    @given(batches=batch_sets, order_seed=st.integers(0, 2**16))
    @settings(max_examples=25, deadline=None)
    def test_any_arrival_order_commits_the_same_epoch(self, batches, order_seed):
        shuffled = list(batches)
        random.Random(order_seed).shuffle(shuffled)

        snapshots = []
        logs = []
        for arrival in (batches, shuffled):
            coordinator = make_coordinator()
            try:
                batcher = EpochBatcher(coordinator)
                for client, seq, states in arrival:
                    assert batcher.offer(client, seq, states).accepted
                batcher.close_epoch(10)
                snapshots.append(coordinator_snapshot(coordinator))
                logs.append(batcher.accepted_log)
            finally:
                coordinator.close()

        assert snapshots[0] == snapshots[1]
        assert logs[0] == logs[1]

    @given(batches=batch_sets, order_seed=st.integers(0, 2**16))
    @settings(max_examples=50, deadline=None)
    def test_canonical_order_is_permutation_invariant(self, batches, order_seed):
        pending = [(c, s, 0.0, states) for c, s, states in batches]
        shuffled = list(pending)
        random.Random(order_seed).shuffle(shuffled)
        assert canonical_order(shuffled) == canonical_order(pending)


class TestBackpressure:
    @given(
        batches=batch_sets,
        capacity=st.integers(2, 10),
        order_seed=st.integers(0, 2**16),
    )
    @settings(max_examples=25, deadline=None)
    def test_no_accepted_update_is_ever_lost(self, batches, capacity, order_seed):
        arrival = list(batches)
        random.Random(order_seed).shuffle(arrival)

        coordinator = make_coordinator()
        try:
            batcher = EpochBatcher(coordinator, max_pending_updates=capacity)
            now = 10
            pending = list(arrival)
            committed_rows = []
            rejected_whole = 0
            while pending:
                retry = []
                for client, seq, states in pending:
                    decision = batcher.offer(client, seq, states)
                    if decision.accepted:
                        # All-or-nothing admission: never truncated.
                        assert decision.count == len(states)
                    else:
                        assert decision.reason == "backpressure"
                        rejected_whole += 1
                        retry.append((client, seq, states))
                batcher.close_epoch(now)
                committed_rows.extend(batcher.accepted_log[-1][1])
                now += 10
                # A commit drains the queue completely, so any batch that
                # fits the capacity at all must succeed on retry.
                pending = [b for b in retry if len(b[2]) <= capacity]

            committed = sorted(tuple(row) for row in committed_rows)
            offered = sorted(
                tuple(encoded)
                for client, seq, states in arrival
                if len(states) <= capacity
                for encoded in (state.as_tuple() for state in states)
            )
            assert committed == offered
            assert batcher.rejected_batches == rejected_whole
        finally:
            coordinator.close()


class TestDuplicateIdempotence:
    @given(
        batches=batch_sets,
        dup_seed=st.integers(0, 2**16),
        extra_copies=st.integers(1, 3),
    )
    @settings(max_examples=25, deadline=None)
    def test_redelivery_changes_nothing(self, batches, dup_seed, extra_copies):
        rng = random.Random(dup_seed)

        reference = make_coordinator()
        noisy = make_coordinator()
        try:
            clean = EpochBatcher(reference)
            dirty = EpochBatcher(noisy)
            for client, seq, states in batches:
                assert clean.offer(client, seq, states).accepted
                assert dirty.offer(client, seq, states).accepted
                for _ in range(extra_copies if rng.random() < 0.5 else 0):
                    decision = dirty.offer(client, seq, states)
                    assert decision.accepted and decision.duplicate
                    assert decision.count == 0
            # Redeliver a random prefix once more, after everything.
            for client, seq, states in batches[: rng.randrange(len(batches) + 1)]:
                assert dirty.offer(client, seq, states).duplicate

            clean.close_epoch(10)
            dirty.close_epoch(10)
            assert dirty.accepted_log == clean.accepted_log
            assert coordinator_snapshot(noisy) == coordinator_snapshot(reference)
            assert dirty.accepted_updates == clean.accepted_updates
        finally:
            reference.close()
            noisy.close()
