"""Property-based tests (hypothesis) on the core data structures and invariants."""

from __future__ import annotations

import math

from hypothesis import given, settings, strategies as st

from repro.core.geometry import Point, Rectangle, interpolate_point, max_distance
from repro.core.trajectory import TimePoint
from repro.client.raytrace import RayTraceConfig, RayTraceFilter
from repro.client.uncertainty import NormalToleranceModel, interval_probability
from repro.coordinator.hotness import HotnessTracker
from repro.baselines.douglas_peucker import douglas_peucker, synchronous_distance
from repro.baselines.opening_window import opening_window_simplify


coordinates = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False)
small_coordinates = st.floats(min_value=-1e3, max_value=1e3, allow_nan=False, allow_infinity=False)
points = st.builds(Point, coordinates, coordinates)
small_points = st.builds(Point, small_coordinates, small_coordinates)


@st.composite
def rectangle_strategy(draw):
    x0, x1 = sorted((draw(small_coordinates), draw(small_coordinates)))
    y0, y1 = sorted((draw(small_coordinates), draw(small_coordinates)))
    return Rectangle(Point(x0, y0), Point(x1, y1))


class TestGeometryProperties:
    @given(points, points)
    def test_max_distance_symmetric(self, a, b):
        assert max_distance(a, b) == max_distance(b, a)

    @given(points, points, points)
    def test_max_distance_triangle_inequality(self, a, b, c):
        assert max_distance(a, c) <= max_distance(a, b) + max_distance(b, c) + 1e-6

    @given(points)
    def test_max_distance_identity(self, a):
        assert max_distance(a, a) == 0.0

    @given(points, points, st.floats(min_value=0.0, max_value=1.0))
    def test_interpolation_stays_in_bounding_box(self, a, b, fraction):
        box = Rectangle.bounding(a, b)
        interpolated = interpolate_point(a, b, fraction)
        # Allow a whisker of floating-point slack at the box boundary.
        assert box.expand(1e-6 * (1.0 + abs(a.x) + abs(b.x) + abs(a.y) + abs(b.y))).contains_point(
            interpolated
        )

    @given(rectangle_strategy(), rectangle_strategy())
    def test_intersection_commutative_and_contained(self, a, b):
        inter_ab = a.intersection(b)
        inter_ba = b.intersection(a)
        assert (inter_ab is None) == (inter_ba is None)
        if inter_ab is not None:
            assert inter_ab == inter_ba
            assert a.contains_rectangle(inter_ab)
            assert b.contains_rectangle(inter_ab)

    @given(rectangle_strategy(), rectangle_strategy())
    def test_union_bounds_contains_both(self, a, b):
        union = a.union_bounds(b)
        assert union.contains_rectangle(a)
        assert union.contains_rectangle(b)

    @given(rectangle_strategy(), small_points)
    def test_clamp_point_lands_inside(self, rect, point):
        assert rect.contains_point(rect.clamp_point(point))


class TestUncertaintyProperties:
    @given(
        st.floats(min_value=0.5, max_value=20.0),
        st.floats(min_value=0.01, max_value=0.45),
        st.floats(min_value=0.01, max_value=5.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_interval_within_plain_epsilon_and_valid(self, epsilon, delta, sigma):
        """Any solved tolerance interval is centred, no wider than 2*eps, and meets the probability bound."""
        model = NormalToleranceModel(epsilon=epsilon, delta=delta)
        interval = model.tolerance_interval(mean=0.0, sigma=sigma, axis_delta=delta)
        half = interval.half_width
        assert half <= epsilon + 1e-6
        if half > model.minimal_half_width + 1e-12:
            # A genuine (non-fallback) solution: the boundary offset satisfies Equation 2.
            assert interval_probability(half, epsilon, sigma) >= 1.0 - delta - 1e-6

    @given(
        st.floats(min_value=0.5, max_value=20.0),
        st.floats(min_value=0.01, max_value=0.45),
        st.floats(min_value=0.01, max_value=2.0),
        st.floats(min_value=0.01, max_value=2.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_interval_monotone_in_sigma(self, epsilon, delta, sigma_a, sigma_b):
        """More measurement noise never widens the admissible interval.

        The property only holds while Equation 2 remains solvable; beyond
        ``max_supported_sigma`` the MINIMAL fallback kicks in with a fixed
        width, so those cases are excluded here (they are covered separately
        by the unsatisfiable-policy unit tests).
        """
        from hypothesis import assume

        model = NormalToleranceModel(epsilon=epsilon, delta=delta)
        low, high = sorted((sigma_a, sigma_b))
        assume(high <= model.max_supported_sigma(delta))
        wide = model.tolerance_interval(mean=0.0, sigma=low, axis_delta=delta)
        narrow = model.tolerance_interval(mean=0.0, sigma=high, axis_delta=delta)
        assert narrow.half_width <= wide.half_width + 1e-9


@st.composite
def random_walk_measurements(draw):
    """A random walk with bounded per-step displacement, as a list of timepoints."""
    n = draw(st.integers(min_value=2, max_value=30))
    x, y = 0.0, 0.0
    measurements = [TimePoint(Point(0.0, 0.0), 0)]
    for t in range(1, n):
        x += draw(st.floats(min_value=-5.0, max_value=5.0))
        y += draw(st.floats(min_value=-5.0, max_value=5.0))
        measurements.append(TimePoint(Point(x, y), t))
    return measurements


class TestRayTraceProperties:
    @given(random_walk_measurements(), st.floats(min_value=0.5, max_value=10.0))
    @settings(max_examples=60, deadline=None)
    def test_reported_states_admit_fitting_paths(self, measurements, epsilon):
        """For every reported state, the segment from start to the FSA centre fits all processed measurements.

        This is the paper's central correctness claim for RayTrace (Section 4):
        a motion path ``s -> e`` exists for every ``e`` in the FSA.  We replay
        the measurements, capture each emitted state together with the
        measurements it covered and check the proximity bound timestamp by
        timestamp.
        """
        filt = RayTraceFilter(0, measurements[0], RayTraceConfig(epsilon))
        covered = []  # measurements covered by the current SSA
        for measurement in measurements[1:]:
            state = filt.observe(measurement)
            if state is None:
                covered.append(measurement)
                continue
            self._check_state_fits(state, covered, epsilon)
            # Hand the filter the FSA centre as its next start, as the
            # coordinator would, and continue.
            from repro.client.state import CoordinatorResponse

            filt.receive_response(
                CoordinatorResponse(0, state.fsa.center, state.t_end)
            )
            covered = [measurement]
        final_state = filt.current_state()
        self._check_state_fits(final_state, covered, epsilon)

    @staticmethod
    def _check_state_fits(state, covered, epsilon):
        span = state.t_end - state.t_start
        if span <= 0:
            return
        endpoint = state.fsa.center
        for measurement in covered:
            if not (state.t_start <= measurement.timestamp <= state.t_end):
                continue
            fraction = (measurement.timestamp - state.t_start) / span
            on_path = Point(
                state.start.x + fraction * (endpoint.x - state.start.x),
                state.start.y + fraction * (endpoint.y - state.start.y),
            )
            assert on_path.max_distance_to(measurement.point) <= epsilon + 1e-6

    @given(random_walk_measurements(), st.floats(min_value=0.5, max_value=10.0))
    @settings(max_examples=30, deadline=None)
    def test_filter_state_is_constant_size(self, measurements, epsilon):
        """The filter never stores more than the O(1) SSA state plus the waiting buffer."""
        filt = RayTraceFilter(0, measurements[0], RayTraceConfig(epsilon))
        for measurement in measurements[1:]:
            filt.observe(measurement)
            if not filt.waiting:
                assert filt.buffered_measurements == 0


class TestDouglasPeuckerProperties:
    @given(random_walk_measurements(), st.floats(min_value=0.5, max_value=10.0))
    @settings(max_examples=50, deadline=None)
    def test_simplification_error_bounded(self, measurements, tolerance):
        simplified = douglas_peucker(measurements, tolerance)
        assert simplified[0] == measurements[0]
        assert simplified[-1] == measurements[-1]
        for tp in measurements:
            for left, right in zip(simplified, simplified[1:]):
                if left.timestamp <= tp.timestamp <= right.timestamp:
                    assert synchronous_distance(tp, left, right) <= tolerance + 1e-6
                    break

    @given(random_walk_measurements(), st.floats(min_value=0.5, max_value=10.0))
    @settings(max_examples=50, deadline=None)
    def test_opening_window_segments_are_chained(self, measurements, tolerance):
        segments = opening_window_simplify(measurements, tolerance)
        for previous, following in zip(segments, segments[1:]):
            assert previous.end.timestamp <= following.start.timestamp
        if segments:
            assert segments[0].start.timestamp == measurements[0].timestamp
            assert segments[-1].end.timestamp <= measurements[-1].timestamp


class TestHotnessProperties:
    @given(
        st.lists(
            st.tuples(st.integers(min_value=0, max_value=20), st.integers(min_value=0, max_value=100)),
            min_size=1,
            max_size=60,
        ),
        st.integers(min_value=1, max_value=50),
    )
    @settings(max_examples=60, deadline=None)
    def test_hotness_matches_brute_force_window_count(self, crossings, window):
        """The tracker's hotness equals a brute-force count of unexpired crossings."""
        tracker = HotnessTracker(window)
        crossings = sorted(crossings, key=lambda item: item[1])
        recorded = []
        now = 0
        for path_id, t_end in crossings:
            now = max(now, t_end)
            tracker.record_crossing(path_id, t_end)
            recorded.append((path_id, t_end))
            tracker.advance_time(now)
            expected = {}
            for pid, end in recorded:
                if end + window > now:
                    expected[pid] = expected.get(pid, 0) + 1
            for pid in {pid for pid, _ in recorded}:
                assert tracker.hotness(pid) == expected.get(pid, 0)
