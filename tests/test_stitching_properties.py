"""Property-based tests for :mod:`repro.coordinator.stitching`.

Random hot-fragment sets (endpoints drawn from a small coordinate pool so
vertices routinely coincide — shared junctions, chains, forks, cycles and
degenerate self-loops all occur) are checked against a brute-force reference
that implements the weld rule directly from its definition, in the style of
``tests/test_overlap_properties.py``:

* **chain closure** — corridors partition the hot set, consecutive segments
  weld end-to-start, and every weld is consumed by exactly one corridor;
* **order independence of the boundary merge** — re-partitioning the
  fragments over an arbitrary shard grid, welding per shard and merging the
  runs reproduces the global stitch regardless of fragment order, grid shape
  or run arrival order;
* **score additivity** — a corridor's score is exactly the sum of its member
  scores and its hotness the minimum member hotness, so stitching regroups
  the quality metric without inflating it;
* **tie-break totality** — the corridor top-k is a total order: permuting the
  corridor list never changes the ranking.
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

from hypothesis import given, settings, strategies as st

from repro.core.geometry import Point
from repro.core.motion_path import MotionPath, MotionPathRecord
from repro.coordinator.sharding import ShardGrid
from repro.coordinator.stitching import (
    CompositeCorridor,
    build_corridors,
    chain_fragments,
    select_top_k_corridors,
    split_chains_at_boundaries,
    stitch_paths,
    successors_from_runs,
    weld_runs,
)
from repro.core.geometry import Rectangle

BOUNDS = Rectangle(Point(0.0, 0.0), Point(1000.0, 1000.0))

# Coarse pool: endpoints collide (welds and forks), sit exactly on 2x2/4x4
# shard borders, and occasionally fall outside the bounds (clamped ownership).
coordinate_pool = st.sampled_from(
    [-50.0, 0.0, 100.0, 250.0, 400.0, 500.0, 625.0, 750.0, 900.0, 1000.0, 1050.0]
)

#: ``path_id -> (start, end, hotness)``
Fragments = Dict[int, Tuple[Point, Point, int]]


@st.composite
def fragment_sets(draw) -> Fragments:
    count = draw(st.integers(min_value=1, max_value=14))
    fragments: Fragments = {}
    for path_id in range(count):
        start = Point(draw(coordinate_pool), draw(coordinate_pool))
        end = Point(draw(coordinate_pool), draw(coordinate_pool))
        fragments[path_id] = (start, end, draw(st.integers(min_value=1, max_value=5)))
    return fragments


shard_grids = st.tuples(
    st.integers(min_value=1, max_value=4), st.integers(min_value=1, max_value=4)
).map(lambda dims: ShardGrid(BOUNDS, dims[0], dims[1]))


def hot_path_list(fragments: Fragments, order: List[int]):
    return [
        (MotionPathRecord(path_id, MotionPath(*fragments[path_id][:2])), fragments[path_id][2])
        for path_id in order
    ]


# ---------------------------------------------------------------------------
# Brute-force reference: the weld rule applied literally, per fragment
# ---------------------------------------------------------------------------


def reference_welds(fragments: Fragments) -> Dict[int, int]:
    """``p -> q`` iff p is the only fragment ending at v, q the only one
    starting at v, and p != q — checked by scanning all fragments per vertex."""
    welds: Dict[int, int] = {}
    for path_id, (_start, end, _hotness) in fragments.items():
        enders = [
            other for other, (_s, e, _h) in fragments.items() if e == end
        ]
        starters = [
            other for other, (s, _e, _h) in fragments.items() if s == end
        ]
        if len(enders) == 1 and len(starters) == 1 and starters[0] != path_id:
            welds[path_id] = starters[0]
    return welds


def reference_chains(fragments: Fragments) -> List[List[int]]:
    welds = reference_welds(fragments)
    has_predecessor = set(welds.values())
    chains: List[List[int]] = []
    used = set()
    for path_id in sorted(fragments):
        if path_id in used or path_id in has_predecessor:
            continue
        chain = [path_id]
        used.add(path_id)
        while chain[-1] in welds and welds[chain[-1]] not in used:
            chain.append(welds[chain[-1]])
            used.add(chain[-1])
        chains.append(chain)
    for path_id in sorted(fragments):  # cycles, broken at their minimum id
        if path_id in used:
            continue
        chain = [path_id]
        used.add(path_id)
        while welds.get(chain[-1]) is not None and welds[chain[-1]] not in used:
            chain.append(welds[chain[-1]])
            used.add(chain[-1])
        chains.append(chain)
    return sorted(chains)


def distributed_stitch(
    fragments: Fragments,
    order: List[int],
    grid: ShardGrid,
    mode: str = "exact",
) -> List[CompositeCorridor]:
    """Replicate the sharded merge without a router: route every fragment to
    its endpoint owners, weld per shard, merge the runs, chain."""
    tasks: Dict[int, list] = {}
    info: Dict[int, Tuple[MotionPath, int, int]] = {}
    for path_id in order:
        start, end, hotness = fragments[path_id]
        start_shard = grid.shard_id_of(start)
        end_shard = grid.shard_id_of(end)
        info[path_id] = (MotionPath(start, end), hotness, start_shard)
        tasks.setdefault(start_shard, []).append(
            (path_id, start.x, start.y, end.x, end.y, True, end_shard == start_shard)
        )
        if end_shard != start_shard:
            tasks.setdefault(end_shard, []).append(
                (path_id, start.x, start.y, end.x, end.y, False, True)
            )
    runs = []
    for shard_id in tasks:
        runs.extend(weld_runs(tasks[shard_id]))
    successor = successors_from_runs(runs)
    chains = chain_fragments(info, successor)
    if mode == "off":
        chains = split_chains_at_boundaries(chains, lambda path_id: info[path_id][2])
    return build_corridors(chains, lambda path_id: info[path_id][:2])


def snapshot(corridors: List[CompositeCorridor]) -> List[tuple]:
    return [
        (
            corridor.path_ids,
            tuple((s.path.start, s.path.end, s.hotness) for s in corridor.segments),
            corridor.hotness,
            corridor.score,
        )
        for corridor in corridors
    ]


class TestAgainstBruteForceReference:
    @settings(max_examples=200, deadline=None)
    @given(fragment_sets())
    def test_global_stitch_matches_reference_chains(self, fragments):
        corridors = stitch_paths(hot_path_list(fragments, sorted(fragments)))
        assert sorted(list(c.path_ids) for c in corridors) == reference_chains(fragments)

    @settings(max_examples=200, deadline=None)
    @given(fragment_sets(), shard_grids)
    def test_distributed_welds_match_reference(self, fragments, grid):
        """The union of per-shard weld runs is exactly the global weld set."""
        tasks: Dict[int, list] = {}
        for path_id, (start, end, _h) in fragments.items():
            start_shard, end_shard = grid.shard_id_of(start), grid.shard_id_of(end)
            tasks.setdefault(start_shard, []).append(
                (path_id, start.x, start.y, end.x, end.y, True, end_shard == start_shard)
            )
            if end_shard != start_shard:
                tasks.setdefault(end_shard, []).append(
                    (path_id, start.x, start.y, end.x, end.y, False, True)
                )
        runs = []
        for shard_id in tasks:
            runs.extend(weld_runs(tasks[shard_id]))
        assert successors_from_runs(runs) == reference_welds(fragments)


class TestChainClosure:
    @settings(max_examples=200, deadline=None)
    @given(fragment_sets())
    def test_corridors_partition_the_fragment_set(self, fragments):
        corridors = stitch_paths(hot_path_list(fragments, sorted(fragments)))
        covered = [pid for c in corridors for pid in c.path_ids]
        assert sorted(covered) == sorted(fragments)
        assert len(covered) == len(set(covered))

    @settings(max_examples=200, deadline=None)
    @given(fragment_sets())
    def test_consecutive_segments_weld_end_to_start(self, fragments):
        welds = reference_welds(fragments)
        for corridor in stitch_paths(hot_path_list(fragments, sorted(fragments))):
            for previous, segment in zip(corridor.segments, corridor.segments[1:]):
                assert previous.path.end == segment.path.start
                assert welds[previous.path_id] == segment.path_id

    @settings(max_examples=200, deadline=None)
    @given(fragment_sets())
    def test_chains_are_maximal(self, fragments):
        """A weld never joins two *different* corridors: every weld is
        consumed inside a chain, except the one broken per cycle."""
        welds = reference_welds(fragments)
        corridors = stitch_paths(hot_path_list(fragments, sorted(fragments)))
        consumed = {
            previous.path_id
            for corridor in corridors
            for previous in corridor.segments[:-1]
        }
        for predecessor_id, successor_id in welds.items():
            if predecessor_id in consumed:
                continue
            # The unconsumed weld must close a cycle: its target is the head
            # (and minimum id) of the corridor its source terminates.
            corridor = next(
                c for c in corridors if c.path_ids[-1] == predecessor_id
            )
            assert corridor.path_ids[0] == successor_id
            assert corridor.lead_path_id == min(corridor.path_ids)


class TestMergeOrderIndependence:
    @settings(max_examples=150, deadline=None)
    @given(fragment_sets(), st.randoms(use_true_random=False))
    def test_global_stitch_is_input_order_independent(self, fragments, rng):
        order = sorted(fragments)
        shuffled = list(order)
        rng.shuffle(shuffled)
        assert snapshot(stitch_paths(hot_path_list(fragments, shuffled))) == snapshot(
            stitch_paths(hot_path_list(fragments, order))
        )

    @settings(max_examples=150, deadline=None)
    @given(fragment_sets(), shard_grids, st.randoms(use_true_random=False))
    def test_boundary_merge_matches_global_stitch(self, fragments, grid, rng):
        """The tentpole property: welding per shard and merging the runs is
        the global stitch, for every grid shape and fragment order."""
        order = sorted(fragments)
        shuffled = list(order)
        rng.shuffle(shuffled)
        reference = snapshot(stitch_paths(hot_path_list(fragments, order)))
        assert snapshot(distributed_stitch(fragments, shuffled, grid)) == reference

    @settings(max_examples=100, deadline=None)
    @given(fragment_sets(), shard_grids)
    def test_off_mode_is_the_exact_stitch_cut_at_boundaries(self, fragments, grid):
        order = sorted(fragments)
        exact = distributed_stitch(fragments, order, grid, mode="exact")
        off = distributed_stitch(fragments, order, grid, mode="off")
        pieces = []
        for corridor in exact:
            piece = [corridor.segments[0]]
            for previous, segment in zip(corridor.segments, corridor.segments[1:]):
                if grid.shard_id_of(previous.path.start) != grid.shard_id_of(
                    segment.path.start
                ):
                    pieces.append(tuple(s.path_id for s in piece))
                    piece = [segment]
                else:
                    piece.append(segment)
            pieces.append(tuple(s.path_id for s in piece))
        assert sorted(c.path_ids for c in off) == sorted(pieces)


class TestScoring:
    @settings(max_examples=200, deadline=None)
    @given(fragment_sets())
    def test_score_is_additive_and_hotness_is_the_minimum(self, fragments):
        for corridor in stitch_paths(hot_path_list(fragments, sorted(fragments))):
            assert corridor.score == sum(s.score for s in corridor.segments)
            assert corridor.hotness == min(s.hotness for s in corridor.segments)
            assert corridor.length == sum(s.path.length for s in corridor.segments)
            for segment in corridor.segments:
                assert segment.score == segment.hotness * segment.path.length

    @settings(max_examples=150, deadline=None)
    @given(fragment_sets())
    def test_stitching_preserves_total_score(self, fragments):
        """Sum of corridor scores == sum of fragment scores: stitching
        regroups the quality metric, it never inflates or loses it."""
        corridors = stitch_paths(hot_path_list(fragments, sorted(fragments)))
        total = sum(
            hotness * MotionPath(start, end).length
            for start, end, hotness in fragments.values()
        )
        regrouped = sum(s.score for c in corridors for s in c.segments)
        assert abs(regrouped - total) < 1e-9


class TestTieBreakTotality:
    @settings(max_examples=150, deadline=None)
    @given(
        fragment_sets(),
        st.integers(min_value=1, max_value=8),
        st.booleans(),
        st.randoms(use_true_random=False),
    )
    def test_top_k_is_order_independent(self, fragments, k, by_score, rng):
        corridors = stitch_paths(hot_path_list(fragments, sorted(fragments)))
        shuffled = list(corridors)
        rng.shuffle(shuffled)
        assert snapshot(select_top_k_corridors(shuffled, k, by_score)) == snapshot(
            select_top_k_corridors(corridors, k, by_score)
        )

    @settings(max_examples=150, deadline=None)
    @given(fragment_sets(), st.booleans())
    def test_ranking_keys_are_distinct(self, fragments, by_score):
        """Lead path ids are unique across corridors (they partition the
        fragment set), so the ranking key is a strict total order."""
        corridors = stitch_paths(hot_path_list(fragments, sorted(fragments)))
        leads = [corridor.lead_path_id for corridor in corridors]
        assert len(leads) == len(set(leads))
        ranked = select_top_k_corridors(corridors, len(corridors) or 1, by_score)
        assert sorted(c.lead_path_id for c in ranked) == sorted(leads)
