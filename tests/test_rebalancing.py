"""Rebalance-protocol and shard-statistics/ledger regression suite.

Three layers:

* :class:`TestRebalanceMigration` — the migration itself preserves every
  observable (records, ids, hotness counters, pending expiry events,
  boundary ledgers) while moving state onto the new partition, refuses to
  run inside a parallel commit, and skips no-op refits;
* :class:`TestShardStatistics` — the satellite audit: per-shard load counts
  never double-count boundary-straddling paths (visible from both endpoint
  shards via ``boundary_ledger_of``) and survive parallel-commit
  renumbering;
* :class:`TestLedgerDrain` — the satellite leak regression: window slides
  that expire straddling paths must drop their ledger entries in the same
  epoch's deferred drain, over long replays and forced rebalances (a leak
  inflates imbalance statistics and stitch work).
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

import pytest

from repro.core.errors import ConfigurationError, CoordinatorError
from repro.core.geometry import Point, Rectangle
from repro.core.motion_path import MotionPath
from repro.client.state import ObjectState
from repro.coordinator.coordinator import Coordinator, CoordinatorConfig
from repro.coordinator.partition import KdSplitPartition, UniformGridPartition
from repro.coordinator.sharding import ShardRouter

BOUNDS = Rectangle(Point(0.0, 0.0), Point(1000.0, 1000.0))


def make_router(num_shards: int = 4, window: int = 60, **kwargs) -> ShardRouter:
    return ShardRouter(BOUNDS, window, 32, num_shards, **kwargs)


def insert_walk(router: ShardRouter, seed: int, walks: int = 12, steps: int = 6) -> None:
    """Chained random-walk paths crossing shard borders, with crossings."""
    rng = random.Random(seed)
    timestamp = 0
    for _walk in range(walks):
        point = Point(rng.uniform(0.0, 1000.0), rng.uniform(0.0, 1000.0))
        for _step in range(steps):
            target = Point(
                min(max(point.x + rng.uniform(-300.0, 300.0), 0.0), 1000.0),
                min(max(point.y + rng.uniform(-300.0, 300.0), 0.0), 1000.0),
            )
            if target == point:
                continue
            record = router.insert(MotionPath(point, target), created_at=timestamp)
            router.hotness.record_crossing(record.path_id, timestamp)
            point = target
        timestamp += 1


def router_snapshot(router: ShardRouter) -> Dict:
    """Canonical partition-independent snapshot of all router state."""
    return {
        "records": sorted(
            (record.path_id, record.path.start.as_tuple(), record.path.end.as_tuple(), record.created_at)
            for record in router.index.records
        ),
        "hotness": sorted(router.hotness.items()),
        "pending_events": router.hotness.pending_events,
        "owners": sorted(router.owners),
    }


def live_straddling(router: ShardRouter) -> List[int]:
    """Ground truth: live paths whose endpoints have different owners."""
    return sorted(
        path_id
        for path_id, shard in router.owners.items()
        if router.shard_of(shard.index.get(path_id).path.end) is not shard
    )


def ledger_paths(router: ShardRouter) -> List[int]:
    return sorted(
        path_id for entries in router.boundary_ledger.values() for path_id in entries
    )


class TestRebalanceMigration:
    def test_migration_preserves_every_observable(self):
        router = make_router(4)
        insert_walk(router, seed=3)
        before = router_snapshot(router)
        straddling_before = live_straddling(router)
        partition = KdSplitPartition.fit(BOUNDS, 4, router._endpoint_samples())
        assert router.rebalance(partition) is True
        assert router.grid is partition
        assert router.rebalances == 1
        assert router_snapshot(router) == before
        # The ledger is *recomputed*, not preserved: same straddling set
        # under the new ownership geometry.
        assert ledger_paths(router) == live_straddling(router)
        # Straddling ground truth is partition-dependent, but every
        # pre-migration path is still resolvable from both endpoint shards.
        for path_id in straddling_before:
            assert path_id in router.owners

    def test_migrated_fleet_keeps_serving_epochs(self):
        router = make_router(4)
        insert_walk(router, seed=5)
        router.rebalance(KdSplitPartition.fit(BOUNDS, 4, router._endpoint_samples()))
        states = [
            ObjectState(7, Point(100.0, 100.0), 0, Point(60.0, 60.0), Point(140.0, 140.0), 5),
            ObjectState(9, Point(900.0, 150.0), 0, Point(860.0, 110.0), Point(940.0, 190.0), 6),
        ]
        result = router.pipeline.process_epoch(states)
        assert len(result.responses) == 2

    def test_hotness_and_expiry_survive_migration(self):
        """Counters and pending events follow their path's new owner, and the
        window keeps sliding correctly after the move."""
        router = make_router(4, window=10)
        first = router.insert(MotionPath(Point(100.0, 100.0), Point(600.0, 600.0)))
        second = router.insert(MotionPath(Point(800.0, 800.0), Point(900.0, 900.0)))
        router.hotness.record_crossing(first.path_id, 1)   # expires at 11
        router.hotness.record_crossing(first.path_id, 5)   # expires at 15
        router.hotness.record_crossing(second.path_id, 2)  # expires at 12
        router.rebalance(KdSplitPartition.fit(BOUNDS, 4, router._endpoint_samples()))
        assert router.hotness.hotness(first.path_id) == 2
        assert router.hotness.hotness(second.path_id) == 1
        assert router.hotness.pending_events == 3
        assert sorted(router.hotness.advance_time(12)) == [second.path_id]
        assert router.hotness.hotness(first.path_id) == 1
        assert sorted(router.hotness.advance_time(20)) == [first.path_id]

    def test_orphan_hotness_stays_with_its_shard(self):
        """A hotness entry without a live record (direct index manipulation)
        must survive migration so its expiry events keep draining."""
        router = make_router(4, window=10)
        record = router.insert(MotionPath(Point(100.0, 100.0), Point(150.0, 150.0)))
        router.hotness.record_crossing(record.path_id, 1)
        router.index.delete(record.path_id)  # hotness entry now orphaned
        router.rebalance(KdSplitPartition.fit(BOUNDS, 4, [(100.0, 100.0)]))
        # The facade reports 0 for ownerless paths (pre-existing semantics),
        # but the counter and its event must still live on *some* shard so
        # the expiry pop pairs up instead of raising.
        assert sum(s.hotness.hotness(record.path_id) for s in router.shards) == 1
        assert router.hotness.pending_events == 1
        assert sorted(router.hotness.advance_time(30)) == [record.path_id]

    def test_orphan_expiry_survives_back_to_back_elastic_shrinks(self):
        """Satellite regression: an orphaned hotness entry (no live record)
        whose fallback owner changes *twice* across back-to-back migrations
        — each a shrink that removes the entry's previous shard position —
        must keep its counter and pending expiry event paired on one shard
        so the window keeps draining.  The old fallback indexed
        ``shards[previous_shard]`` verbatim, an IndexError once the fleet
        shrank below that position."""
        router = make_router(4, window=10, elastic="auto")
        live = router.insert(MotionPath(Point(100.0, 100.0), Point(900.0, 900.0)))
        router.hotness.record_crossing(live.path_id, 2)
        # Orphan on the top-right shard: position 3 of the 2x2 layout.
        orphan = router.insert(MotionPath(Point(900.0, 900.0), Point(950.0, 950.0)))
        router.hotness.record_crossing(orphan.path_id, 1)
        router.index.delete(orphan.path_id)
        # Shrink 4 -> 3: position 3 is gone, the orphan clamps to shard 2.
        assert router.rebalance(UniformGridPartition(BOUNDS, 3, 1)) is True
        # Shrink 3 -> 2 back-to-back: position 2 is gone again.
        assert router.rebalance(UniformGridPartition(BOUNDS, 2, 1)) is True
        assert len(router.shards) == 2
        assert sum(s.hotness.hotness(orphan.path_id) for s in router.shards) == 1
        assert router.hotness.hotness(live.path_id) == 1
        assert router.hotness.pending_events == 2
        # Both expiry pops pair with their counters instead of raising.
        assert sorted(router.hotness.advance_time(30)) == sorted(
            [live.path_id, orphan.path_id]
        )
        assert router.hotness.pending_events == 0

    def test_orphan_expiry_survives_a_budgeted_shrink_handoff(self):
        """Same regression through the *incremental* path: the handoff of a
        budgeted shrink re-homes orphans with the same clamped fallback."""
        router = make_router(4, window=10, elastic="auto", migration_budget=2)
        rng = random.Random(41)
        for _ in range(6):  # enough records that warming spans boundaries
            start = Point(rng.uniform(0.0, 1000.0), rng.uniform(0.0, 1000.0))
            router.insert(MotionPath(start, Point(start.x + 5.0, start.y + 5.0)))
        orphan = router.insert(MotionPath(Point(900.0, 900.0), Point(950.0, 950.0)))
        router.hotness.record_crossing(orphan.path_id, 1)
        router.index.delete(orphan.path_id)
        assert router.rebalance(UniformGridPartition(BOUNDS, 2, 1)) is True
        assert router._migration is not None  # in flight, old fleet serving
        boundaries = 0
        while router._migration is not None:
            router.maybe_rebalance()
            boundaries += 1
            assert boundaries < 50, "budgeted shrink never handed off"
        assert boundaries > 1  # the budget actually spread the migration
        assert len(router.shards) == 2
        assert sum(s.hotness.hotness(orphan.path_id) for s in router.shards) == 1
        assert router.hotness.pending_events == 1
        assert sorted(router.hotness.advance_time(30)) == [orphan.path_id]

    def test_noop_refit_is_skipped(self):
        router = make_router(4, partition="kd")
        insert_walk(router, seed=7)
        partition = router.grid
        fitted = KdSplitPartition.fit(BOUNDS, 4, router._endpoint_samples())
        if fitted.describe() == partition.describe():
            assert router.rebalance() is False
            assert router.grid is partition
            assert router.rebalances == 0
        else:
            assert router.rebalance() is True
            # A second refit from the unchanged density must now be a no-op.
            assert router.rebalance() is False

    def test_rebalance_inside_parallel_commit_is_refused(self):
        router = make_router(4)
        router.begin_parallel_commit(4)
        try:
            with pytest.raises(CoordinatorError):
                router.rebalance()
        finally:
            router.finish_parallel_commit()

    def test_rebalance_keeps_the_shard_count(self):
        router = make_router(4)
        with pytest.raises(ConfigurationError):
            router.rebalance(KdSplitPartition.fit(BOUNDS, 8))

    def test_mismatched_partition_bounds_rejected(self):
        other = Rectangle(Point(0.0, 0.0), Point(500.0, 500.0))
        with pytest.raises(ConfigurationError):
            make_router(4, partition=UniformGridPartition(other, 2, 2))
        router = make_router(4)
        with pytest.raises(ConfigurationError):
            router.rebalance(KdSplitPartition.fit(other, 4))

    def test_maybe_rebalance_only_fires_on_skewed_kd_fleets(self):
        uniform = make_router(4)
        insert_walk(uniform, seed=11)
        assert uniform.maybe_rebalance() is False  # uniform never auto-rebalances
        # ... not even after a manual migration put kd splits in place: the
        # configured layout, not the active partition, opts into auto mode.
        uniform.rebalance()
        assert uniform.grid.kind == "kd"
        assert uniform.maybe_rebalance() is False

        kd = make_router(4, partition="kd", rebalance_threshold=1.1)
        assert kd.maybe_rebalance() is False  # empty fleet: nothing to balance
        rng = random.Random(13)
        for _ in range(40):  # skewed: everything downtown
            start = Point(rng.uniform(0.0, 120.0), rng.uniform(0.0, 120.0))
            end = Point(rng.uniform(0.0, 120.0), rng.uniform(0.0, 120.0))
            if start != end:
                kd.insert(MotionPath(start, end))
        before = kd.shard_statistics()["imbalance"]
        assert before > 1.1
        assert kd.maybe_rebalance() is True
        after = kd.shard_statistics()["imbalance"]
        assert after < before

    def test_noop_refits_back_off_exponentially(self, monkeypatch):
        """A point mass keeps imbalance above any threshold but can never be
        split further: after the first rejected refit, subsequent epoch
        boundaries must skip the O(records log records) fit with an
        exponentially growing backoff instead of refitting every time."""
        router = make_router(4, partition="kd", rebalance_threshold=1.1)
        for _ in range(20):  # unsplittable: identical start vertices
            router.insert(MotionPath(Point(400.0, 400.0), Point(410.0, 410.0)))
        fits = []
        original_fit = KdSplitPartition.fit.__func__

        def counting_fit(cls, bounds, num_shards, points=()):
            fits.append(len(points))
            return original_fit(cls, bounds, num_shards, points)

        monkeypatch.setattr(KdSplitPartition, "fit", classmethod(counting_fit))
        assert router.shard_statistics()["imbalance"] > 1.1
        outcomes = [router.maybe_rebalance() for _ in range(16)]
        # The first boundary may genuinely migrate (density fit != the fresh
        # midpoint layout); every later refit reproduces the active splits.
        assert not any(outcomes[1:])
        assert router.rebalances <= 1
        # Backoff 1, 2, 4, 8 after each rejected fit: 16 boundaries see a
        # handful of fits instead of 16.
        assert 1 <= len(fits) <= 6

    def test_manual_rebalance_refreshes_the_corridor_cache(self):
        """In 'off' stitching mode corridors truncate at shard boundaries,
        and a migration moves the boundaries — a corridor report cached
        before a manual rebalance() must not be served afterwards."""
        coordinator = Coordinator(
            CoordinatorConfig(
                bounds=BOUNDS,
                window=10**6,
                cells_per_axis=32,
                num_shards=4,
                partition="kd",
                stitching="off",
            )
        )
        router = coordinator.router
        rng = random.Random(31)
        point = Point(rng.uniform(0.0, 1000.0), rng.uniform(0.0, 1000.0))
        for _step in range(30):  # one long chain crossing many boundaries
            target = Point(
                min(max(point.x + rng.uniform(-250.0, 250.0), 0.0), 1000.0),
                min(max(point.y + rng.uniform(-250.0, 250.0), 0.0), 1000.0),
            )
            if target == point:
                continue
            record = router.insert(MotionPath(point, target))
            router.hotness.record_crossing(record.path_id, 0)
            point = target
        before = coordinator.hot_corridors()
        assert coordinator.hot_corridors() is before  # cached
        assert router.rebalance(
            KdSplitPartition.fit(BOUNDS, 4, router._endpoint_samples())
        )
        after = coordinator.hot_corridors()
        assert after is not before  # cache refreshed against the new boundaries
        # Same hot set, so the truncation bookkeeping must still add up.
        assert sorted(
            path_id for corridor in after for path_id in corridor.path_ids
        ) == sorted(path_id for corridor in before for path_id in corridor.path_ids)
        coordinator.close()

    def test_coordinator_config_validates_partition_knobs(self):
        with pytest.raises(ConfigurationError):
            CoordinatorConfig(bounds=BOUNDS, partition="voronoi")
        with pytest.raises(ConfigurationError):
            CoordinatorConfig(bounds=BOUNDS, partition="kd", rebalance_threshold=1.0)

    def test_single_shard_statistics_report_partition_fields(self):
        coordinator = Coordinator(CoordinatorConfig(bounds=BOUNDS))
        stats = coordinator.shard_statistics()
        assert stats["imbalance"] == 1.0
        assert stats["rebalances"] == 0


class TestSingleShardDeltaStatistics:
    """Satellite regression: the single-shard ``shard_statistics`` fallback
    must reconcile the delta counters with the sharded path.

    A single-shard coordinator runs its one overlap pool per epoch through
    the same :class:`~repro.coordinator.overlaps.OverlapPoolCache`
    resolve/store protocol a fleet uses, so its ``pools_*`` counters must
    equal a 1-shard fleet's over the same stream — previously they were
    hardcoded zeros (and ``total_records`` leaked out as a float).
    """

    @staticmethod
    def _stream() -> List[Tuple[int, List[ObjectState]]]:
        def state(object_id: int, x: float, y: float, t_end: int) -> ObjectState:
            return ObjectState(
                object_id,
                Point(x, y),
                t_end - 5,
                Point(x - 40.0, y - 40.0),
                Point(x + 40.0, y + 40.0),
                t_end,
            )

        first = [state(1, 200.0, 200.0, 10), state(2, 230.0, 230.0, 10)]
        # Epoch 2 repeats epoch 1's FSA pool verbatim (cache hit); epoch 3
        # extends it with one more reporter (prefix hit); epoch 4 is new.
        second = [state(1, 200.0, 200.0, 20), state(2, 230.0, 230.0, 20)]
        third = second + [state(3, 215.0, 215.0, 20)]
        fourth = [state(4, 700.0, 700.0, 30)]
        return [(10, first), (20, second), (30, [s for s in third]), (40, fourth)]

    def test_counters_match_a_one_shard_fleet(self):
        coordinator = Coordinator(
            CoordinatorConfig(
                bounds=BOUNDS, window=60, cells_per_axis=32, epoch_mode="delta"
            )
        )
        fleet = ShardRouter(BOUNDS, 60, 32, 1)
        for boundary, states in self._stream():
            for state in states:
                coordinator.submit_state(state)
            coordinator.run_epoch(boundary)
            for path_id in fleet.hotness.advance_time(boundary):
                if path_id in fleet.index:
                    fleet.index.delete(path_id)
            fleet.pipeline.process_epoch(states)

        single = coordinator.shard_statistics()
        sharded = fleet.shard_statistics()
        for key in (
            "pools_total",
            "pools_reused",
            "pools_prefix_reused",
            "pools_rebuilt",
        ):
            assert single[key] == sharded[key], key
            assert isinstance(single[key], int), key
        # The stream above must actually exercise all three outcomes — a
        # counter stuck at zero would satisfy equality vacuously.
        assert single["pools_total"] == 4
        assert single["pools_reused"] >= 1
        assert single["pools_prefix_reused"] >= 1
        assert single["pools_rebuilt"] >= 1
        assert (
            single["pools_total"]
            == single["pools_reused"]
            + single["pools_prefix_reused"]
            + single["pools_rebuilt"]
        )

    def test_fallback_schema_types_match_the_sharded_path(self):
        coordinator = Coordinator(
            CoordinatorConfig(
                bounds=BOUNDS, window=60, cells_per_axis=32, epoch_mode="delta"
            )
        )
        for boundary, states in self._stream():
            for state in states:
                coordinator.submit_state(state)
            coordinator.run_epoch(boundary)
        stats = coordinator.shard_statistics()
        for key in ("num_shards", "total_records", "max_shard_records", "min_shard_records"):
            assert isinstance(stats[key], int), key
        assert isinstance(stats["mean_shard_records"], float)
        assert stats["total_records"] == len(coordinator.index)
        assert stats["mean_shard_records"] == float(len(coordinator.index))

    def test_full_mode_single_shard_reports_zero_pool_counters(self):
        coordinator = Coordinator(
            CoordinatorConfig(
                bounds=BOUNDS, window=60, cells_per_axis=32, epoch_mode="full"
            )
        )
        for boundary, states in self._stream():
            for state in states:
                coordinator.submit_state(state)
            coordinator.run_epoch(boundary)
        stats = coordinator.shard_statistics()
        assert stats["pools_total"] == 0
        assert stats["pools_reused"] == 0


class TestShardStatistics:
    """Satellite audit: straddling paths are counted once, renumbering-safe."""

    def test_straddling_paths_are_not_double_counted(self):
        router = make_router(4)
        # Three straddling paths (across the 2x2 borders), two local ones.
        straddling = [
            MotionPath(Point(100.0, 100.0), Point(900.0, 100.0)),
            MotionPath(Point(100.0, 900.0), Point(900.0, 900.0)),
            MotionPath(Point(100.0, 100.0), Point(900.0, 900.0)),
        ]
        local = [
            MotionPath(Point(50.0, 50.0), Point(150.0, 150.0)),
            MotionPath(Point(850.0, 850.0), Point(950.0, 950.0)),
        ]
        for path in straddling + local:
            router.insert(path)
        stats = router.shard_statistics()
        # Every path contributes exactly one record to exactly one shard,
        # even though the end owner of a straddler also indexes an entry.
        assert stats["total_records"] == 5
        assert sum(len(shard.index) for shard in router.shards) == 5
        assert stats["straddling_paths"] == 3
        assert len(live_straddling(router)) == 3
        # Both endpoint shards see a straddler through the ledger view —
        # the sum over per-shard views is 2x the ledger, never the stats.
        views = sum(len(router.boundary_ledger_of(s.shard_id)) for s in router.shards)
        assert views == 2 * stats["straddling_paths"]

    def test_counts_survive_parallel_commit_renumbering(self):
        """Straddling inserts committed under provisional ids must leave the
        statistics and the ledger keyed by the *final* ids."""
        router = make_router(4)
        pre = router.insert(MotionPath(Point(60.0, 60.0), Point(70.0, 70.0)))
        router.begin_parallel_commit(3)
        try:
            for position, (start, end) in enumerate(
                [
                    (Point(100.0, 100.0), Point(900.0, 100.0)),  # straddles
                    (Point(200.0, 200.0), Point(210.0, 210.0)),  # local
                    (Point(100.0, 900.0), Point(900.0, 900.0)),  # straddles
                ]
            ):
                router.set_commit_position(position)
                router.insert(MotionPath(start, end))
            router.set_commit_position(None)
        finally:
            mapping = router.finish_parallel_commit()
        assert len(mapping) == 3
        stats = router.shard_statistics()
        assert stats["total_records"] == 4
        assert stats["straddling_paths"] == 2
        # Final ids are the serial allocation: contiguous after the pre-path.
        assert sorted(router.owners) == [pre.path_id, 1, 2, 3]
        assert ledger_paths(router) == live_straddling(router)
        # Deleting through the final ids fully drains the ledger.
        for path_id in list(router.owners):
            router.delete(path_id)
        assert router.boundary_ledger == {}
        assert router.shard_statistics()["straddling_paths"] == 0

    def test_imbalance_signal_reflects_skew(self):
        router = make_router(4)
        rng = random.Random(3)
        for _ in range(30):
            start = Point(rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0))
            end = Point(start.x + 5.0, start.y + 5.0)
            router.insert(MotionPath(start, end))
        stats = router.shard_statistics()
        assert stats["imbalance"] == pytest.approx(4.0)  # all load on one of 4 shards
        empty = make_router(4)
        assert empty.shard_statistics()["imbalance"] == 1.0


class TestLedgerDrain:
    """Satellite leak regression: expiry must drain straddling ledger entries."""

    @staticmethod
    def feedback_stream(seed: int, epochs: int, per_epoch: int = 16):
        """States whose FSAs hop across the 2x2/4x4 borders so the decided
        paths straddle often; objects re-report from fresh spots, so old
        paths go cold and expire as the window slides."""
        rng = random.Random(seed)
        stream = []
        for epoch in range(1, epochs + 1):
            boundary = epoch * 10
            states = []
            for _ in range(per_epoch):
                start = Point(rng.uniform(0.0, 1000.0), rng.uniform(0.0, 1000.0))
                centre = Point(
                    start.x + rng.uniform(-260.0, 260.0),
                    start.y + rng.uniform(-260.0, 260.0),
                )
                fsa = Rectangle.from_center(centre, rng.uniform(10.0, 120.0))
                t_end = boundary - rng.randrange(10)
                states.append(
                    ObjectState(
                        rng.randrange(per_epoch * 2),
                        start,
                        max(0, t_end - 5),
                        fsa.low,
                        fsa.high,
                        t_end,
                    )
                )
            stream.append((boundary, states))
        return stream

    @pytest.mark.parametrize("partition", ["uniform", "kd"])
    def test_no_ledger_leak_over_long_replays(self, partition):
        """After every epoch of a long windowed replay, the ledger holds
        exactly the live straddling paths — an expired straddler must never
        linger (leaks inflate imbalance statistics and stitch work)."""
        coordinator = Coordinator(
            CoordinatorConfig(
                bounds=BOUNDS,
                window=30,
                cells_per_axis=32,
                num_shards=4,
                partition=partition,
                rebalance_threshold=1.2,
            )
        )
        router = coordinator.router
        expired_total = 0
        saw_straddling = False
        for boundary, states in self.feedback_stream(seed=19, epochs=25):
            for state in states:
                coordinator.submit_state(state)
            outcome = coordinator.run_epoch(boundary)
            expired_total += outcome.paths_expired
            assert ledger_paths(router) == live_straddling(router), (
                f"ledger leaked at epoch boundary {boundary}"
            )
            saw_straddling = saw_straddling or bool(ledger_paths(router))
        assert expired_total > 0, "window never slid — the regression is vacuous"
        assert saw_straddling, "no straddling path ever existed — vacuous"
        coordinator.close()

    def test_everything_expired_means_empty_ledger(self):
        """Once the stream stops and the window passes, the ledger is empty."""
        coordinator = Coordinator(
            CoordinatorConfig(bounds=BOUNDS, window=20, cells_per_axis=32, num_shards=4)
        )
        for boundary, states in self.feedback_stream(seed=23, epochs=5):
            for state in states:
                coordinator.submit_state(state)
            coordinator.run_epoch(boundary)
        coordinator.run_epoch(10_000)  # slide the window past everything
        assert coordinator.router.boundary_ledger == {}
        assert coordinator.router.shard_statistics()["straddling_paths"] == 0
        assert coordinator.index_size() == 0
        coordinator.close()

    def test_ledger_drains_across_a_forced_rebalance(self):
        """Expiry after a migration drains entries keyed under the *new*
        partition's ownership pairs."""
        coordinator = Coordinator(
            CoordinatorConfig(
                bounds=BOUNDS, window=30, cells_per_axis=32, num_shards=4, partition="kd"
            )
        )
        router = coordinator.router
        stream = self.feedback_stream(seed=29, epochs=12)
        for index, (boundary, states) in enumerate(stream):
            for state in states:
                coordinator.submit_state(state)
            coordinator.run_epoch(boundary)
            if index == 5:
                router.rebalance(
                    KdSplitPartition.fit(BOUNDS, 4, router._endpoint_samples())
                )
            assert ledger_paths(router) == live_straddling(router)
        coordinator.run_epoch(10_000)
        assert router.boundary_ledger == {}
        coordinator.close()
