"""Unit tests for :mod:`repro.experiments.report`."""

from __future__ import annotations

import csv
import io

import pytest

from repro.experiments.ablations import CommunicationAblationRow, GridResolutionAblationRow
from repro.experiments.report import (
    ablation_rows_to_csv,
    sweep_rows_to_csv,
    write_experiment_bundle,
    write_sweep_csv,
)
from repro.experiments.sweeps import SweepRow


def sweep_row(value: float) -> SweepRow:
    return SweepRow(
        parameter_name="num_objects",
        parameter_value=value,
        scaled_num_objects=int(value * 0.02),
        index_size=100.0 + value / 1000.0,
        dp_index_size=120.0,
        top_k_score=55.5,
        dp_top_k_score=44.4,
        processing_seconds=0.01,
        uplink_messages=500,
        naive_messages=5000,
    )


class TestSweepCsv:
    def test_header_and_rows(self):
        text = sweep_rows_to_csv([sweep_row(10000), sweep_row(20000)])
        rows = list(csv.DictReader(io.StringIO(text)))
        assert len(rows) == 2
        assert rows[0]["parameter_name"] == "num_objects"
        assert float(rows[1]["parameter_value"]) == 20000.0

    def test_empty_rows_only_header(self):
        text = sweep_rows_to_csv([])
        lines = [line for line in text.splitlines() if line]
        assert len(lines) == 1

    def test_write_sweep_csv(self, tmp_path):
        path = write_sweep_csv([sweep_row(10000)], tmp_path / "sweep.csv")
        assert path.exists()
        assert "num_objects" in path.read_text()


class TestAblationCsv:
    def test_communication_rows(self):
        rows = [
            CommunicationAblationRow(2.0, 100, 3600, 1000, 16000, 0.9),
            CommunicationAblationRow(10.0, 50, 1800, 1000, 16000, 0.95),
        ]
        text = ablation_rows_to_csv(rows)
        parsed = list(csv.DictReader(io.StringIO(text)))
        assert len(parsed) == 2
        assert float(parsed[0]["tolerance"]) == 2.0
        assert float(parsed[1]["reduction"]) == 0.95

    def test_grid_rows(self):
        rows = [GridResolutionAblationRow(16, 0.01, 100.0, 50.0)]
        text = ablation_rows_to_csv(rows)
        parsed = list(csv.DictReader(io.StringIO(text)))
        assert parsed[0]["cells_per_axis"] == "16"

    def test_empty(self):
        assert ablation_rows_to_csv([]) == ""


class TestBundle:
    def test_bundle_writes_requested_files(self, tmp_path):
        written = write_experiment_bundle(
            tmp_path / "bundle",
            figure7_rows=[sweep_row(10000)],
            figure8_rows=[sweep_row(20000)],
            ablations={"communication": [CommunicationAblationRow(2.0, 1, 2, 3, 4, 0.5)]},
        )
        names = sorted(path.name for path in written)
        assert names == ["ablation_communication.csv", "figure7.csv", "figure8.csv"]
        for path in written:
            assert path.exists()

    def test_bundle_skips_empty_inputs(self, tmp_path):
        written = write_experiment_bundle(tmp_path / "bundle", ablations={"empty": []})
        assert written == []
