"""Unit tests for the workload generator, noise models and scenarios."""

from __future__ import annotations

import random

import pytest

from repro.core.errors import ConfigurationError
from repro.core.geometry import Point
from repro.core.trajectory import TimePoint, UncertainTimePoint
from repro.network.road_network import RoadNetwork
from repro.workload.moving_objects import MovingObjectWorkload, WorkloadConfig
from repro.workload.noise import GaussianNoiseModel, NoNoiseModel, UniformNoiseModel
from repro.workload.scenarios import (
    converging_event_trajectories,
    evacuation_trajectories,
    linear_corridor_trajectories,
)


class TestNoiseModels:
    def test_no_noise_is_identity(self):
        rng = random.Random(0)
        point = Point(1.0, 2.0)
        assert NoNoiseModel().perturb(point, rng) == point
        assert NoNoiseModel().reported_sigma() == (0.0, 0.0)

    def test_uniform_noise_bounded(self):
        rng = random.Random(0)
        model = UniformNoiseModel(err=2.0)
        point = Point(10.0, 10.0)
        for _ in range(200):
            noisy = model.perturb(point, rng)
            assert abs(noisy.x - 10.0) <= 2.0
            assert abs(noisy.y - 10.0) <= 2.0

    def test_uniform_noise_zero_err_is_identity(self):
        rng = random.Random(0)
        assert UniformNoiseModel(err=0.0).perturb(Point(1.0, 1.0), rng) == Point(1.0, 1.0)

    def test_uniform_noise_negative_err_rejected(self):
        with pytest.raises(ConfigurationError):
            UniformNoiseModel(err=-1.0)

    def test_uniform_reported_sigma(self):
        sigma_x, sigma_y = UniformNoiseModel(err=3.0).reported_sigma()
        assert sigma_x == pytest.approx(3.0 / (3.0 ** 0.5))
        assert sigma_x == sigma_y

    def test_gaussian_noise_perturbs(self):
        rng = random.Random(0)
        model = GaussianNoiseModel(sigma_x=1.0, sigma_y=1.0)
        noisy = model.perturb(Point(0.0, 0.0), rng)
        assert noisy != Point(0.0, 0.0)

    def test_gaussian_zero_sigma_axis_unchanged(self):
        rng = random.Random(0)
        model = GaussianNoiseModel(sigma_x=0.0, sigma_y=1.0)
        noisy = model.perturb(Point(5.0, 5.0), rng)
        assert noisy.x == 5.0

    def test_gaussian_negative_sigma_rejected(self):
        with pytest.raises(ConfigurationError):
            GaussianNoiseModel(sigma_x=-1.0, sigma_y=0.0)


class TestWorkloadConfig:
    def test_invalid_values_rejected(self):
        with pytest.raises(ConfigurationError):
            WorkloadConfig(num_objects=0)
        with pytest.raises(ConfigurationError):
            WorkloadConfig(agility=0.0)
        with pytest.raises(ConfigurationError):
            WorkloadConfig(agility=1.5)
        with pytest.raises(ConfigurationError):
            WorkloadConfig(displacement=0.0)
        with pytest.raises(ConfigurationError):
            WorkloadConfig(positional_error=-1.0)
        with pytest.raises(ConfigurationError):
            WorkloadConfig(duration=0)


class TestMovingObjectWorkload:
    def _workload(self, small_network, **overrides) -> MovingObjectWorkload:
        defaults = dict(num_objects=30, agility=0.5, duration=40, seed=9)
        defaults.update(overrides)
        return MovingObjectWorkload(small_network, WorkloadConfig(**defaults))

    def test_empty_network_rejected(self):
        with pytest.raises(ConfigurationError):
            MovingObjectWorkload(RoadNetwork(), WorkloadConfig(num_objects=5))

    def test_initial_measurements_cover_all_objects(self, small_network):
        workload = self._workload(small_network)
        initial = workload.initial_measurements(0)
        assert len(initial) == 30
        assert {object_id for object_id, _ in initial} == set(range(30))
        assert all(measurement.timestamp == 0 for _, measurement in initial)

    def test_objects_start_on_network_nodes(self, small_network):
        workload = self._workload(small_network, num_objects=10)
        node_locations = {node.location for node in small_network.nodes()}
        for object_id in range(10):
            assert workload.object_state(object_id).position in node_locations

    def test_step_respects_agility(self, small_network):
        moving = self._workload(small_network, num_objects=200, agility=0.1)
        measurements = moving.step(1)
        # With agility 0.1 roughly 20 of 200 objects move; allow generous slack.
        assert 2 <= len(measurements) <= 60

    def test_full_agility_moves_everyone(self, small_network):
        workload = self._workload(small_network, num_objects=25, agility=1.0)
        assert len(workload.step(1)) == 25

    def test_displacement_bounds_step_distance(self, small_network):
        workload = self._workload(
            small_network, num_objects=20, agility=1.0, displacement=10.0, positional_error=0.0
        )
        workload.initial_measurements(0)
        before = {oid: workload.object_state(oid).position for oid in range(20)}
        workload.step(1)
        for object_id in range(20):
            after = workload.object_state(object_id).position
            assert before[object_id].euclidean_distance_to(after) <= 10.0 + 1e-6

    def test_measurement_noise_bounded_by_err(self, small_network):
        workload = self._workload(
            small_network, num_objects=20, agility=1.0, positional_error=2.0
        )
        workload.initial_measurements(0)
        for object_id, measurement in workload.step(1):
            true_position = workload.object_state(object_id).position
            assert abs(measurement.point.x - true_position.x) <= 2.0
            assert abs(measurement.point.y - true_position.y) <= 2.0

    def test_uncertain_measurements_carry_sigma(self, small_network):
        workload = self._workload(small_network, num_objects=5, report_uncertainty=True)
        initial = workload.initial_measurements(0)
        assert all(isinstance(m, UncertainTimePoint) for _, m in initial)
        assert all(m.sigma_x > 0 for _, m in initial)

    def test_true_trajectories_recorded(self, small_network):
        workload = self._workload(small_network, num_objects=5, agility=1.0)
        for timestamp, _ in workload.run():
            pass
        trajectory = workload.true_trajectory(0)
        assert len(trajectory) == 40
        assert trajectory.start_time == 0
        assert trajectory.end_time == 39

    def test_unknown_object_rejected(self, small_network):
        workload = self._workload(small_network, num_objects=5)
        with pytest.raises(ConfigurationError):
            workload.true_trajectory(99)
        with pytest.raises(ConfigurationError):
            workload.object_state(99)

    def test_run_yields_duration_batches(self, small_network):
        workload = self._workload(small_network, num_objects=5, duration=25)
        batches = list(workload.run())
        assert len(batches) == 25
        assert batches[0][0] == 0
        assert batches[-1][0] == 24

    def test_determinism(self, small_network):
        first = self._workload(small_network, num_objects=10, seed=4)
        second = self._workload(small_network, num_objects=10, seed=4)
        batch_1 = first.step(1)
        batch_2 = second.step(1)
        assert [(oid, m.point, m.timestamp) for oid, m in batch_1] == [
            (oid, m.point, m.timestamp) for oid, m in batch_2
        ]

    def test_objects_follow_network_links(self, small_network):
        """Noise-free measurements must lie on (or at) a network link."""
        workload = self._workload(
            small_network, num_objects=10, agility=1.0, positional_error=0.0
        )
        workload.initial_measurements(0)
        for _ in range(1, 10):
            workload.step(_)
        for object_id in range(10):
            position = workload.object_state(object_id).position
            on_network = False
            for link in small_network.links():
                start = small_network.node(link.source).location
                end = small_network.node(link.target).location
                # Distance from the point to the segment.
                from repro.baselines.douglas_peucker import perpendicular_distance

                if perpendicular_distance(position, start, end) < 1e-6:
                    on_network = True
                    break
            assert on_network


class TestScenarios:
    def test_linear_corridor_shapes(self):
        trajectories = linear_corridor_trajectories(num_objects=4, duration=20)
        assert len(trajectories) == 4
        for trajectory in trajectories.values():
            assert len(trajectory) == 20

    def test_linear_corridor_objects_stay_close_to_axis(self):
        trajectories = linear_corridor_trajectories(
            num_objects=6, lateral_spread=2.0, heading_degrees=0.0
        )
        for trajectory in trajectories.values():
            assert all(abs(tp.y) <= 2.0 for tp in trajectory)

    def test_linear_corridor_stagger(self):
        trajectories = linear_corridor_trajectories(num_objects=3, duration=10, start_stagger=5)
        assert trajectories[0].start_time == 0
        assert trajectories[1].start_time == 5
        assert trajectories[2].start_time == 10

    def test_linear_corridor_invalid_args(self):
        with pytest.raises(ConfigurationError):
            linear_corridor_trajectories(num_objects=0)
        with pytest.raises(ConfigurationError):
            linear_corridor_trajectories(duration=1)

    def test_converging_event_ends_near_venue(self):
        venue = Point(100.0, 100.0)
        trajectories = converging_event_trajectories(num_objects=8, venue=venue, duration=30)
        for trajectory in trajectories.values():
            final = trajectory[len(trajectory) - 1].point
            assert final.euclidean_distance_to(venue) < 1.0

    def test_converging_event_invalid_args(self):
        with pytest.raises(ConfigurationError):
            converging_event_trajectories(num_objects=0)

    def test_evacuation_moves_away_from_danger(self):
        danger = Point(0.0, 0.0)
        trajectories = evacuation_trajectories(num_objects=6, danger_zone=danger, duration=30)
        for trajectory in trajectories.values():
            start_distance = trajectory[0].point.euclidean_distance_to(danger)
            end_distance = trajectory[len(trajectory) - 1].point.euclidean_distance_to(danger)
            assert end_distance > start_distance

    def test_evacuation_routes_shared(self):
        trajectories = evacuation_trajectories(num_objects=20, num_escape_routes=2, duration=30)
        final_points = [t[len(t) - 1].point for t in trajectories.values()]
        distinct = {(round(p.x, 3), round(p.y, 3)) for p in final_points}
        assert len(distinct) <= 2

    def test_evacuation_invalid_args(self):
        with pytest.raises(ConfigurationError):
            evacuation_trajectories(num_objects=0)
        with pytest.raises(ConfigurationError):
            evacuation_trajectories(duration=1)
