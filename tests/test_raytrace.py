"""Unit tests for :mod:`repro.client.raytrace` and :mod:`repro.client.state`."""

from __future__ import annotations

import pytest

from repro.core.errors import ConfigurationError, CoordinatorError
from repro.core.geometry import Point, Rectangle
from repro.core.trajectory import TimePoint, UncertainTimePoint
from repro.client.raytrace import RayTraceConfig, RayTraceFilter
from repro.client.state import CoordinatorResponse, ObjectState


def make_filter(epsilon: float = 1.0, start: Point = Point(0.0, 0.0), t0: int = 0) -> RayTraceFilter:
    return RayTraceFilter(7, TimePoint(start, t0), RayTraceConfig(epsilon))


class TestRayTraceConfig:
    def test_invalid_epsilon(self):
        with pytest.raises(ConfigurationError):
            RayTraceConfig(epsilon=0.0)

    def test_invalid_delta(self):
        with pytest.raises(ConfigurationError):
            RayTraceConfig(epsilon=1.0, delta=1.5)


class TestObjectState:
    def test_fsa_and_duration(self):
        state = ObjectState(1, Point(0.0, 0.0), 0, Point(1.0, 1.0), Point(3.0, 3.0), 10)
        assert state.fsa == Rectangle(Point(1.0, 1.0), Point(3.0, 3.0))
        assert state.duration == 10

    def test_message_size_is_fixed(self):
        state = ObjectState(1, Point(0.0, 0.0), 0, Point(1.0, 1.0), Point(3.0, 3.0), 10)
        assert state.message_size_bytes() == 36

    def test_as_tuple_roundtrip(self):
        state = ObjectState(2, Point(1.0, 2.0), 3, Point(4.0, 5.0), Point(6.0, 7.0), 8)
        assert state.as_tuple() == (2, 1.0, 2.0, 3, 4.0, 5.0, 6.0, 7.0, 8)

    def test_response_message_size(self):
        response = CoordinatorResponse(1, Point(0.0, 0.0), 5)
        assert response.message_size_bytes() == 16


class TestInitialState:
    def test_initial_ssa_is_degenerate(self):
        filt = make_filter()
        assert filt.ssa_start == TimePoint(Point(0.0, 0.0), 0)
        assert filt.fsa.is_degenerate()
        assert not filt.waiting

    def test_first_measurement_sets_fsa_to_tolerance_square(self):
        filt = make_filter(epsilon=2.0)
        assert filt.observe(TimePoint(Point(1.0, 0.0), 1)) is None
        assert filt.fsa == Rectangle(Point(-1.0, -2.0), Point(3.0, 2.0))
        assert filt.fsa_timestamp == 1


class TestSsaGrowth:
    def test_straight_motion_never_reports(self):
        """An object moving in a straight line at constant speed stays inside the SSA."""
        filt = make_filter(epsilon=1.0)
        for t in range(1, 50):
            emitted = filt.observe(TimePoint(Point(float(t), 0.0), t))
            assert emitted is None
        assert filt.statistics.states_sent == 0
        assert filt.statistics.suppression_ratio == 1.0

    def test_fsa_shrinks_monotonically_in_relative_terms(self):
        """Each intersection can only keep or reduce the projected extent."""
        filt = make_filter(epsilon=1.0)
        filt.observe(TimePoint(Point(1.0, 0.0), 1))
        area_after_first = filt.fsa.area
        filt.observe(TimePoint(Point(2.0, 0.3), 2))
        # The FSA at t=2 is the intersection of the projected SSA (which grows
        # to roughly double the size) with the new tolerance square; it can
        # never exceed the tolerance square's area.
        assert filt.fsa.area <= 4.0 + 1e-9
        assert area_after_first == pytest.approx(4.0)

    def test_sharp_turn_triggers_state(self):
        filt = make_filter(epsilon=1.0)
        filt.observe(TimePoint(Point(1.0, 0.0), 1))
        filt.observe(TimePoint(Point(2.0, 0.0), 2))
        emitted = filt.observe(TimePoint(Point(2.0, 10.0), 3))
        assert emitted is not None
        assert filt.waiting
        assert emitted.object_id == 7
        assert emitted.t_start == 0
        assert emitted.t_end == 2

    def test_state_reports_last_valid_fsa(self):
        filt = make_filter(epsilon=1.0)
        filt.observe(TimePoint(Point(1.0, 0.0), 1))
        fsa_before = filt.fsa
        emitted = filt.observe(TimePoint(Point(50.0, 50.0), 2))
        assert emitted is not None
        assert emitted.fsa == fsa_before

    def test_statistics_track_messages(self):
        filt = make_filter(epsilon=1.0)
        filt.observe(TimePoint(Point(1.0, 0.0), 1))
        filt.observe(TimePoint(Point(100.0, 0.0), 2))
        stats = filt.statistics
        assert stats.measurements_processed == 2
        assert stats.states_sent == 1
        assert stats.suppression_ratio == pytest.approx(0.5)


class TestWaitingMode:
    def _filter_in_waiting(self) -> RayTraceFilter:
        filt = make_filter(epsilon=1.0)
        filt.observe(TimePoint(Point(1.0, 0.0), 1))
        emitted = filt.observe(TimePoint(Point(100.0, 0.0), 2))
        assert emitted is not None
        return filt

    def test_measurements_buffered_while_waiting(self):
        filt = self._filter_in_waiting()
        assert filt.observe(TimePoint(Point(101.0, 0.0), 3)) is None
        assert filt.observe(TimePoint(Point(102.0, 0.0), 4)) is None
        # Buffer holds the violating measurement plus the two new ones.
        assert filt.buffered_measurements == 3

    def test_response_resets_ssa_and_replays_buffer(self):
        filt = self._filter_in_waiting()
        filt.observe(TimePoint(Point(101.0, 0.0), 3))
        response = CoordinatorResponse(7, Point(99.0, 0.0), 2)
        emitted = filt.receive_response(response)
        assert emitted is None
        assert not filt.waiting
        assert filt.ssa_start.timestamp >= 2
        assert filt.buffered_measurements == 0

    def test_response_replay_can_trigger_new_state(self):
        filt = self._filter_in_waiting()
        # While waiting, the object jumps far from the coordinator-assigned endpoint.
        filt.observe(TimePoint(Point(100.0, 0.0), 3))
        filt.observe(TimePoint(Point(-100.0, 0.0), 4))
        response = CoordinatorResponse(7, Point(1.0, 0.0), 2)
        emitted = filt.receive_response(response)
        assert emitted is not None
        assert filt.waiting

    def test_response_while_not_waiting_rejected(self):
        filt = make_filter()
        with pytest.raises(CoordinatorError):
            filt.receive_response(CoordinatorResponse(7, Point(0.0, 0.0), 0))

    def test_response_for_wrong_object_rejected(self):
        filt = self._filter_in_waiting()
        with pytest.raises(CoordinatorError):
            filt.receive_response(CoordinatorResponse(8, Point(0.0, 0.0), 2))

    def test_covering_set_chaining(self):
        """The next SSA starts exactly at the endpoint assigned by the coordinator."""
        filt = self._filter_in_waiting()
        endpoint = Point(42.0, 24.0)
        filt.receive_response(CoordinatorResponse(7, endpoint, 2))
        assert filt.ssa_start.point == endpoint
        assert filt.ssa_start.timestamp == 2


class TestMotionPathGuarantee:
    def test_reported_state_admits_a_fitting_motion_path(self):
        """Any endpoint inside the reported FSA yields a motion path that fits the data.

        This is the core invariant of RayTrace: the SSA is constructed so that
        the segment from the start point to any point of the FSA, travelled
        uniformly over [t_start, t_end], stays within epsilon of every
        measurement processed.
        """
        epsilon = 1.5
        filt = RayTraceFilter(0, TimePoint(Point(0.0, 0.0), 0), RayTraceConfig(epsilon))
        measurements = [
            TimePoint(Point(1.0, 0.2), 1),
            TimePoint(Point(2.1, 0.4), 2),
            TimePoint(Point(3.0, 0.2), 3),
            TimePoint(Point(4.2, -0.3), 4),
        ]
        for measurement in measurements:
            assert filt.observe(measurement) is None
        state = filt.current_state()
        # Check the centre of the FSA as a representative endpoint.
        endpoint = state.fsa.center
        span = state.t_end - state.t_start
        for measurement in measurements:
            fraction = (measurement.timestamp - state.t_start) / span
            on_path = Point(
                state.start.x + fraction * (endpoint.x - state.start.x),
                state.start.y + fraction * (endpoint.y - state.start.y),
            )
            assert on_path.max_distance_to(measurement.point) <= epsilon + 1e-9


class TestUncertaintyIntegration:
    def test_uncertain_measurements_use_shrunken_squares(self):
        """With delta > 0 the tolerance squares shrink, so violations come earlier."""
        path = [
            TimePoint(Point(0.0, 0.0), 0),
            TimePoint(Point(1.0, 0.9), 1),
            TimePoint(Point(2.0, -0.9), 2),
            TimePoint(Point(3.0, 0.9), 3),
            TimePoint(Point(4.0, -0.9), 4),
            TimePoint(Point(5.0, 0.9), 5),
        ]
        plain = RayTraceFilter(0, path[0], RayTraceConfig(epsilon=1.0))
        plain_messages = sum(1 for tp in path[1:] if plain.observe(tp) is not None)

        uncertain_path = [
            UncertainTimePoint(tp.point, tp.timestamp, 0.4, 0.4) for tp in path
        ]
        noisy = RayTraceFilter(0, uncertain_path[0], RayTraceConfig(epsilon=1.0, delta=0.1))
        noisy_messages = 0
        for measurement in uncertain_path[1:]:
            if noisy.observe(measurement) is not None:
                noisy_messages += 1
                break
        assert noisy_messages >= plain_messages

    def test_mixed_measurement_types_accepted(self):
        filt = RayTraceFilter(0, TimePoint(Point(0.0, 0.0), 0), RayTraceConfig(1.0, 0.1))
        assert filt.observe(UncertainTimePoint(Point(0.5, 0.0), 1, 0.1, 0.1)) is None
        assert filt.observe(TimePoint(Point(1.0, 0.0), 2)) is None


class TestOutOfOrderMeasurements:
    def test_regressing_timestamp_rejected(self):
        filt = make_filter(epsilon=1.0)
        filt.observe(TimePoint(Point(1.0, 0.0), 5))
        with pytest.raises(CoordinatorError):
            filt.observe(TimePoint(Point(2.0, 0.0), 3))
