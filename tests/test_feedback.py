"""Tests for the coordinator-feedback extension (paper Section 7 future work)."""

from __future__ import annotations

import pytest

from repro.core.geometry import Point, Rectangle
from repro.core.motion_path import MotionPath
from repro.core.trajectory import TimePoint
from repro.client.raytrace import RayTraceConfig
from repro.client.state import CoordinatorResponse, ObjectState
from repro.coordinator.coordinator import CoordinatorConfig
from repro.extensions.feedback import (
    FeedbackCoordinator,
    FeedbackRayTraceFilter,
    FeedbackResponse,
    HotVertexHint,
)


BOUNDS = Rectangle(Point(0.0, 0.0), Point(1000.0, 1000.0))


def make_coordinator(hint_radius: float = 200.0, max_hints: int = 4) -> FeedbackCoordinator:
    return FeedbackCoordinator(
        CoordinatorConfig(bounds=BOUNDS, window=100, cells_per_axis=16),
        hint_radius=hint_radius,
        max_hints=max_hints,
    )


def state(object_id: int, start: Point, low: Point, high: Point, t_end: int = 9) -> ObjectState:
    return ObjectState(object_id, start, 0, low, high, t_end)


class TestFeedbackResponse:
    def test_message_size_grows_with_hints(self):
        base = CoordinatorResponse(1, Point(0.0, 0.0), 5)
        without = FeedbackResponse(base, ())
        with_two = FeedbackResponse(base, (HotVertexHint(Point(1.0, 1.0), 2), HotVertexHint(Point(2.0, 2.0), 1)))
        assert without.message_size_bytes() == base.message_size_bytes()
        assert with_two.message_size_bytes() == base.message_size_bytes() + 24
        assert with_two.object_id == 1


class TestFeedbackCoordinator:
    def test_hints_list_nearby_hot_vertices(self):
        coordinator = make_coordinator()
        # Seed the index with a hot path ending near where the object will be sent.
        record = coordinator.index.insert(MotionPath(Point(50.0, 50.0), Point(210.0, 210.0)))
        coordinator.hotness.record_crossing(record.path_id, 1)
        coordinator.hotness.record_crossing(record.path_id, 2)

        coordinator.submit_state(state(1, Point(100.0, 100.0), Point(190.0, 190.0), Point(230.0, 230.0)))
        _outcome, feedback = coordinator.run_epoch_with_feedback(10)

        assert len(feedback) == 1
        hints = feedback[0].hints
        assert any(hint.vertex == Point(210.0, 210.0) for hint in hints)
        assert all(hint.hotness >= 1 for hint in hints)

    def test_hints_respect_radius(self):
        coordinator = make_coordinator(hint_radius=20.0)
        far = coordinator.index.insert(MotionPath(Point(50.0, 50.0), Point(900.0, 900.0)))
        coordinator.hotness.record_crossing(far.path_id, 1)

        coordinator.submit_state(state(1, Point(100.0, 100.0), Point(150.0, 150.0), Point(170.0, 170.0)))
        _outcome, feedback = coordinator.run_epoch_with_feedback(10)
        assert all(hint.vertex != Point(900.0, 900.0) for hint in feedback[0].hints)

    def test_hints_capped_by_max_hints(self):
        coordinator = make_coordinator(max_hints=2)
        for i in range(5):
            record = coordinator.index.insert(
                MotionPath(Point(50.0, 50.0 + i), Point(200.0 + i, 200.0))
            )
            coordinator.hotness.record_crossing(record.path_id, 1)
        coordinator.submit_state(state(1, Point(100.0, 100.0), Point(190.0, 190.0), Point(230.0, 230.0)))
        _outcome, feedback = coordinator.run_epoch_with_feedback(10)
        assert len(feedback[0].hints) <= 2


class TestFeedbackFilter:
    def _waiting_filter(self) -> FeedbackRayTraceFilter:
        filt = FeedbackRayTraceFilter(7, TimePoint(Point(0.0, 0.0), 0), RayTraceConfig(1.0))
        filt.observe(TimePoint(Point(1.0, 0.0), 1))
        emitted = filt.observe(TimePoint(Point(100.0, 0.0), 2))
        assert emitted is not None
        return filt

    def test_snaps_next_report_onto_hinted_vertex(self):
        filt = self._waiting_filter()
        # Respond, advertising a hot vertex the object will pass right next to.
        hinted_vertex = Point(6.0, 0.2)
        feedback = FeedbackResponse(
            CoordinatorResponse(7, Point(1.0, 0.0), 2),
            (HotVertexHint(hinted_vertex, 5),),
        )
        assert filt.receive_feedback(feedback) is None
        # Move straight for a few steps, then turn sharply to force a report.
        for t, x in ((3, 2.0), (4, 3.0), (5, 4.0), (6, 5.0), (7, 6.0)):
            assert filt.observe(TimePoint(Point(x, 0.0), t)) is None
        emitted = filt.observe(TimePoint(Point(6.0, 50.0), 8))
        assert emitted is not None
        assert filt.snapped_reports == 1
        assert emitted.fsa_low == hinted_vertex
        assert emitted.fsa_high == hinted_vertex

    def test_no_snap_when_hint_outside_fsa(self):
        filt = self._waiting_filter()
        feedback = FeedbackResponse(
            CoordinatorResponse(7, Point(1.0, 0.0), 2),
            (HotVertexHint(Point(500.0, 500.0), 9),),
        )
        filt.receive_feedback(feedback)
        for t, x in ((3, 2.0), (4, 3.0), (5, 4.0)):
            filt.observe(TimePoint(Point(x, 0.0), t))
        emitted = filt.observe(TimePoint(Point(4.0, 50.0), 6))
        assert emitted is not None
        assert filt.snapped_reports == 0
        assert emitted.fsa_low != emitted.fsa_high

    def test_without_hints_behaves_like_base_filter(self):
        filt = FeedbackRayTraceFilter(7, TimePoint(Point(0.0, 0.0), 0), RayTraceConfig(1.0))
        filt.observe(TimePoint(Point(1.0, 0.0), 1))
        emitted = filt.observe(TimePoint(Point(100.0, 0.0), 2))
        assert emitted is not None
        assert filt.snapped_reports == 0


class TestFeedbackEndToEnd:
    def test_feedback_concentrates_hotness(self):
        """With feedback, objects that pass near an established hot vertex reuse it,
        producing at least as much path reuse as the base protocol on the same data."""
        hinted_vertex = Point(205.0, 0.0)

        def run(use_feedback: bool):
            coordinator = make_coordinator(hint_radius=300.0)
            # Pre-existing hot path ending at the hinted vertex.
            seed = coordinator.index.insert(MotionPath(Point(100.0, 0.0), hinted_vertex))
            coordinator.hotness.record_crossing(seed.path_id, 1)
            coordinator.hotness.record_crossing(seed.path_id, 2)

            endpoints = set()
            for object_id in range(3):
                filt = FeedbackRayTraceFilter(
                    object_id, TimePoint(Point(0.0, float(object_id)), 0), RayTraceConfig(5.0)
                )
                # Straight run towards x ~ 210, then a sharp turn forces a report.
                for t in range(1, 22):
                    filt.observe(TimePoint(Point(10.0 * t, float(object_id)), t))
                emitted = filt.observe(TimePoint(Point(210.0, 150.0), 22))
                assert emitted is not None
                coordinator.submit_state(emitted)
                _outcome, feedback = coordinator.run_epoch_with_feedback(25 + object_id)
                for item in feedback:
                    if item.object_id == object_id:
                        if use_feedback:
                            filt.receive_feedback(item)
                        else:
                            filt.receive_response(item.response)
                        endpoints.add((item.response.endpoint.x, item.response.endpoint.y))
            return coordinator, endpoints

        with_feedback, endpoints_fb = run(True)
        without_feedback, endpoints_base = run(False)
        # Both runs stay functional; the feedback run never produces more
        # distinct endpoints than the base run on identical input.
        assert len(endpoints_fb) <= len(endpoints_base)
        assert with_feedback.index_size() >= 1
