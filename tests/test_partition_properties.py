"""Property suite for the spatial partition layer (``coordinator/partition.py``).

The shard router's exactness contract rests on a handful of partition facts
that hold for *any* layout — uniform grid or kd split:

* the partition covers the plane: every point (inside or outside the
  monitored bounds) is owned by exactly one shard, and that shard's clipped
  cell contains the point once clamped into the bounds;
* ``shard_ids_overlapping`` never misses an owner: the shard of any point
  inside a query rectangle is in the rectangle's overlap set, and every
  returned shard's cell really intersects the (clamped) rectangle;
* ``single_shard_of`` is a sound fast path: when it names a shard, the
  overlap set is exactly that shard;
* kd fits are **total-order deterministic**: the splits are a pure function
  of the sample *set* — permuting the sample never changes the partition;
* cells tile the bounds: positive areas summing to the monitored area;
* ``ring_of`` grows monotonically from the shard itself to the full fleet;
* the elastic operations preserve all of the above: any sequence of
  ``split``/``merge`` actions keeps the plane covered and the rings sound,
  splits touch only the split cell (replica reuse depends on every other
  shard keeping its id and bounds), and a split is a pure function of the
  sample *set* — never its order.

These are hypothesis properties over random bounds, samples and shard
counts; the differential harness (`tests/test_sharding_equivalence.py`)
covers the end-to-end consequence — bit-for-bit equality with the seed
coordinator under kd partitions and mid-stream rebalances.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.core.errors import ConfigurationError
from repro.core.geometry import Point, Rectangle
from repro.coordinator.partition import (
    PARTITION_KINDS,
    KdSplitPartition,
    UniformGridPartition,
    create_partition,
    shard_layout,
)

BOUNDS = Rectangle(Point(0.0, 0.0), Point(1000.0, 1000.0))

coordinates = st.floats(min_value=-200.0, max_value=1200.0)
interior = st.floats(min_value=0.0, max_value=1000.0)
shard_counts = st.sampled_from([1, 2, 3, 4, 5, 7, 8, 12, 16])


@st.composite
def samples(draw):
    """A point sample with deliberate duplicates and boundary clusters."""
    base = draw(
        st.lists(st.tuples(interior, interior), min_size=0, max_size=60)
    )
    # A point mass stresses the degenerate-split fallback.
    mass = draw(st.integers(min_value=0, max_value=10))
    base.extend([(250.0, 250.0)] * mass)
    return base


@st.composite
def rectangles(draw):
    low_x, high_x = sorted((draw(coordinates), draw(coordinates)))
    low_y, high_y = sorted((draw(coordinates), draw(coordinates)))
    return Rectangle(Point(low_x, low_y), Point(high_x, high_y))


def clamp(point: Point, bounds: Rectangle) -> Point:
    return Point(
        min(max(point.x, bounds.low.x), bounds.high.x),
        min(max(point.y, bounds.low.y), bounds.high.y),
    )


@st.composite
def partitions(draw):
    count = draw(shard_counts)
    if draw(st.booleans()):
        rows, cols = shard_layout(count)
        return UniformGridPartition(BOUNDS, rows, cols)
    return KdSplitPartition.fit(BOUNDS, count, draw(samples()))


class TestPlaneCover:
    @given(partitions(), st.lists(st.tuples(coordinates, coordinates), min_size=1, max_size=40))
    @settings(max_examples=200, deadline=None)
    def test_every_point_has_exactly_one_owner_whose_cell_contains_it(self, partition, points):
        for x, y in points:
            shard_id = partition.shard_id_of(Point(x, y))
            assert 0 <= shard_id < partition.num_shards
            cell = partition.shard_bounds(shard_id)
            clamped = clamp(Point(x, y), partition.bounds)
            assert cell.contains_point(clamped), (
                f"shard {shard_id} cell {cell} does not contain clamped point {clamped}"
            )

    @given(partitions())
    @settings(max_examples=100, deadline=None)
    def test_cells_tile_the_bounds(self, partition):
        total_area = sum(
            partition.shard_bounds(shard_id).area
            for shard_id in range(partition.num_shards)
        )
        assert total_area == pytest.approx(partition.bounds.area, rel=1e-9)
        for shard_id in range(partition.num_shards):
            cell = partition.shard_bounds(shard_id)
            # Positive extent on both axes (what GridConfig needs to seat a
            # per-shard index); the *product* may underflow to 0.0 for
            # subnormal-sized cells, so area > 0 would be the wrong check.
            assert cell.width > 0.0 and cell.height > 0.0, (
                f"shard {shard_id} has a degenerate cell"
            )
            # The cell is the clipped footprint: centre points route home.
            assert partition.shard_id_of(cell.center) == shard_id


class TestOverlapQueries:
    @given(partitions(), rectangles(), st.data())
    @settings(max_examples=200, deadline=None)
    def test_overlap_set_contains_every_interior_owner(self, partition, region, data):
        overlapping = list(partition.shard_ids_overlapping(region))
        assert overlapping == sorted(set(overlapping))  # ascending, duplicate-free
        for _ in range(5):
            x = data.draw(st.floats(min_value=region.low.x, max_value=region.high.x))
            y = data.draw(st.floats(min_value=region.low.y, max_value=region.high.y))
            assert partition.shard_id_of(Point(x, y)) in overlapping

    @given(partitions(), rectangles())
    @settings(max_examples=200, deadline=None)
    def test_overlapping_cells_really_intersect_the_region(self, partition, region):
        clamped = Rectangle(
            clamp(region.low, partition.bounds), clamp(region.high, partition.bounds)
        )
        for shard_id in partition.shard_ids_overlapping(region):
            cell = partition.shard_bounds(shard_id)
            assert (
                cell.low.x <= clamped.high.x
                and clamped.low.x <= cell.high.x
                and cell.low.y <= clamped.high.y
                and clamped.low.y <= cell.high.y
            ), f"shard {shard_id} cell {cell} does not touch clamped region {clamped}"

    @given(partitions(), rectangles())
    @settings(max_examples=200, deadline=None)
    def test_single_shard_fast_path_matches_overlap_set(self, partition, region):
        single = partition.single_shard_of(region)
        overlapping = list(partition.shard_ids_overlapping(region))
        if single is not None:
            assert overlapping == [single]
        else:
            assert partition.num_shards > 1


class TestKdDeterminism:
    @given(st.integers(min_value=0, max_value=2**32 - 1), shard_counts, samples())
    @settings(max_examples=150, deadline=None)
    def test_fit_is_independent_of_sample_order(self, seed, count, sample):
        reference = KdSplitPartition.fit(BOUNDS, count, sample)
        shuffled = list(sample)
        random.Random(seed).shuffle(shuffled)
        assert KdSplitPartition.fit(BOUNDS, count, shuffled).describe() == reference.describe()

    @given(shard_counts, samples())
    @settings(max_examples=100, deadline=None)
    def test_fit_produces_the_requested_leaf_count(self, count, sample):
        partition = KdSplitPartition.fit(BOUNDS, count, sample)
        assert partition.num_shards == count
        assert partition.kind == "kd"

    def test_fit_splits_toward_the_density(self):
        """80% of the mass in the downtown corner: kd cells there must be
        smaller than the suburban ones, and the sample must spread evenly."""
        rng = random.Random(7)
        downtown = [(rng.uniform(0, 250), rng.uniform(0, 250)) for _ in range(800)]
        suburbs = [(rng.uniform(0, 1000), rng.uniform(0, 1000)) for _ in range(200)]
        partition = KdSplitPartition.fit(BOUNDS, 16, downtown + suburbs)
        loads = [0] * 16
        for x, y in downtown + suburbs:
            loads[partition.shard_id_of(Point(x, y))] += 1
        assert max(loads) <= 2 * (sum(loads) / len(loads))
        downtown_cell = partition.shard_bounds(partition.shard_id_of(Point(50.0, 50.0)))
        suburb_cell = partition.shard_bounds(partition.shard_id_of(Point(900.0, 900.0)))
        assert downtown_cell.area < suburb_cell.area

    def test_fit_survives_a_point_mass(self):
        """An unsplittable sample (all points identical) falls back to
        midpoint splits instead of degenerate cells."""
        partition = KdSplitPartition.fit(BOUNDS, 8, [(400.0, 400.0)] * 100)
        assert partition.num_shards == 8
        for shard_id in range(8):
            assert partition.shard_bounds(shard_id).area > 0.0

    def test_fit_rejects_bad_arguments(self):
        with pytest.raises(ConfigurationError):
            KdSplitPartition.fit(BOUNDS, 0)
        with pytest.raises(ConfigurationError):
            KdSplitPartition.fit(Rectangle(Point(0, 0), Point(0, 5)), 4)


class TestRings:
    @given(partitions(), st.integers(min_value=0, max_value=6))
    @settings(max_examples=150, deadline=None)
    def test_rings_grow_monotonically_from_self(self, partition, halo):
        for shard_id in range(partition.num_shards):
            ring = partition.ring_of(shard_id, halo)
            assert shard_id in ring
            assert ring <= set(range(partition.num_shards))
            if halo == 0:
                assert ring == {shard_id}
            else:
                assert partition.ring_of(shard_id, halo - 1) <= ring

    @given(partitions())
    @settings(max_examples=100, deadline=None)
    def test_a_wide_ring_covers_the_fleet(self, partition):
        ring = partition.ring_of(0, partition.num_shards)
        assert ring == set(range(partition.num_shards))


@st.composite
def fleet_actions(draw):
    """A partition with an arbitrary *valid* split/merge history applied.

    Splits pick any shard; merges pick any sibling pair (the only legal
    merges).  The result is whatever layout an elastic controller could
    reach, including uniform grids converted onto the kd representation by
    their first split."""
    partition = draw(partitions())
    sample = draw(samples())
    for is_split, selector in draw(
        st.lists(
            st.tuples(st.booleans(), st.integers(min_value=0, max_value=2**20)),
            max_size=8,
        )
    ):
        pairs = partition.mergeable_pairs()
        if is_split or not pairs:
            partition = partition.split(selector % partition.num_shards, sample)
        else:
            a, b = pairs[selector % len(pairs)]
            partition = partition.merge(a, b)
    return partition


class TestElasticActions:
    """Satellite properties: the elastic ``split``/``merge`` operations keep
    every invariant the router's exactness contract rests on."""

    @given(
        fleet_actions(),
        st.lists(st.tuples(coordinates, coordinates), min_size=1, max_size=30),
    )
    @settings(max_examples=150, deadline=None)
    def test_plane_cover_survives_arbitrary_histories(self, partition, points):
        for x, y in points:
            shard_id = partition.shard_id_of(Point(x, y))
            assert 0 <= shard_id < partition.num_shards
            clamped = clamp(Point(x, y), partition.bounds)
            assert partition.shard_bounds(shard_id).contains_point(clamped)

    @given(fleet_actions())
    @settings(max_examples=100, deadline=None)
    def test_cells_still_tile_the_bounds(self, partition):
        total = sum(
            partition.shard_bounds(shard_id).area
            for shard_id in range(partition.num_shards)
        )
        assert total == pytest.approx(partition.bounds.area, rel=1e-9)
        for shard_id in range(partition.num_shards):
            cell = partition.shard_bounds(shard_id)
            assert cell.width > 0.0 and cell.height > 0.0
            assert partition.shard_id_of(cell.center) == shard_id

    @given(fleet_actions(), st.integers(min_value=0, max_value=4))
    @settings(max_examples=100, deadline=None)
    def test_rings_stay_sound(self, partition, halo):
        for shard_id in range(partition.num_shards):
            ring = partition.ring_of(shard_id, halo)
            assert shard_id in ring
            assert ring <= set(range(partition.num_shards))
            if halo:
                assert partition.ring_of(shard_id, halo - 1) <= ring
        assert partition.ring_of(0, partition.num_shards) == set(
            range(partition.num_shards)
        )

    @given(partitions(), samples(), st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=100, deadline=None)
    def test_split_is_independent_of_sample_order(self, partition, sample, seed):
        shard_id = seed % partition.num_shards
        shuffled = list(sample)
        random.Random(seed).shuffle(shuffled)
        assert (
            partition.split(shard_id, shuffled).describe()
            == partition.split(shard_id, sample).describe()
        )

    @given(partitions(), samples(), st.integers(min_value=0, max_value=2**20))
    @settings(max_examples=100, deadline=None)
    def test_split_touches_only_the_split_cell(self, partition, sample, selector):
        """Replica reuse depends on this: every other shard keeps its id
        *and* its bounds, and the two halves tile the split cell exactly
        (the new shard takes the next free id)."""
        shard_id = selector % partition.num_shards
        grown = partition.split(shard_id, sample)
        new_id = partition.num_shards
        assert grown.num_shards == partition.num_shards + 1
        for other in range(partition.num_shards):
            if other != shard_id:
                assert grown.shard_bounds(other) == partition.shard_bounds(other)
        halves = (grown.shard_bounds(shard_id), grown.shard_bounds(new_id))
        assert halves[0].area + halves[1].area == pytest.approx(
            partition.shard_bounds(shard_id).area, rel=1e-9
        )

    @given(partitions(), samples(), st.integers(min_value=0, max_value=2**20))
    @settings(max_examples=100, deadline=None)
    def test_split_then_merge_round_trips(self, partition, sample, selector):
        kd = partition if partition.kind == "kd" else partition.to_kd()
        shard_id = selector % kd.num_shards
        grown = kd.split(shard_id, sample)
        assert grown.merge(shard_id, kd.num_shards).describe() == kd.describe()

    @given(fleet_actions(), st.integers(min_value=0, max_value=2**20))
    @settings(max_examples=100, deadline=None)
    def test_merge_only_touches_the_siblings(self, partition, selector):
        pairs = partition.mergeable_pairs()
        assume(pairs)
        a, b = pairs[selector % len(pairs)]
        merged = partition.merge(a, b)
        assert merged.num_shards == partition.num_shards - 1
        union_area = partition.shard_bounds(a).area + partition.shard_bounds(b).area
        assert merged.shard_bounds(a).area == pytest.approx(union_area, rel=1e-9)
        # Survivors keep their cells; ids above the dropped one shift down.
        for old_id in range(partition.num_shards):
            if old_id in (a, b):
                continue
            new_id = old_id - 1 if old_id > b else old_id
            assert merged.shard_bounds(new_id) == partition.shard_bounds(old_id)

    def test_non_sibling_merges_are_rejected(self):
        partition = KdSplitPartition.fit(BOUNDS, 4)
        siblings = set(partition.mergeable_pairs())
        assert siblings  # the balanced fit must expose at least one pair
        rejected = 0
        for a in range(4):
            for b in range(4):
                if a == b or (min(a, b), max(a, b)) in siblings:
                    continue
                with pytest.raises(ConfigurationError):
                    partition.merge(a, b)
                rejected += 1
        assert rejected > 0
        with pytest.raises(ConfigurationError):
            partition.merge(0, 0)
        with pytest.raises(ConfigurationError):
            partition.merge(0, 99)
        with pytest.raises(ConfigurationError):
            partition.split(99)


class TestCreatePartition:
    def test_kinds_round_trip(self):
        for kind in PARTITION_KINDS:
            partition = create_partition(kind, BOUNDS, 6)
            assert partition.kind == kind
            assert partition.num_shards == 6

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            create_partition("voronoi", BOUNDS, 4)

    def test_uniform_matches_shard_grid_layout(self):
        partition = create_partition("uniform", BOUNDS, 4)
        assert (partition.rows, partition.cols) == shard_layout(4)
