"""Unit tests for :mod:`repro.core.geometry`."""

from __future__ import annotations

import math

import pytest

from repro.core.errors import InvalidGeometryError
from repro.core.geometry import (
    Point,
    Rectangle,
    euclidean_distance,
    interpolate_point,
    interpolate_scalar,
    lp_distance,
    manhattan_distance,
    max_distance,
    segment_length,
)


class TestPoint:
    def test_point_is_iterable(self):
        assert tuple(Point(1.0, 2.0)) == (1.0, 2.0)

    def test_point_as_tuple(self):
        assert Point(3.5, -1.0).as_tuple() == (3.5, -1.0)

    def test_point_rejects_nan(self):
        with pytest.raises(InvalidGeometryError):
            Point(float("nan"), 0.0)

    def test_point_rejects_infinity(self):
        with pytest.raises(InvalidGeometryError):
            Point(0.0, float("inf"))

    def test_translate(self):
        assert Point(1.0, 1.0).translate(2.0, -1.0) == Point(3.0, 0.0)

    def test_max_distance_to(self):
        assert Point(0.0, 0.0).max_distance_to(Point(3.0, 4.0)) == 4.0

    def test_euclidean_distance_to(self):
        assert Point(0.0, 0.0).euclidean_distance_to(Point(3.0, 4.0)) == 5.0

    def test_is_close_to_within_tolerance(self):
        assert Point(0.0, 0.0).is_close_to(Point(1.0, -1.0), 1.0)

    def test_is_close_to_outside_tolerance(self):
        assert not Point(0.0, 0.0).is_close_to(Point(1.5, 0.0), 1.0)

    def test_is_close_to_boundary_inclusive(self):
        assert Point(0.0, 0.0).is_close_to(Point(1.0, 0.0), 1.0)

    def test_midpoint(self):
        assert Point(0.0, 0.0).midpoint(Point(2.0, 4.0)) == Point(1.0, 2.0)

    def test_points_are_hashable(self):
        assert len({Point(1.0, 2.0), Point(1.0, 2.0), Point(2.0, 1.0)}) == 2


class TestDistances:
    def test_max_distance_symmetry(self):
        a, b = Point(1.0, 5.0), Point(-2.0, 3.0)
        assert max_distance(a, b) == max_distance(b, a) == 3.0

    def test_euclidean_distance(self):
        assert euclidean_distance(Point(0.0, 0.0), Point(3.0, 4.0)) == 5.0

    def test_manhattan_distance(self):
        assert manhattan_distance(Point(0.0, 0.0), Point(3.0, 4.0)) == 7.0

    def test_lp_distance_p2_matches_euclidean(self):
        a, b = Point(1.0, 2.0), Point(4.0, 6.0)
        assert lp_distance(a, b, 2.0) == pytest.approx(euclidean_distance(a, b))

    def test_lp_distance_p1_matches_manhattan(self):
        a, b = Point(1.0, 2.0), Point(4.0, 6.0)
        assert lp_distance(a, b, 1.0) == pytest.approx(manhattan_distance(a, b))

    def test_lp_distance_infinity_matches_max(self):
        a, b = Point(1.0, 2.0), Point(4.0, 6.0)
        assert lp_distance(a, b, math.inf) == max_distance(a, b)

    def test_lp_distance_rejects_p_below_one(self):
        with pytest.raises(InvalidGeometryError):
            lp_distance(Point(0.0, 0.0), Point(1.0, 1.0), 0.5)

    def test_segment_length_is_euclidean(self):
        assert segment_length(Point(0.0, 0.0), Point(0.0, 7.0)) == 7.0


class TestInterpolation:
    def test_interpolate_scalar_endpoints(self):
        assert interpolate_scalar(2.0, 10.0, 0.0) == 2.0
        assert interpolate_scalar(2.0, 10.0, 1.0) == 10.0

    def test_interpolate_scalar_midpoint(self):
        assert interpolate_scalar(2.0, 10.0, 0.5) == 6.0

    def test_interpolate_point_midpoint(self):
        mid = interpolate_point(Point(0.0, 0.0), Point(10.0, 20.0), 0.5)
        assert mid == Point(5.0, 10.0)

    def test_interpolate_point_endpoints(self):
        a, b = Point(-1.0, 2.0), Point(3.0, -4.0)
        assert interpolate_point(a, b, 0.0) == a
        assert interpolate_point(a, b, 1.0) == b


class TestRectangle:
    def test_from_bounds(self):
        rect = Rectangle.from_bounds(0.0, 1.0, 2.0, 3.0)
        assert rect.low == Point(0.0, 1.0)
        assert rect.high == Point(2.0, 3.0)

    def test_invalid_corners_rejected(self):
        with pytest.raises(InvalidGeometryError):
            Rectangle(Point(1.0, 0.0), Point(0.0, 1.0))

    def test_from_center_is_tolerance_square(self):
        rect = Rectangle.from_center(Point(5.0, 5.0), 2.0)
        assert rect.low == Point(3.0, 3.0)
        assert rect.high == Point(7.0, 7.0)
        assert rect.width == rect.height == 4.0

    def test_from_center_negative_half_extent_rejected(self):
        with pytest.raises(InvalidGeometryError):
            Rectangle.from_center(Point(0.0, 0.0), -1.0)

    def test_degenerate_rectangle(self):
        rect = Rectangle.degenerate(Point(2.0, 3.0))
        assert rect.is_degenerate()
        assert rect.area == 0.0
        assert rect.contains_point(Point(2.0, 3.0))

    def test_bounding_with_padding(self):
        rect = Rectangle.bounding(Point(0.0, 5.0), Point(5.0, 0.0), padding=1.0)
        assert rect.low == Point(-1.0, -1.0)
        assert rect.high == Point(6.0, 6.0)

    def test_width_height_area(self):
        rect = Rectangle.from_bounds(0.0, 0.0, 4.0, 2.0)
        assert rect.width == 4.0
        assert rect.height == 2.0
        assert rect.area == 8.0

    def test_center(self):
        rect = Rectangle.from_bounds(0.0, 0.0, 4.0, 2.0)
        assert rect.center == Point(2.0, 1.0)

    def test_contains_point_boundary(self):
        rect = Rectangle.from_bounds(0.0, 0.0, 1.0, 1.0)
        assert rect.contains_point(Point(1.0, 1.0))
        assert not rect.contains_point(Point(1.0001, 1.0))

    def test_contains_rectangle(self):
        outer = Rectangle.from_bounds(0.0, 0.0, 10.0, 10.0)
        inner = Rectangle.from_bounds(2.0, 2.0, 5.0, 5.0)
        assert outer.contains_rectangle(inner)
        assert not inner.contains_rectangle(outer)

    def test_intersects_touching(self):
        a = Rectangle.from_bounds(0.0, 0.0, 1.0, 1.0)
        b = Rectangle.from_bounds(1.0, 1.0, 2.0, 2.0)
        assert a.intersects(b)

    def test_intersects_disjoint(self):
        a = Rectangle.from_bounds(0.0, 0.0, 1.0, 1.0)
        b = Rectangle.from_bounds(1.5, 0.0, 2.0, 1.0)
        assert not a.intersects(b)

    def test_intersection_overlapping(self):
        a = Rectangle.from_bounds(0.0, 0.0, 2.0, 2.0)
        b = Rectangle.from_bounds(1.0, 1.0, 3.0, 3.0)
        inter = a.intersection(b)
        assert inter == Rectangle.from_bounds(1.0, 1.0, 2.0, 2.0)

    def test_intersection_disjoint_returns_none(self):
        a = Rectangle.from_bounds(0.0, 0.0, 1.0, 1.0)
        b = Rectangle.from_bounds(5.0, 5.0, 6.0, 6.0)
        assert a.intersection(b) is None

    def test_intersection_degenerate_touching(self):
        a = Rectangle.from_bounds(0.0, 0.0, 1.0, 1.0)
        b = Rectangle.from_bounds(1.0, 0.0, 2.0, 1.0)
        inter = a.intersection(b)
        assert inter is not None
        assert inter.is_degenerate()

    def test_union_bounds(self):
        a = Rectangle.from_bounds(0.0, 0.0, 1.0, 1.0)
        b = Rectangle.from_bounds(5.0, 5.0, 6.0, 6.0)
        assert a.union_bounds(b) == Rectangle.from_bounds(0.0, 0.0, 6.0, 6.0)

    def test_expand_positive(self):
        rect = Rectangle.from_bounds(0.0, 0.0, 2.0, 2.0).expand(1.0)
        assert rect == Rectangle.from_bounds(-1.0, -1.0, 3.0, 3.0)

    def test_expand_negative_too_far_rejected(self):
        with pytest.raises(InvalidGeometryError):
            Rectangle.from_bounds(0.0, 0.0, 2.0, 2.0).expand(-2.0)

    def test_clamp_point_inside_unchanged(self):
        rect = Rectangle.from_bounds(0.0, 0.0, 2.0, 2.0)
        assert rect.clamp_point(Point(1.0, 1.0)) == Point(1.0, 1.0)

    def test_clamp_point_outside(self):
        rect = Rectangle.from_bounds(0.0, 0.0, 2.0, 2.0)
        assert rect.clamp_point(Point(5.0, -3.0)) == Point(2.0, 0.0)

    def test_corners_order(self):
        rect = Rectangle.from_bounds(0.0, 0.0, 2.0, 1.0)
        corners = rect.corners()
        assert corners[0] == Point(0.0, 0.0)
        assert corners[2] == Point(2.0, 1.0)

    def test_as_bounds_roundtrip(self):
        rect = Rectangle.from_bounds(0.5, 1.5, 2.5, 3.5)
        assert Rectangle.from_bounds(*rect.as_bounds()) == rect
