"""Deterministic chaos: every fault is replayable and its recovery is pinned.

Two layers:

* **Seed determinism** — a fault schedule is a pure function of
  ``(InjectionConfig, plan shape)``, and a whole chaos run is a pure
  function of ``(scenario seed, injection seed, fleet shape)``: running it
  twice yields the same fingerprint (fault events, accepted log, report).
  That is what turns chaos runs into regression tests.
* **Recovery vs. degradation, per fault class** — exact-recovery faults
  (duplicate, reorder, kill_worker, force_rebalance) must leave the
  committed state identical to an unfaulted run of the same scenario seed;
  degrading faults (drop_batch, stall_epoch) must land exactly where their
  quantified path predicts (accepted = submitted − dropped; commits move to
  the next ticked boundary; backpressure rejects are retried, never lost)
  while the accepted-log replay stays bit-for-bit.
"""

from __future__ import annotations

import pytest

from repro.core.errors import ConfigurationError, CoordinatorError
from repro.coordinator.coordinator import Coordinator
from repro.serving.scenarios import (
    FAULT_TYPES,
    InjectionConfig,
    ScenarioRunner,
    build_fault_schedule,
    get_scenario,
    replay_accepted_log,
)


def make_runner(backend="serial", **overrides):
    defaults = dict(num_shards=4, backend=backend, partition="kd")
    defaults.update(overrides)
    return ScenarioRunner(**defaults)


def injection(fault, rate=0.4, seed=0):
    return InjectionConfig(enabled=True, fault=fault, rate=rate, seed=seed)


def backend_for(fault):
    """kill_worker needs a process fleet; everything else runs serial."""
    return "processes" if fault == "kill_worker" else "serial"


class TestScheduleDeterminism:
    """The fault schedule is a pure function of (config, plan shape)."""

    @pytest.mark.parametrize("fault", FAULT_TYPES)
    def test_same_seed_same_schedule(self, fault):
        plan = get_scenario("bursty_downtown").plan(seed=4)
        first = build_fault_schedule(injection(fault, seed=31), plan)
        second = build_fault_schedule(injection(fault, seed=31), plan)
        assert first == second
        assert first.events() == second.events()

    @pytest.mark.parametrize("fault", FAULT_TYPES)
    def test_enabled_injection_is_never_vacuous(self, fault):
        """Even a seed whose draws all miss must fire at least one fault."""
        plan = get_scenario("uniform_trickle").plan(seed=4)
        # rate barely above zero: every probability draw misses, so the
        # forced-fallback path must kick in.
        schedule = build_fault_schedule(
            InjectionConfig(enabled=True, fault=fault, rate=1e-12, seed=0), plan
        )
        assert schedule.events()

    def test_disabled_injection_is_empty(self):
        plan = get_scenario("uniform_trickle").plan(seed=4)
        assert build_fault_schedule(InjectionConfig(), plan).events() == []

    def test_invalid_config_rejected(self):
        with pytest.raises(ConfigurationError):
            InjectionConfig(enabled=True, fault="meteor_strike")
        with pytest.raises(ConfigurationError):
            InjectionConfig(enabled=True, fault="drop_batch", rate=0.0)


class TestRunDeterminism:
    """Same seeds ⇒ same fingerprint, fault events included."""

    @pytest.mark.parametrize("fault", FAULT_TYPES)
    def test_chaos_runs_are_replayable(self, fault):
        runner = make_runner(backend=backend_for(fault))
        first = runner.run("uniform_trickle", seed=8, injection=injection(fault, seed=5))
        second = runner.run("uniform_trickle", seed=8, injection=injection(fault, seed=5))

        assert first.fault_events, f"{fault} injection fired nothing"
        assert first.fingerprint() == second.fingerprint()


class TestExactRecoveryFaults:
    """Faults the serving layer must absorb with zero observable effect."""

    @pytest.mark.parametrize(
        "fault", ["duplicate_batch", "reorder_batch", "force_rebalance"]
    )
    def test_fault_run_equals_unfaulted_run(self, fault):
        runner = make_runner()
        baseline = runner.run("bursty_downtown", seed=6)
        chaotic = runner.run("bursty_downtown", seed=6, injection=injection(fault, seed=2))

        assert chaotic.fault_events
        assert chaotic.accepted_updates == baseline.accepted_updates
        assert chaotic.accepted_log == baseline.accepted_log
        assert chaotic.report == baseline.report

    def test_killed_workers_recover_exactly(self):
        runner = make_runner(backend="processes")
        baseline = runner.run("uniform_trickle", seed=6)
        chaotic = runner.run(
            "uniform_trickle", seed=6, injection=injection("kill_worker", rate=0.6, seed=3)
        )

        assert chaotic.worker_kills >= 1
        assert chaotic.accepted_log == baseline.accepted_log
        assert chaotic.report == baseline.report
        assert chaotic.report == replay_accepted_log(chaotic.accepted_log)

    def test_duplicates_are_acked_but_committed_once(self):
        runner = make_runner()
        result = runner.run(
            "uniform_trickle", seed=9, injection=injection("duplicate_batch", seed=1)
        )

        assert result.duplicated_batches >= 1
        assert result.duplicate_acks >= result.duplicated_batches
        assert result.accepted_updates == result.submitted_updates
        assert result.report == replay_accepted_log(result.accepted_log)


class TestDegradingFaults:
    """Faults with a quantified degradation path, pinned exactly."""

    def test_dropped_batches_degrade_by_exactly_their_updates(self):
        runner = make_runner()
        result = runner.run(
            "bursty_downtown", seed=12, injection=injection("drop_batch", seed=7)
        )

        assert result.dropped_batches >= 1
        assert result.accepted_updates == result.submitted_updates - result.dropped_updates
        # What *was* accepted still commits deterministically.
        assert result.report == replay_accepted_log(result.accepted_log)

    def test_stall_trips_backpressure_and_retries_recover_every_update(self):
        # A queue two batches deep: the stalled epoch's backlog plus the next
        # epoch's traffic must overflow it and exercise reject-then-retry.
        runner = make_runner(max_pending_updates=20)
        result = runner.run(
            "uniform_trickle", seed=10, injection=injection("stall_epoch", rate=0.5, seed=4)
        )

        assert result.stalled_epochs >= 1
        assert result.backpressure_rejections >= 1
        # A batch may bounce several times while epochs stay stalled, but
        # every rejected batch eventually lands via a successful retry.
        assert result.retried_batches >= 1
        assert result.backpressure_rejections >= result.retried_batches
        # Degradation is confined to *when* updates commit, never *whether*:
        # every submitted update lands, and the replay is still exact.
        assert result.accepted_updates == result.submitted_updates
        assert result.report == replay_accepted_log(result.accepted_log)

    def test_stalled_epochs_commit_at_the_next_boundary(self):
        runner = make_runner()
        baseline = runner.run("uniform_trickle", seed=10)
        stalled = runner.run(
            "uniform_trickle", seed=10, injection=injection("stall_epoch", rate=0.5, seed=4)
        )

        assert stalled.epochs_run < baseline.epochs_run + stalled.stalled_epochs
        committed_boundaries = [boundary for boundary, _rows in stalled.accepted_log]
        stalled_boundaries = {
            (epoch + 1) * runner.epoch_length
            for kind, epoch in [
                (event[0], event[1]) for event in stalled.fault_events
            ]
            if kind == "stall_epoch"
        }
        assert stalled_boundaries
        assert not stalled_boundaries & set(committed_boundaries)
        # Nothing is lost: both runs commit the same updates overall.
        baseline_rows = sorted(
            tuple(row) for _b, rows in baseline.accepted_log for row in rows
        )
        stalled_rows = sorted(
            tuple(row) for _b, rows in stalled.accepted_log for row in rows
        )
        assert stalled_rows == baseline_rows


class TestMidCommitRebalanceGuard:
    """The razor the force_rebalance fault leans on: rebalancing is refused
    while a parallel commit is open, so a mid-epoch migration can only land
    between commits — where it is provably invisible."""

    def test_rebalance_inside_open_commit_is_refused(self):
        runner = make_runner(backend="threads", partition="kd")
        coordinator = Coordinator(runner.coordinator_config())
        try:
            router = coordinator.router
            router.begin_parallel_commit(batch_size=8)
            with pytest.raises(CoordinatorError, match="open parallel commit"):
                router.rebalance()
        finally:
            coordinator.close()
