"""Tests for the shard-local FSA overlap stage (:func:`plan_shard_overlaps`).

The equivalence argument in :mod:`repro.coordinator.sharding` rests on three
facts, each pinned here independently of the end-to-end differential harness:

* **halo closure** — the adaptive pool of a shard contains every epoch FSA
  that intersects any FSA in the shard's bucket, so all regions relevant to
  the shard's queries exist locally;
* **order restriction** — a pool preserves the global submission order, so
  the local structure's region iteration order (which first-encountered
  tie-breaks depend on) is the global order restricted to the pool;
* **query equality** — consequently every overlap query a shard's strategy
  can issue returns the identical region from the local and global builds.

Plus the mechanics: pool dedup and structure sharing, shared-prefix builds,
the fixed-ring halo shapes, and worker-side builds agreeing across all three
execution backends (the process backend round-trips structures through its
serialized wire format).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.geometry import Point, Rectangle
from repro.client.state import ObjectState
from repro.core.errors import ConfigurationError
from repro.coordinator.overlaps import (
    DerivedRegionCache,
    FsaOverlapStructure,
    build_structures,
)
from repro.coordinator.overlaps import _pools_are_consistent
from repro.coordinator.sharding import ShardGrid, ShardRouter, plan_shard_overlaps

BOUNDS = Rectangle(Point(0.0, 0.0), Point(1000.0, 1000.0))
GRID = ShardGrid(BOUNDS, 4, 4)

# Coordinates collide with the 4x4 shard borders (multiples of 250) and fall
# outside the bounds, so FSAs routinely straddle shards and clamp in.
coordinate_pool = st.sampled_from(
    [-40.0, 0.0, 100.0, 249.9, 250.0, 500.0, 625.0, 750.0, 999.0, 1000.0, 1100.0]
)
half_extents = st.sampled_from([1.0, 30.0, 130.0, 300.0])


@st.composite
def object_states(draw) -> ObjectState:
    object_id = draw(st.integers(min_value=0, max_value=8))
    start = Point(draw(coordinate_pool), draw(coordinate_pool))
    centre = Point(draw(coordinate_pool), draw(coordinate_pool))
    fsa = Rectangle.from_center(centre, draw(half_extents))
    t_end = draw(st.integers(min_value=1, max_value=50))
    return ObjectState(object_id, start, 0, fsa.low, fsa.high, t_end)


state_lists = st.lists(object_states(), min_size=1, max_size=20)


def stage1(states) -> Tuple[Dict[int, List[Tuple[int, ObjectState]]], Dict[int, Rectangle]]:
    """Replicate the pipeline's stage-1 grouping (later FSA wins per object)."""
    buckets: Dict[int, List[Tuple[int, ObjectState]]] = {}
    fsas: Dict[int, Rectangle] = {}
    for position, state in enumerate(states):
        buckets.setdefault(GRID.shard_id_of(state.start), []).append((position, state))
        fsas[state.object_id] = state.fsa
    return buckets, fsas


class TestAdaptiveHaloClosure:
    @settings(max_examples=150, deadline=None)
    @given(state_lists)
    def test_pool_contains_every_intersecting_fsa(self, states):
        buckets, fsas = stage1(states)
        plan = plan_shard_overlaps(GRID, buckets, fsas, halo=None)
        for shard_id, bucket in buckets.items():
            pool = plan.pools[plan.pool_of_shard[shard_id]]
            for _position, state in bucket:
                for object_id, fsa in fsas.items():
                    if fsa.intersects(state.fsa):
                        assert object_id in pool, (
                            f"shard {shard_id}: FSA of object {object_id} intersects "
                            f"a bucket state's FSA but is missing from the halo pool"
                        )

    @settings(max_examples=100, deadline=None)
    @given(state_lists)
    def test_pool_preserves_submission_order(self, states):
        buckets, fsas = stage1(states)
        plan = plan_shard_overlaps(GRID, buckets, fsas, halo=None)
        submission = {object_id: rank for rank, object_id in enumerate(fsas)}
        for pool in plan.pools:
            ranks = [submission[object_id] for object_id in pool]
            assert ranks == sorted(ranks)
            for object_id in pool:
                assert pool[object_id] == fsas[object_id]

    @settings(max_examples=100, deadline=None)
    @given(state_lists)
    def test_local_queries_equal_global_queries(self, states):
        """The tentpole property, asserted directly on the query surface."""
        buckets, fsas = stage1(states)
        plan = plan_shard_overlaps(GRID, buckets, fsas, halo=None)
        global_structure = FsaOverlapStructure.build(fsas)
        structures = build_structures(plan.pools)
        for shard_id, bucket in buckets.items():
            local = structures[plan.pool_of_shard[shard_id]]
            for _position, state in bucket:
                assert local.candidate_vertex_for(state.fsa) == (
                    global_structure.candidate_vertex_for(state.fsa)
                )
                local_hot = local.hottest_region_intersecting(state.fsa)
                global_hot = global_structure.hottest_region_intersecting(state.fsa)
                assert (local_hot is None) == (global_hot is None)
                if local_hot is not None:
                    assert local_hot.members == global_hot.members
                    assert local_hot.rectangle == global_hot.rectangle
                # Points a decision can probe: anywhere inside the state's FSA.
                for point in (*state.fsa.corners(), state.fsa.center):
                    local_small = local.smallest_region_containing(point)
                    global_small = global_structure.smallest_region_containing(point)
                    assert (local_small is None) == (global_small is None)
                    if local_small is not None:
                        assert local_small.members == global_small.members
                        assert local_small.rectangle == global_small.rectangle


class TestFixedRingHalo:
    def state_at(self, x, y, object_id=0, half=10.0):
        fsa = Rectangle.from_center(Point(x, y), half)
        return ObjectState(object_id, Point(x, y), 0, fsa.low, fsa.high, 5)

    def test_halo_zero_pools_only_own_shard_fsas(self):
        states = [
            self.state_at(100.0, 100.0, object_id=1),   # shard 0
            self.state_at(900.0, 900.0, object_id=2),   # shard 15
        ]
        buckets, fsas = stage1(states)
        plan = plan_shard_overlaps(GRID, buckets, fsas, halo=0)
        shard_of = {1: GRID.shard_id_of(Point(100.0, 100.0)), 2: GRID.shard_id_of(Point(900.0, 900.0))}
        for object_id, shard_id in shard_of.items():
            pool = plan.pools[plan.pool_of_shard[shard_id]]
            assert list(pool) == [object_id]

    def test_full_cover_ring_equals_adaptive_pool_of_everything(self):
        states = [
            self.state_at(100.0, 100.0, object_id=1),
            self.state_at(900.0, 900.0, object_id=2),
            self.state_at(500.0, 500.0, object_id=3, half=400.0),  # straddles all
        ]
        buckets, fsas = stage1(states)
        plan = plan_shard_overlaps(GRID, buckets, fsas, halo=3)  # 3 rings cover 4x4
        for shard_id in buckets:
            pool = plan.pools[plan.pool_of_shard[shard_id]]
            assert list(pool) == list(fsas)

    @settings(max_examples=60, deadline=None)
    @given(state_lists, st.integers(min_value=0, max_value=3))
    def test_fixed_ring_pool_is_the_ring_membership(self, states, halo):
        buckets, fsas = stage1(states)
        plan = plan_shard_overlaps(GRID, buckets, fsas, halo=halo)
        spans = {
            object_id: set(GRID.shard_ids_overlapping(fsa))
            for object_id, fsa in fsas.items()
        }
        for shard_id in buckets:
            row, col = divmod(shard_id, GRID.cols)
            ring = {
                r * GRID.cols + c
                for r in range(max(0, row - halo), min(GRID.rows, row + halo + 1))
                for c in range(max(0, col - halo), min(GRID.cols, col + halo + 1))
            }
            pool = plan.pools[plan.pool_of_shard[shard_id]]
            expected = [object_id for object_id in fsas if spans[object_id] & ring]
            assert list(pool) == expected


class TestPoolSharing:
    def test_identical_pools_deduplicate_to_one_entry(self):
        fsa = Rectangle.from_center(Point(500.0, 500.0), 450.0)  # overlaps all shards
        states = [
            ObjectState(1, Point(100.0, 100.0), 0, fsa.low, fsa.high, 5),
            ObjectState(2, Point(900.0, 900.0), 0, fsa.low, fsa.high, 5),
        ]
        buckets, fsas = stage1(states)
        plan = plan_shard_overlaps(GRID, buckets, fsas, halo=None)
        assert len(plan.pools) == 1
        assert len(set(plan.pool_of_shard.values())) == 1

    def test_build_structures_shares_identical_pools(self):
        pool = {1: Rectangle.from_center(Point(10.0, 10.0), 5.0)}
        structures = build_structures([dict(pool), dict(pool)])
        assert structures[0] is structures[1]

    def test_shared_prefix_build_matches_independent_build(self):
        rects = {
            1: Rectangle.from_center(Point(10.0, 10.0), 8.0),
            2: Rectangle.from_center(Point(14.0, 10.0), 8.0),
            3: Rectangle.from_center(Point(12.0, 14.0), 8.0),
            4: Rectangle.from_center(Point(30.0, 30.0), 8.0),
        }
        prefix = {1: rects[1], 2: rects[2]}
        extended = {1: rects[1], 2: rects[2], 3: rects[3], 4: rects[4]}
        shared = build_structures([prefix, extended])
        independent = [FsaOverlapStructure.build(prefix), FsaOverlapStructure.build(extended)]
        for built, expected in zip(shared, independent):
            assert [(r.members, r.rectangle) for r in built.regions()] == [
                (r.members, r.rectangle) for r in expected.regions()
            ]

    def test_sibling_pools_share_a_common_prefix_snapshot(self):
        """Pools (1,2,3) and (1,2,4) must both resume from the (1,2) build —
        the prefix chain is a stack, not just the immediately preceding pool —
        and still match fully independent builds."""
        rects = {
            1: Rectangle.from_center(Point(10.0, 10.0), 8.0),
            2: Rectangle.from_center(Point(14.0, 10.0), 8.0),
            3: Rectangle.from_center(Point(12.0, 14.0), 8.0),
            4: Rectangle.from_center(Point(11.0, 6.0), 8.0),
        }
        pools = [
            {1: rects[1], 2: rects[2]},
            {1: rects[1], 2: rects[2], 3: rects[3]},
            {1: rects[1], 2: rects[2], 4: rects[4]},
        ]
        built = build_structures(pools)
        for structure, pool in zip(built, pools):
            expected = FsaOverlapStructure.build(pool)
            assert [(r.members, r.rectangle) for r in structure.regions()] == [
                (r.members, r.rectangle) for r in expected.regions()
            ]

    @settings(max_examples=100, deadline=None)
    @given(state_lists, st.integers(min_value=1, max_value=12))
    def test_build_structures_matches_independent_builds(self, states, max_regions):
        """Whatever sharing path a pool takes (dedup, prefix resume, fresh
        build), the result is bit-identical to an independent build — capped
        builds included."""
        buckets, fsas = stage1(states)
        plan = plan_shard_overlaps(GRID, buckets, fsas, halo=None)
        built = build_structures(plan.pools, max_regions=max_regions)
        for structure, pool in zip(built, plan.pools):
            expected = FsaOverlapStructure.build(pool, max_regions=max_regions)
            assert [(r.members, r.rectangle) for r in structure.regions()] == [
                (r.members, r.rectangle) for r in expected.regions()
            ]

    def test_shared_prefix_does_not_mutate_the_prefix_structure(self):
        prefix = {1: Rectangle.from_center(Point(10.0, 10.0), 8.0)}
        extended = {1: prefix[1], 2: Rectangle.from_center(Point(12.0, 10.0), 8.0)}
        structures = build_structures([prefix, extended])
        short = structures[0] if len(structures[0]) < len(structures[1]) else structures[1]
        assert len(short) == 1


class TestDerivedRegionCache:
    """The cross-pool region cache (the ROADMAP seam): neighbouring halo
    pools re-derive shared boundary regions, so `build_structures` shares the
    derived rectangles through a member-set-keyed cache — bit-identically."""

    def overlapping_rects(self):
        return {
            1: Rectangle.from_center(Point(10.0, 10.0), 8.0),
            2: Rectangle.from_center(Point(14.0, 10.0), 8.0),
            3: Rectangle.from_center(Point(12.0, 14.0), 8.0),
            4: Rectangle.from_center(Point(11.0, 6.0), 8.0),
        }

    def test_cache_hits_across_neighbouring_pools(self):
        """Pools (1,2,3) and (2,3,4) share the {2,3} overlap but no prefix,
        so the prefix builder rebuilds — the region cache must not."""
        rects = self.overlapping_rects()
        pools = [
            {1: rects[1], 2: rects[2], 3: rects[3]},
            {2: rects[2], 3: rects[3], 4: rects[4]},
        ]
        cache = DerivedRegionCache()
        built = build_structures(pools, cache=cache)
        assert cache.hits > 0, "neighbouring pools derived nothing in common"
        # The {2,3} intersection (and every other shared derivation) is
        # computed exactly once: misses equal the *distinct* derived sets.
        derived = set()
        for pool in pools:
            independent = FsaOverlapStructure.build(pool)
            derived.update(
                region.members for region in independent.regions()
                if region.count > 1
            )
        assert cache.misses >= len(derived)
        for structure, pool in zip(built, pools):
            expected = FsaOverlapStructure.build(pool)
            assert [(r.members, r.rectangle) for r in structure.regions()] == [
                (r.members, r.rectangle) for r in expected.regions()
            ]

    def test_cache_shares_negative_results(self):
        """Empty/degenerate intersections are cached too (as None)."""
        disjoint = {
            1: Rectangle.from_center(Point(10.0, 10.0), 2.0),
            2: Rectangle.from_center(Point(100.0, 100.0), 2.0),
        }
        cache = DerivedRegionCache()
        build_structures([dict(disjoint), {2: disjoint[2], 1: disjoint[1]}], cache=cache)
        assert cache.hits > 0  # second pool re-probes the empty {1,2} overlap

    def test_inconsistent_pools_reject_the_cache(self):
        """An object id mapped to two different FSAs across pools would make
        member-set keys unsound, so supplying a cache for such pools is an
        explicit error.  (Such pools already violate `build_structures`'
        id→FSA contract — pool dedup and prefix resume key on id tuples
        alone — so the check keeps the cache from widening that assumption's
        blast radius rather than legalising inconsistent input.)"""
        pools = [
            {1: Rectangle.from_center(Point(10.0, 10.0), 8.0), 2: Rectangle.from_center(Point(14.0, 10.0), 8.0)},
            {1: Rectangle.from_center(Point(50.0, 50.0), 3.0), 3: Rectangle.from_center(Point(52.0, 50.0), 3.0)},
        ]
        assert not _pools_are_consistent(pools)
        with pytest.raises(ConfigurationError):
            build_structures(pools, cache=DerivedRegionCache())
        consistent = [
            {1: Rectangle.from_center(Point(10.0, 10.0), 8.0)},
            {1: Rectangle.from_center(Point(10.0, 10.0), 8.0)},
        ]
        assert _pools_are_consistent(consistent)

    def test_epoch_pipeline_builds_remain_cacheless(self):
        """The measured trade-off (see the cache line in the sharding
        benchmark): sharing is real but member-set hashing costs more than
        the saved intersections at epoch-sized pools, so the default build
        path takes no cache — the cacheless call must not create one."""
        rects = self.overlapping_rects()
        pools = [
            {1: rects[1], 2: rects[2], 3: rects[3]},
            {2: rects[2], 3: rects[3], 4: rects[4]},
        ]
        cacheless = build_structures(pools)
        cached = build_structures(pools, cache=DerivedRegionCache())
        for first, second in zip(cacheless, cached):
            assert [(r.members, r.rectangle) for r in first.regions()] == [
                (r.members, r.rectangle) for r in second.regions()
            ]

    @settings(max_examples=100, deadline=None)
    @given(state_lists, st.integers(min_value=1, max_value=12))
    def test_cached_builds_match_independent_builds(self, states, max_regions):
        """Whatever the cache shares — positive regions, negative probes,
        capped builds — the result is bit-identical to cacheless builds."""
        buckets, fsas = stage1(states)
        plan = plan_shard_overlaps(GRID, buckets, fsas, halo=None)
        cache = DerivedRegionCache()
        built = build_structures(plan.pools, max_regions=max_regions, cache=cache)
        for structure, pool in zip(built, plan.pools):
            expected = FsaOverlapStructure.build(pool, max_regions=max_regions)
            assert [(r.members, r.rectangle) for r in structure.regions()] == [
                (r.members, r.rectangle) for r in expected.regions()
            ]

    def test_cache_hit_counts_are_observable_for_the_benchmark(self):
        rects = self.overlapping_rects()
        cache = DerivedRegionCache()
        assert (cache.hits, cache.misses, len(cache)) == (0, 0, 0)
        build_structures([{1: rects[1], 2: rects[2]}], cache=cache)
        assert cache.misses == len(cache) > 0
        assert cache.hits == 0


class TestBackendWorkerBuilds:
    """All three backends must build identical structures from the same pools
    (the process backend round-trips them through the serialized format)."""

    @pytest.mark.parametrize("backend", ["serial", "threads", "processes"])
    def test_worker_side_builds_match_inline_build(self, backend):
        router = ShardRouter(BOUNDS, window=40, cells_per_axis=32, num_shards=16, backend=backend)
        try:
            pools = [
                {
                    1: Rectangle.from_center(Point(200.0, 200.0), 80.0),
                    2: Rectangle.from_center(Point(260.0, 200.0), 80.0),
                },
                {
                    2: Rectangle.from_center(Point(260.0, 200.0), 80.0),
                    3: Rectangle.from_center(Point(800.0, 800.0), 50.0),
                },
                {4: Rectangle.from_center(Point(500.0, 500.0), 5.0)},
            ]
            per_state, structures = router.pipeline.backend.map_candidate_buckets(
                router, {}, [], pools
            )
            assert per_state == []
            expected = [FsaOverlapStructure.build(pool) for pool in pools]
            assert len(structures) == len(expected)
            for built, reference in zip(structures, expected):
                assert [(r.members, r.rectangle) for r in built.regions()] == [
                    (r.members, r.rectangle) for r in reference.regions()
                ]
        finally:
            router.pipeline.close()
