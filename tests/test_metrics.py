"""Unit tests for :mod:`repro.simulation.metrics`."""

from __future__ import annotations

import pytest

from repro.simulation.metrics import CommunicationStats, EpochMetrics, MetricsCollector


def epoch(timestamp: int, index_size: int = 5, score: float = 10.0, **overrides) -> EpochMetrics:
    defaults = dict(
        timestamp=timestamp,
        index_size=index_size,
        top_k_score=score,
        processing_seconds=0.01,
        states_processed=3,
        paths_inserted=2,
        paths_reused=1,
        paths_expired=0,
    )
    defaults.update(overrides)
    return EpochMetrics(**defaults)


class TestCommunicationStats:
    def test_record_accumulates(self):
        stats = CommunicationStats()
        stats.record(10)
        stats.record(30)
        assert stats.messages == 2
        assert stats.bytes == 40

    def test_merge(self):
        merged = CommunicationStats(1, 10).merge(CommunicationStats(2, 20))
        assert merged.messages == 3
        assert merged.bytes == 30


class TestMetricsCollector:
    def test_empty_collector_defaults(self):
        collector = MetricsCollector()
        assert collector.mean_index_size == 0.0
        assert collector.final_index_size == 0
        assert collector.mean_top_k_score == 0.0
        assert collector.mean_processing_seconds == 0.0
        assert collector.message_reduction_versus_naive() == 0.0

    def test_mean_index_size(self):
        collector = MetricsCollector()
        collector.record_epoch(epoch(10, index_size=4))
        collector.record_epoch(epoch(20, index_size=8))
        assert collector.mean_index_size == 6.0
        assert collector.final_index_size == 8

    def test_mean_top_k_score(self):
        collector = MetricsCollector()
        collector.record_epoch(epoch(10, score=10.0))
        collector.record_epoch(epoch(20, score=30.0))
        assert collector.mean_top_k_score == 20.0

    def test_dp_means_skip_missing_values(self):
        collector = MetricsCollector()
        collector.record_epoch(epoch(10, dp_index_size=10, dp_top_k_score=5.0))
        collector.record_epoch(epoch(20))
        assert collector.mean_dp_index_size == 10.0
        assert collector.mean_dp_top_k_score == 5.0

    def test_totals(self):
        collector = MetricsCollector()
        collector.record_epoch(epoch(10))
        collector.record_epoch(epoch(20))
        assert collector.total_states_processed == 6
        assert collector.total_paths_inserted == 4
        assert collector.total_paths_reused == 2

    def test_message_reduction(self):
        collector = MetricsCollector()
        for _ in range(10):
            collector.uplink.record(36)
        for _ in range(100):
            collector.naive_uplink.record(16)
        assert collector.message_reduction_versus_naive() == pytest.approx(0.9)

    def test_as_dict_keys(self):
        collector = MetricsCollector()
        collector.record_epoch(epoch(10))
        summary = collector.as_dict()
        for key in (
            "epochs",
            "mean_index_size",
            "mean_top_k_score",
            "mean_processing_seconds",
            "uplink_messages",
            "naive_uplink_messages",
            "message_reduction_versus_naive",
        ):
            assert key in summary
        assert summary["epochs"] == 1
