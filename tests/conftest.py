"""Shared fixtures for the test suite.

The ``slow`` marker (registered in ``pytest.ini`` alongside the ``addopts``
that deselect it) keeps tier-1 runs fast: decorate long-running tests with
``@pytest.mark.slow`` and opt in explicitly via ``pytest -m "slow or not
slow"``.  The registration is repeated here so ad-hoc invocations with a
custom ``-c`` config still know the marker.
"""

from __future__ import annotations

import pytest


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "slow: long-running test or benchmark, deselected by default"
    )

from repro.core.geometry import Point, Rectangle
from repro.network.generator import NetworkConfig, SyntheticRoadNetworkGenerator
from repro.network.road_network import RoadClass, RoadNetwork
from repro.simulation.engine import SimulationConfig


@pytest.fixture(scope="session")
def small_network() -> RoadNetwork:
    """A small synthetic network shared by tests that just need *a* network."""
    config = NetworkConfig(area_size=2000.0, grid_nodes_per_axis=6, seed=3)
    return SyntheticRoadNetworkGenerator(config).generate()


@pytest.fixture()
def tiny_manual_network() -> RoadNetwork:
    """A hand-built 4-node square network with one motorway edge."""
    network = RoadNetwork()
    network.add_node(0, Point(0.0, 0.0))
    network.add_node(1, Point(100.0, 0.0))
    network.add_node(2, Point(100.0, 100.0))
    network.add_node(3, Point(0.0, 100.0))
    network.add_link(0, 1, RoadClass.MOTORWAY)
    network.add_link(1, 2, RoadClass.PRIMARY)
    network.add_link(2, 3, RoadClass.SECONDARY)
    network.add_link(3, 0, RoadClass.SECONDARY)
    return network


@pytest.fixture()
def unit_bounds() -> Rectangle:
    """A simple 1000x1000 area used by coordinator/index tests."""
    return Rectangle(Point(0.0, 0.0), Point(1000.0, 1000.0))


@pytest.fixture()
def fast_simulation_config(small_network) -> SimulationConfig:
    """A configuration small enough for integration tests to run in < 1 second."""
    return SimulationConfig(
        num_objects=60,
        tolerance=10.0,
        window=50,
        epoch_length=10,
        duration=80,
        network_config=NetworkConfig(area_size=2000.0, grid_nodes_per_axis=6, seed=3),
    )
