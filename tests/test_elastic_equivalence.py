"""Differential harness for the elastic shard fleet (``--elastic auto``).

The elastic controller may grow, shrink or refit the fleet at any epoch
boundary — and with ``--migration-budget`` it spreads each migration over
several boundaries, double-reading from the outgoing fleet while the
incoming one warms.  None of that may ever change an answer: **placement is
an implementation detail**, so every elastic run must stay bit-for-bit
equal to the seed single-shard coordinator.  Three layers:

* :class:`TestElasticMatrix` — the acceptance matrix: forced grow (split
  the hottest shard) and forced shrink (merge a sibling pair) mid-replay,
  stop-the-world *and* budgeted, across all execution backends, both epoch
  modes and both geometry kernels, every epoch compared exactly against the
  seed trace — plus a worker kill while a budgeted migration is in flight;
* :class:`TestCostModel` — the controller's decisions: split/merge
  hysteresis (two consecutive boundaries of evidence), the unconditional
  grow-to-the-``min_shards``-floor, and cap/floor enforcement;
* :class:`TestBudgetedMigration` — the protocol itself: bounded warming
  per boundary, convergence in ``ceil(records / budget)`` boundaries even
  under insert churn, deletions unwinding warmed records, and the
  handed-off state being *identical* to what a stop-the-world migration to
  the same partition produces.

Streams reuse the sharding-equivalence generators (8 epochs x 30 states —
the exact-halo regime where bit-for-bit equality is the contract).
"""

from __future__ import annotations

import random
from typing import Dict, List

import pytest

from repro.core.geometry import Point, Rectangle
from repro.core.motion_path import MotionPath
from repro.coordinator.coordinator import Coordinator, CoordinatorConfig
from repro.coordinator.sharding import ShardRouter
from test_sharding_equivalence import (
    BOUNDS,
    drive,
    index_snapshot,
    make_coordinator,
    skewed_stream,
    synthetic_stream,
)

GROW_AT, SHRINK_AT = 2, 5


def make_elastic_coordinator(
    num_shards: int = 4,
    backend: str = "serial",
    epoch_mode: str = "delta",
    kernel: str = "columnar",
    migration_budget: int = 0,
    min_shards: int = None,
    max_shards: int = 9,
    partition: str = "uniform",
) -> Coordinator:
    return Coordinator(
        CoordinatorConfig(
            bounds=BOUNDS,
            window=60,
            cells_per_axis=32,
            num_shards=num_shards,
            backend=backend,
            partition=partition,
            epoch_mode=epoch_mode,
            kernel=kernel,
            elastic="auto",
            migration_budget=migration_budget,
            min_shards=min_shards,
            max_shards=max_shards,
        )
    )


def drive_elastic(coordinator: Coordinator, stream, fault=None):
    """Like the sharding harness's ``drive``, plus per-epoch faults and the
    final shard statistics (read before the coordinator closes)."""
    trace = []
    stats: Dict = {}
    try:
        for index, (boundary, states) in enumerate(stream):
            if fault is not None:
                fault(coordinator, index)
            for state in states:
                coordinator.submit_state(state)
            outcome = coordinator.run_epoch(boundary)
            trace.append(
                {
                    "responses": outcome.responses,
                    "states_processed": outcome.states_processed,
                    "paths_inserted": outcome.paths_inserted,
                    "paths_reused": outcome.paths_reused,
                    "paths_expired": outcome.paths_expired,
                    "snapshot": index_snapshot(coordinator),
                }
            )
        stats.update(coordinator.shard_statistics())
    finally:
        coordinator.close()
    return trace, stats


def grow_and_shrink(coordinator: Coordinator, index: int) -> None:
    """The forced elastic actions of the acceptance matrix."""
    router = coordinator.router
    if index == GROW_AT:
        # Forced elastic action: split the hottest shard (chaos
        # force_rebalance takes exactly this path).
        assert router.rebalance() is True
    elif index == SHRINK_AT:
        if router._migration is not None:
            router._complete_migration()
        pairs = router.grid.mergeable_pairs()
        assert pairs, "a grown fleet must expose sibling pairs"
        assert router.rebalance(router.grid.merge(*pairs[0])) is True


@pytest.fixture(scope="module")
def seed_trace():
    """The seed single-shard trace every elastic run must reproduce."""
    return drive(make_coordinator(1), skewed_stream(seed=42))


class TestElasticMatrix:
    """Acceptance: elastic grow + shrink forced mid-replay stays bit-for-bit
    equal to the seed across backends x epoch modes x kernels."""

    @pytest.mark.parametrize("backend", ["serial", "threads", "processes"])
    @pytest.mark.parametrize("epoch_mode", ["full", "delta"])
    @pytest.mark.parametrize("kernel", ["object", "columnar"])
    @pytest.mark.parametrize("budget", [0, 7])
    def test_grow_and_shrink_mid_replay(
        self, backend, epoch_mode, kernel, budget, seed_trace
    ):
        trace, stats = drive_elastic(
            make_elastic_coordinator(
                backend=backend,
                epoch_mode=epoch_mode,
                kernel=kernel,
                migration_budget=budget,
            ),
            skewed_stream(seed=42),
            fault=grow_and_shrink,
        )
        for epoch, (actual, expected) in enumerate(zip(trace, seed_trace)):
            assert actual == expected, (
                f"elastic fleet diverged from seed at epoch {epoch} "
                f"(backend={backend}, epoch_mode={epoch_mode}, "
                f"kernel={kernel}, budget={budget})"
            )
        # The run really migrated: the forced grow and shrink both landed
        # (auto cost-model actions may add more on this skewed stream).
        assert stats["rebalances"] >= 2 or stats["elastic_migrations"] >= 2
        if budget:
            assert stats["elastic_migrations"] >= 1
            assert stats["records_migrated"] > 0

    def test_worker_kill_during_inflight_budgeted_migration(self, seed_trace):
        """A process worker dies while the incoming fleet is still warming:
        the respawn bootstraps from the (authoritative) outgoing fleet and
        the replay stays exact."""
        observed = {"active_when_killed": False}

        def fault(coordinator: Coordinator, index: int) -> None:
            router = coordinator.router
            if index == GROW_AT:
                assert router.rebalance() is True
                assert router._migration is not None  # budgeted: in flight
            elif index == GROW_AT + 1:
                observed["active_when_killed"] = router._migration is not None
                backend = router.pipeline.backend
                backend.kill_worker(0)
                assert not backend.workers_alive()[0]

        trace, stats = drive_elastic(
            make_elastic_coordinator(backend="processes", migration_budget=5),
            skewed_stream(seed=42),
            fault=fault,
        )
        assert observed["active_when_killed"], (
            "migration finished before the kill — the scenario is vacuous"
        )
        assert trace == seed_trace
        assert stats["elastic_migrations"] >= 1

    @pytest.mark.parametrize("budget", [0, 10])
    def test_grow_to_floor_on_the_uniform_stream(self, budget):
        """``min_shards`` above the boot count: the controller grows the
        fleet unconditionally, one split per boundary, without perturbing
        any answer on the boundary-stressing synthetic stream."""
        stream = synthetic_stream(seed=13)
        expected = drive(make_coordinator(1), stream)
        trace, stats = drive_elastic(
            make_elastic_coordinator(
                num_shards=4, min_shards=6, migration_budget=budget
            ),
            stream,
        )
        for epoch, (actual, exp) in enumerate(zip(trace, expected)):
            assert actual == exp, f"grow-to-floor diverged at epoch {epoch}"
        if budget:
            # One budgeted migration per proposal: by stream end the fleet
            # has grown at least once and is either at the floor or still
            # warming toward it — never stuck.
            assert stats["num_shards"] >= 5
            assert stats["num_shards"] == 6 or stats["migration_active"]
        else:
            assert stats["num_shards"] == 6


class TestCostModel:
    """The controller's split/merge/grow decisions, in isolation."""

    @staticmethod
    def make_router(num_shards: int = 4, **kwargs) -> ShardRouter:
        return ShardRouter(BOUNDS, 60, 32, num_shards, elastic="auto", **kwargs)

    @staticmethod
    def load_downtown(router: ShardRouter, count: int = 30, seed: int = 3) -> None:
        rng = random.Random(seed)
        for _ in range(count):
            start = Point(rng.uniform(0.0, 240.0), rng.uniform(0.0, 240.0))
            router.insert(MotionPath(start, Point(start.x + 5.0, start.y + 5.0)))

    def test_hot_shard_splits_only_after_patience(self):
        router = self.make_router(max_shards=9, rebalance_threshold=1.5)
        self.load_downtown(router)
        # Hysteresis: one over-threshold boundary is not evidence enough.
        assert router.maybe_rebalance() is False
        assert len(router.shards) == 4
        assert router.maybe_rebalance() is True
        assert len(router.shards) == 5
        assert router.grid.kind == "kd"  # first split converts uniform -> kd

    def test_split_respects_the_shard_cap(self):
        router = self.make_router(max_shards=4, min_shards=4, rebalance_threshold=1.5)
        self.load_downtown(router)
        for _ in range(4):
            assert router.maybe_rebalance() is False
        assert len(router.shards) == 4

    def test_cold_siblings_merge_only_after_patience(self):
        # At the cap, so the hot downtown shard cannot split; the empty
        # sibling pair on the cold side must merge instead.
        router = self.make_router(max_shards=4)
        self.load_downtown(router)
        assert router.maybe_rebalance() is False
        assert len(router.shards) == 4
        assert router.maybe_rebalance() is True
        assert len(router.shards) == 3
        # Every record survived the shrink.
        assert sum(len(shard.index) for shard in router.shards) == 30

    def test_merge_respects_the_shard_floor(self):
        router = self.make_router(max_shards=4, min_shards=4)
        self.load_downtown(router)
        for _ in range(4):
            assert router.maybe_rebalance() is False
        assert len(router.shards) == 4

    def test_grow_to_floor_is_unconditional(self):
        router = self.make_router(num_shards=2, min_shards=4)
        router.insert(MotionPath(Point(100.0, 100.0), Point(120.0, 120.0)))
        # One split per boundary, no patience, no load threshold.
        assert router.maybe_rebalance() is True
        assert len(router.shards) == 3
        assert router.maybe_rebalance() is True
        assert len(router.shards) == 4

    def test_empty_fleet_proposes_nothing(self):
        router = self.make_router(min_shards=6)
        for _ in range(3):
            assert router.maybe_rebalance() is False
        assert len(router.shards) == 4  # nothing to split against yet

    def test_decisions_ignore_wall_clock_noise(self):
        """Two routers fed identical streams but wildly different measured
        epoch seconds must make identical decisions: the cost model reads
        only stream-deterministic signals."""
        decisions = []
        for noise in (0.001, 37.0):
            router = self.make_router(max_shards=9, rebalance_threshold=1.5)
            self.load_downtown(router)
            outcome = []
            for _ in range(4):
                router.note_epoch_seconds(noise)
                outcome.append((router.maybe_rebalance(), router.grid.describe()))
            decisions.append(outcome)
        assert decisions[0] == decisions[1]

    def test_epoch_seconds_surface_in_statistics(self):
        router = self.make_router(max_shards=9)
        self.load_downtown(router, count=5)
        router.note_epoch_seconds(0.25)
        stats = router.shard_statistics()
        assert stats["max_shard_epoch_seconds"] > 0.0
        assert stats["mean_shard_epoch_seconds"] > 0.0
        assert stats["max_shard_epoch_seconds"] >= stats["mean_shard_epoch_seconds"]


def fleet_state(router: ShardRouter) -> Dict:
    """Canonical snapshot including *placement* (shard-by-shard contents)."""
    return {
        "grid": router.grid.describe(),
        "owners": sorted(
            (path_id, shard.shard_id) for path_id, shard in router.owners.items()
        ),
        "per_shard": [
            sorted(record.path_id for record in shard.index.records)
            for shard in router.shards
        ],
        "records": sorted(
            (
                record.path_id,
                record.path.start.as_tuple(),
                record.path.end.as_tuple(),
                record.created_at,
            )
            for record in router.index.records
        ),
        "hotness": sorted(router.hotness.items()),
        "pending_events": router.hotness.pending_events,
        "ledger": {
            key: sorted(entries) for key, entries in router.boundary_ledger.items()
        },
    }


class TestBudgetedMigration:
    """The incremental protocol: bounded, convergent, and handoff-exact."""

    @staticmethod
    def seeded_router(migration_budget: int) -> ShardRouter:
        router = ShardRouter(
            BOUNDS, 60, 32, 4, elastic="auto", migration_budget=migration_budget,
            max_shards=9,
        )
        rng = random.Random(11)
        for step in range(24):
            start = Point(rng.uniform(0.0, 1000.0), rng.uniform(0.0, 1000.0))
            end = Point(
                min(max(start.x + rng.uniform(-300.0, 300.0), 0.0), 1000.0),
                min(max(start.y + rng.uniform(-300.0, 300.0), 0.0), 1000.0),
            )
            if end == start:
                continue
            record = router.insert(MotionPath(start, end))
            router.hotness.record_crossing(record.path_id, step % 5)
        return router

    def test_budget_bounds_the_per_boundary_work_and_converges(self):
        router = self.seeded_router(migration_budget=5)
        records = len(router.owners)
        assert router.rebalance() is True  # starts the migration
        assert router.migrations_started == 1
        assert router._migration is not None
        assert router.rebalances == 0  # not handed off yet
        boundaries = 0
        while router._migration is not None:
            router.maybe_rebalance()
            assert router.last_migration_moved <= 5  # no inserts: budget only
            boundaries += 1
            assert boundaries <= -(-records // 5), "missed the convergence bound"
        assert router.rebalances == 1
        assert len(router.shards) == 5
        assert router.records_migrated_total == records
        assert router.shard_statistics()["migration_active"] == 0.0

    def test_handoff_state_equals_stop_the_world(self):
        """The whole correctness argument in one assertion: after handoff,
        the budgeted fleet is *identical* — placement included — to a
        stop-the-world migration onto the same partition."""
        budgeted = self.seeded_router(migration_budget=4)
        immediate = self.seeded_router(migration_budget=0)
        target = budgeted.grid.split(2, budgeted._endpoint_samples())
        assert budgeted.rebalance(target) is True
        while budgeted._migration is not None:
            budgeted.maybe_rebalance()
        assert immediate.rebalance(target) is True
        assert fleet_state(budgeted) == fleet_state(immediate)

    def test_deletions_unwind_warmed_records(self):
        """Deleting a record mid-migration must remove it from the shadow
        fleet too — otherwise the handoff resurrects it."""
        router = self.seeded_router(migration_budget=6)
        assert router.rebalance() is True
        router.maybe_rebalance()  # warm one boundary's worth
        migration = router._migration
        assert migration is not None and migration.shadow_owners
        warmed_id = next(iter(migration.shadow_owners))
        survivors = len(router.owners) - 1
        router.delete(warmed_id)
        assert warmed_id not in migration.shadow_owners
        while router._migration is not None:
            router.maybe_rebalance()
        assert len(router.owners) == survivors
        assert warmed_id not in router.owners
        assert sorted(r.path_id for r in router.index.records) == sorted(
            router.owners
        )

    def test_churn_cannot_stall_the_migration(self):
        """Inserts during the migration are warmed *on top of* the budget
        (the churn top-up), so a stream inserting faster than the budget
        still converges within the pre-migration backlog bound."""
        router = self.seeded_router(migration_budget=3)
        backlog = len(router.owners)
        assert router.rebalance() is True
        rng = random.Random(23)
        boundaries = 0
        while router._migration is not None:
            for _ in range(8):  # churn well above the budget of 3
                start = Point(rng.uniform(0.0, 1000.0), rng.uniform(0.0, 1000.0))
                router.insert(MotionPath(start, Point(start.x + 3.0, start.y + 3.0)))
            router.maybe_rebalance()
            boundaries += 1
            assert boundaries <= -(-backlog // 3), "churn stalled the migration"
        assert router.rebalances == 1

    def test_second_rebalance_force_completes_the_inflight_migration(self):
        router = self.seeded_router(migration_budget=4)
        assert router.rebalance() is True
        router.maybe_rebalance()
        assert router._migration is not None
        grown = router._migration.target.num_shards
        assert router.rebalance() is True  # completes, then starts/applies next
        assert len(router.shards) >= grown
        assert router.rebalances >= 1

    def test_migration_counters_flow_into_the_epoch_delta(self):
        """``EpochDelta.records_migrated``/``migration_active`` reflect the
        boundary's warming progress through a full coordinator."""
        coordinator = make_elastic_coordinator(migration_budget=4)
        stream = skewed_stream(seed=7, epochs=5)
        migrated, active_epochs = 0, 0
        try:
            for index, (boundary, states) in enumerate(stream):
                if index == 1:
                    assert coordinator.router.rebalance() is True
                for state in states:
                    coordinator.submit_state(state)
                outcome = coordinator.run_epoch(boundary)
                delta = outcome.delta
                if delta is not None:
                    migrated += delta.records_migrated
                    active_epochs += int(delta.migration_active)
        finally:
            coordinator.close()
        assert migrated > 0
        assert active_epochs >= 1
