"""Unit tests for the road network model and the synthetic generator."""

from __future__ import annotations

import pytest

from repro.core.errors import ConfigurationError
from repro.core.geometry import Point
from repro.network.generator import NetworkConfig, SyntheticRoadNetworkGenerator
from repro.network.road_network import RoadClass, RoadNetwork


class TestRoadNetworkConstruction:
    def test_add_node_and_lookup(self):
        network = RoadNetwork()
        network.add_node(1, Point(5.0, 5.0))
        assert network.num_nodes == 1
        assert network.node(1).location == Point(5.0, 5.0)

    def test_duplicate_node_rejected(self):
        network = RoadNetwork()
        network.add_node(1, Point(0.0, 0.0))
        with pytest.raises(ConfigurationError):
            network.add_node(1, Point(1.0, 1.0))

    def test_link_requires_existing_nodes(self):
        network = RoadNetwork()
        network.add_node(1, Point(0.0, 0.0))
        with pytest.raises(ConfigurationError):
            network.add_link(1, 2)

    def test_self_loop_rejected(self):
        network = RoadNetwork()
        network.add_node(1, Point(0.0, 0.0))
        with pytest.raises(ConfigurationError):
            network.add_link(1, 1)

    def test_unknown_node_lookup(self):
        with pytest.raises(ConfigurationError):
            RoadNetwork().node(7)

    def test_unknown_link_lookup(self):
        with pytest.raises(ConfigurationError):
            RoadNetwork().link(7)

    def test_link_default_weight_follows_class(self, tiny_manual_network):
        motorway = tiny_manual_network.link(0)
        secondary = tiny_manual_network.link(2)
        assert motorway.road_class is RoadClass.MOTORWAY
        assert motorway.weight > secondary.weight

    def test_explicit_weight_override(self):
        network = RoadNetwork()
        network.add_node(0, Point(0.0, 0.0))
        network.add_node(1, Point(1.0, 0.0))
        link = network.add_link(0, 1, RoadClass.SECONDARY, weight=42.0)
        assert link.weight == 42.0

    def test_other_end(self, tiny_manual_network):
        link = tiny_manual_network.link(0)
        assert link.other_end(0) == 1
        assert link.other_end(1) == 0
        with pytest.raises(ConfigurationError):
            link.other_end(3)


class TestRoadNetworkGeometry:
    def test_link_length(self, tiny_manual_network):
        assert tiny_manual_network.link_length(0) == pytest.approx(100.0)

    def test_position_along(self, tiny_manual_network):
        point = tiny_manual_network.position_along(0, from_node=0, distance=25.0)
        assert point == Point(25.0, 0.0)

    def test_position_along_clamps_to_link(self, tiny_manual_network):
        point = tiny_manual_network.position_along(0, from_node=0, distance=500.0)
        assert point == Point(100.0, 0.0)

    def test_position_along_from_other_end(self, tiny_manual_network):
        point = tiny_manual_network.position_along(0, from_node=1, distance=25.0)
        assert point == Point(75.0, 0.0)

    def test_bounding_box(self, tiny_manual_network):
        box = tiny_manual_network.bounding_box()
        assert box.low == Point(0.0, 0.0)
        assert box.high == Point(100.0, 100.0)

    def test_bounding_box_empty_network(self):
        with pytest.raises(ConfigurationError):
            RoadNetwork().bounding_box()

    def test_total_length(self, tiny_manual_network):
        assert tiny_manual_network.total_length() == pytest.approx(400.0)


class TestLinkSelection:
    def test_choice_weights_sum_to_one(self, tiny_manual_network):
        weighted = tiny_manual_network.link_choice_weights(0)
        assert sum(probability for _, probability in weighted) == pytest.approx(1.0)

    def test_motorway_has_higher_probability(self, tiny_manual_network):
        weighted = dict(
            (link.road_class, probability)
            for link, probability in tiny_manual_network.link_choice_weights(0)
        )
        assert weighted[RoadClass.MOTORWAY] > weighted[RoadClass.SECONDARY]

    def test_isolated_node_has_no_choices(self):
        network = RoadNetwork()
        network.add_node(0, Point(0.0, 0.0))
        assert network.link_choice_weights(0) == []

    def test_degree(self, tiny_manual_network):
        assert tiny_manual_network.degree(0) == 2


class TestConnectivityAndHistogram:
    def test_manual_network_is_connected(self, tiny_manual_network):
        assert tiny_manual_network.is_connected()

    def test_disconnected_network_detected(self):
        network = RoadNetwork()
        network.add_node(0, Point(0.0, 0.0))
        network.add_node(1, Point(1.0, 0.0))
        network.add_node(2, Point(5.0, 5.0))
        network.add_link(0, 1)
        assert not network.is_connected()

    def test_empty_network_is_connected(self):
        assert RoadNetwork().is_connected()

    def test_class_histogram(self, tiny_manual_network):
        histogram = tiny_manual_network.class_histogram()
        assert histogram[RoadClass.MOTORWAY] == 1
        assert histogram[RoadClass.SECONDARY] == 2


class TestSyntheticGenerator:
    def test_invalid_config(self):
        with pytest.raises(ConfigurationError):
            NetworkConfig(grid_nodes_per_axis=1)
        with pytest.raises(ConfigurationError):
            NetworkConfig(area_size=-1.0)
        with pytest.raises(ConfigurationError):
            NetworkConfig(jitter_fraction=0.7)

    def test_node_and_link_counts(self):
        config = NetworkConfig(grid_nodes_per_axis=10, seed=1)
        network = SyntheticRoadNetworkGenerator(config).generate()
        assert network.num_nodes == 100
        # Grid links: 2 * n * (n - 1) = 180, plus optional diagonals.
        assert network.num_links >= 180

    def test_generated_network_is_connected(self, small_network):
        assert small_network.is_connected()

    def test_all_road_classes_present(self, small_network):
        histogram = small_network.class_histogram()
        assert histogram[RoadClass.MOTORWAY] > 0
        assert histogram[RoadClass.HIGHWAY] > 0
        assert histogram[RoadClass.PRIMARY] > 0
        assert histogram[RoadClass.SECONDARY] > 0

    def test_nodes_stay_inside_area(self, small_network):
        box = small_network.bounding_box()
        assert box.low.x >= 0.0 and box.low.y >= 0.0
        assert box.high.x <= 2000.0 and box.high.y <= 2000.0

    def test_determinism(self):
        config = NetworkConfig(grid_nodes_per_axis=8, seed=11)
        first = SyntheticRoadNetworkGenerator(config).generate()
        second = SyntheticRoadNetworkGenerator(config).generate()
        assert first.num_nodes == second.num_nodes
        assert first.num_links == second.num_links
        assert [node.location for node in first.nodes()] == [
            node.location for node in second.nodes()
        ]

    def test_different_seeds_differ(self):
        first = SyntheticRoadNetworkGenerator(NetworkConfig(grid_nodes_per_axis=8, seed=1)).generate()
        second = SyntheticRoadNetworkGenerator(NetworkConfig(grid_nodes_per_axis=8, seed=2)).generate()
        assert [node.location for node in first.nodes()] != [
            node.location for node in second.nodes()
        ]

    def test_paper_scale_counts(self):
        """At the paper's scale (33x33 grid) node/link counts are close to Athens'."""
        config = NetworkConfig(grid_nodes_per_axis=33, seed=7, diagonal_fraction=0.0)
        network = SyntheticRoadNetworkGenerator(config).generate()
        assert network.num_nodes == 1089  # paper: 1125 nodes
        assert network.num_links == 2 * 33 * 32  # 2112; paper: 1831 links
