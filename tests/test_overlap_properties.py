"""Property-based tests for :mod:`repro.coordinator.overlaps`.

Random FSA maps (drawn from a small coordinate pool so rectangles routinely
overlap, nest, touch edge-to-edge or collapse to points) are checked against
a brute-force *all-subsets* reference: every non-empty subset of FSAs whose
common intersection is non-empty — positive-area for derived (multi-member)
subsets — is a region, carrying the exact intersection rectangle.  This
mirrors ``tests/test_grid_index_properties.py`` for the overlap structure and
pins the set-function property the sharded overlap stage relies on: below the
region cap, the structure is a pure function of the FSA *set*, independent of
insertion order.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, FrozenSet, List, Optional, Tuple

from hypothesis import given, settings, strategies as st

from repro.core.geometry import Point, Rectangle
from repro.coordinator.overlaps import FsaOverlapStructure

# Deliberately coarse pool: values collide, producing identical FSAs, nested
# FSAs, edge-adjacent FSAs (zero-area intersections) and degenerate FSAs.
coordinate_pool = st.sampled_from([0.0, 2.0, 4.0, 5.0, 8.0, 10.0])


@st.composite
def rectangles(draw) -> Rectangle:
    x_low, x_high = sorted((draw(coordinate_pool), draw(coordinate_pool)))
    y_low, y_high = sorted((draw(coordinate_pool), draw(coordinate_pool)))
    return Rectangle(Point(x_low, y_low), Point(x_high, y_high))


fsa_maps = st.dictionaries(
    st.integers(min_value=0, max_value=5), rectangles(), min_size=1, max_size=6
)
query_points = st.builds(Point, coordinate_pool, coordinate_pool)


def reference_regions(fsas: Dict[int, Rectangle]) -> Dict[FrozenSet[int], Rectangle]:
    """All-subsets reference: exponential, exact, order-free."""
    regions: Dict[FrozenSet[int], Rectangle] = {}
    for size in range(1, len(fsas) + 1):
        for combo in combinations(fsas, size):
            rect: Optional[Rectangle] = fsas[combo[0]]
            for object_id in combo[1:]:
                rect = rect.intersection(fsas[object_id])
                if rect is None:
                    break
            if rect is None or (size > 1 and rect.is_degenerate()):
                continue
            regions[frozenset(combo)] = rect
    return regions


def stored_regions(structure: FsaOverlapStructure) -> Dict[FrozenSet[int], Rectangle]:
    return {region.members: region.rectangle for region in structure.regions()}


class TestAgainstAllSubsetsReference:
    @settings(max_examples=150, deadline=None)
    @given(fsa_maps)
    def test_regions_match_reference(self, fsas):
        structure = FsaOverlapStructure.build(fsas)
        assert stored_regions(structure) == reference_regions(fsas)

    @settings(max_examples=100, deadline=None)
    @given(fsa_maps)
    def test_region_set_is_insertion_order_independent(self, fsas):
        forward = FsaOverlapStructure.build(fsas)
        backward = FsaOverlapStructure()
        for object_id in reversed(list(fsas)):
            backward.add(object_id, fsas[object_id])
        assert stored_regions(forward) == stored_regions(backward)

    @settings(max_examples=150, deadline=None)
    @given(fsa_maps, query_points)
    def test_smallest_region_containing_matches_reference(self, fsas, point):
        structure = FsaOverlapStructure.build(fsas)
        reference = reference_regions(fsas)
        containing = [
            (rect, members)
            for members, rect in reference.items()
            if rect.contains_point(point)
        ]
        region = structure.smallest_region_containing(point)
        if not containing:
            assert region is None
            return
        best_area = min(rect.area for rect, _ in containing)
        best_count = max(
            len(members) for rect, members in containing if rect.area == best_area
        )
        assert region is not None
        assert region.rectangle.contains_point(point)
        assert reference[region.members] == region.rectangle
        assert region.rectangle.area == best_area
        assert region.count == best_count

    @settings(max_examples=150, deadline=None)
    @given(fsa_maps, rectangles())
    def test_hottest_region_intersecting_matches_reference(self, fsas, query):
        structure = FsaOverlapStructure.build(fsas)
        reference = reference_regions(fsas)
        intersecting = [
            (rect, members)
            for members, rect in reference.items()
            if rect.intersects(query)
        ]
        region = structure.hottest_region_intersecting(query)
        if not intersecting:
            assert region is None
            return
        best_count = max(len(members) for _, members in intersecting)
        best_area = min(
            rect.area for rect, members in intersecting if len(members) == best_count
        )
        assert region is not None
        assert reference[region.members] == region.rectangle
        assert region.count == best_count
        assert region.rectangle.area == best_area

    @settings(max_examples=150, deadline=None)
    @given(fsa_maps, query_points)
    def test_smallest_region_count_bounds_covering_fsas(self, fsas, point):
        """The deepest positive-area overlap never claims more members than
        there are FSAs covering the point (the paper's hotness bound)."""
        structure = FsaOverlapStructure.build(fsas)
        region = structure.smallest_region_containing(point)
        covering = sum(1 for fsa in fsas.values() if fsa.contains_point(point))
        if region is not None:
            assert region.count <= covering


class TestHardCapProperties:
    @settings(max_examples=150, deadline=None)
    @given(fsa_maps, st.integers(min_value=1, max_value=8))
    def test_never_exceeds_cap(self, fsas, max_regions):
        structure = FsaOverlapStructure.build(fsas, max_regions=max_regions)
        assert len(structure) <= max_regions

    @settings(max_examples=100, deadline=None)
    @given(fsa_maps, st.integers(min_value=1, max_value=8))
    def test_capped_regions_are_a_reference_subset(self, fsas, max_regions):
        """The cap may drop regions but never invents or distorts one."""
        structure = FsaOverlapStructure.build(fsas, max_regions=max_regions)
        reference = reference_regions(fsas)
        for members, rect in stored_regions(structure).items():
            assert reference[members] == rect

    @settings(max_examples=100, deadline=None)
    @given(fsa_maps, st.integers(min_value=1, max_value=8))
    def test_capped_build_is_deterministic(self, fsas, max_regions):
        first = FsaOverlapStructure.build(fsas, max_regions=max_regions)
        second = FsaOverlapStructure.build(fsas, max_regions=max_regions)
        assert [(r.members, r.rectangle) for r in first.regions()] == [
            (r.members, r.rectangle) for r in second.regions()
        ]
