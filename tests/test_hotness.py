"""Unit tests for :mod:`repro.coordinator.hotness`."""

from __future__ import annotations

import pytest

from repro.core.errors import ConfigurationError
from repro.coordinator.hotness import HotnessTracker


class TestConstruction:
    def test_invalid_window_rejected(self):
        with pytest.raises(ConfigurationError):
            HotnessTracker(0)

    def test_empty_tracker(self):
        tracker = HotnessTracker(10)
        assert len(tracker) == 0
        assert tracker.hotness(3) == 0
        assert tracker.pending_events == 0
        assert tracker.total_crossings() == 0


class TestRecording:
    def test_record_increments_hotness(self):
        tracker = HotnessTracker(10)
        assert tracker.record_crossing(1, t_end=0) == 1
        assert tracker.record_crossing(1, t_end=2) == 2
        assert tracker.hotness(1) == 2

    def test_record_multiple_paths(self):
        tracker = HotnessTracker(10)
        tracker.record_crossing(1, 0)
        tracker.record_crossing(2, 0)
        tracker.record_crossing(2, 1)
        assert tracker.hotness(1) == 1
        assert tracker.hotness(2) == 2
        assert len(tracker) == 2
        assert tracker.total_crossings() == 3

    def test_contains(self):
        tracker = HotnessTracker(10)
        tracker.record_crossing(5, 0)
        assert 5 in tracker
        assert 6 not in tracker

    def test_items(self):
        tracker = HotnessTracker(10)
        tracker.record_crossing(1, 0)
        tracker.record_crossing(2, 0)
        assert dict(tracker.items()) == {1: 1, 2: 1}


class TestExpiry:
    def test_crossing_expires_after_window(self):
        tracker = HotnessTracker(window=10)
        tracker.record_crossing(1, t_end=5)
        assert tracker.advance_time(14) == []
        assert tracker.hotness(1) == 1
        vanished = tracker.advance_time(15)
        assert vanished == [1]
        assert tracker.hotness(1) == 0
        assert len(tracker) == 0

    def test_partial_expiry_keeps_path_alive(self):
        tracker = HotnessTracker(window=10)
        tracker.record_crossing(1, t_end=0)
        tracker.record_crossing(1, t_end=8)
        vanished = tracker.advance_time(10)
        assert vanished == []
        assert tracker.hotness(1) == 1
        vanished = tracker.advance_time(18)
        assert vanished == [1]

    def test_expiry_order_is_by_time(self):
        tracker = HotnessTracker(window=5)
        tracker.record_crossing(1, t_end=10)
        tracker.record_crossing(2, t_end=3)
        vanished = tracker.advance_time(8)
        assert vanished == [2]
        vanished = tracker.advance_time(15)
        assert vanished == [1]

    def test_advance_time_is_idempotent(self):
        tracker = HotnessTracker(window=5)
        tracker.record_crossing(1, t_end=0)
        tracker.advance_time(5)
        assert tracker.advance_time(5) == []
        assert tracker.advance_time(100) == []

    def test_many_crossings_sliding_window(self):
        """A path crossed every timestamp keeps hotness equal to the window length."""
        tracker = HotnessTracker(window=10)
        for t in range(0, 50):
            tracker.record_crossing(1, t_end=t)
            tracker.advance_time(t)
            if t >= 10:
                assert tracker.hotness(1) == 10
        assert tracker.pending_events == 10
