"""Unit tests for :mod:`repro.coordinator.coordinator`."""

from __future__ import annotations

import pytest

from repro.core.errors import ConfigurationError
from repro.core.geometry import Point, Rectangle
from repro.client.state import ObjectState
from repro.coordinator.coordinator import Coordinator, CoordinatorConfig


BOUNDS = Rectangle(Point(0.0, 0.0), Point(1000.0, 1000.0))


def make_coordinator(window: int = 50) -> Coordinator:
    return Coordinator(CoordinatorConfig(bounds=BOUNDS, window=window, cells_per_axis=16))


def state(object_id: int, start: Point, low: Point, high: Point, t_start: int, t_end: int) -> ObjectState:
    return ObjectState(object_id, start, t_start, low, high, t_end)


class TestConfig:
    def test_invalid_window(self):
        with pytest.raises(ConfigurationError):
            CoordinatorConfig(bounds=BOUNDS, window=0)


class TestEpochProcessing:
    def test_empty_epoch(self):
        coordinator = make_coordinator()
        outcome = coordinator.run_epoch(10)
        assert outcome.responses == []
        assert outcome.states_processed == 0
        assert coordinator.index_size() == 0
        assert coordinator.epochs_processed == 1

    def test_states_are_consumed_by_epoch(self):
        coordinator = make_coordinator()
        coordinator.submit_state(
            state(1, Point(100.0, 100.0), Point(150.0, 150.0), Point(170.0, 170.0), 0, 8)
        )
        assert coordinator.pending_states == 1
        outcome = coordinator.run_epoch(10)
        assert coordinator.pending_states == 0
        assert outcome.states_processed == 1
        assert len(outcome.responses) == 1
        assert outcome.responses[0].object_id == 1
        assert coordinator.index_size() == 1

    def test_processing_time_recorded(self):
        coordinator = make_coordinator()
        coordinator.submit_state(
            state(1, Point(100.0, 100.0), Point(150.0, 150.0), Point(170.0, 170.0), 0, 8)
        )
        outcome = coordinator.run_epoch(10)
        assert outcome.processing_seconds >= 0.0
        assert coordinator.total_processing_seconds >= outcome.processing_seconds
        assert coordinator.mean_processing_seconds_per_epoch > 0.0

    def test_two_objects_same_start_share_path(self):
        coordinator = make_coordinator()
        coordinator.submit_state(
            state(1, Point(100.0, 100.0), Point(150.0, 150.0), Point(175.0, 175.0), 0, 8)
        )
        coordinator.submit_state(
            state(2, Point(100.0, 100.0), Point(160.0, 160.0), Point(185.0, 185.0), 0, 9)
        )
        coordinator.run_epoch(10)
        assert coordinator.index_size() == 1
        (record, hotness), = coordinator.hot_paths()
        assert hotness == 2


class TestWindowExpiry:
    def test_paths_expire_and_are_removed_from_index(self):
        coordinator = make_coordinator(window=20)
        coordinator.submit_state(
            state(1, Point(100.0, 100.0), Point(150.0, 150.0), Point(170.0, 170.0), 0, 5)
        )
        coordinator.run_epoch(10)
        assert coordinator.index_size() == 1

        # The crossing ended at t=5, so it expires at t=25.
        outcome = coordinator.run_epoch(24)
        assert outcome.paths_expired == 0
        assert coordinator.index_size() == 1

        outcome = coordinator.run_epoch(30)
        assert outcome.paths_expired == 1
        assert coordinator.index_size() == 0
        assert coordinator.hot_paths() == []

    def test_repeated_crossings_keep_path_alive(self):
        coordinator = make_coordinator(window=20)
        for t_end in (5, 15, 25):
            coordinator.submit_state(
                state(1, Point(100.0, 100.0), Point(150.0, 150.0), Point(170.0, 170.0), t_end - 5, t_end)
            )
            coordinator.run_epoch(t_end + 1)
        assert coordinator.index_size() == 1
        (_, hotness), = coordinator.hot_paths()
        assert hotness >= 2


class TestEpochBoundaries:
    """Edge cases at epoch boundaries: the expiry clock and odd submit orders."""

    def test_expiry_exactly_at_window_boundary(self):
        # A crossing that ended at t=5 with W=20 schedules its decrement at
        # t=25; the paper's window is inclusive-exclusive, so an epoch running
        # exactly at t=25 must already expire it.
        coordinator = make_coordinator(window=20)
        coordinator.submit_state(
            state(1, Point(100.0, 100.0), Point(150.0, 150.0), Point(170.0, 170.0), 0, 5)
        )
        coordinator.run_epoch(10)
        outcome = coordinator.run_epoch(25)
        assert outcome.paths_expired == 1
        assert coordinator.index_size() == 0

    def test_empty_epoch_between_active_ones(self):
        coordinator = make_coordinator(window=50)
        coordinator.submit_state(
            state(1, Point(100.0, 100.0), Point(150.0, 150.0), Point(170.0, 170.0), 0, 5)
        )
        coordinator.run_epoch(10)
        before = coordinator.hot_paths()
        outcome = coordinator.run_epoch(20)
        assert outcome.states_processed == 0
        assert outcome.responses == []
        assert outcome.paths_expired == 0
        assert coordinator.hot_paths() == before
        assert coordinator.epochs_processed == 2

    def test_out_of_order_submit_timestamps(self):
        # Two objects report within the same epoch with decreasing t_end; both
        # must be processed, and each crossing expires by its own t_end.
        coordinator = make_coordinator(window=20)
        coordinator.submit_state(
            state(1, Point(100.0, 100.0), Point(150.0, 150.0), Point(170.0, 170.0), 4, 9)
        )
        coordinator.submit_state(
            state(2, Point(700.0, 700.0), Point(720.0, 720.0), Point(740.0, 740.0), 0, 3)
        )
        outcome = coordinator.run_epoch(10)
        assert outcome.states_processed == 2
        assert [r.object_id for r in outcome.responses] == [1, 2]
        # Object 2's crossing (t_end=3) expires at 23, object 1's at 29.
        outcome = coordinator.run_epoch(25)
        assert outcome.paths_expired == 1
        assert coordinator.index_size() == 1
        outcome = coordinator.run_epoch(30)
        assert outcome.paths_expired == 1
        assert coordinator.index_size() == 0

    def test_state_submitted_during_epoch_gap_waits_for_next_epoch(self):
        coordinator = make_coordinator()
        coordinator.run_epoch(10)
        coordinator.submit_state(
            state(1, Point(100.0, 100.0), Point(150.0, 150.0), Point(170.0, 170.0), 11, 14)
        )
        assert coordinator.pending_states == 1
        outcome = coordinator.run_epoch(20)
        assert outcome.states_processed == 1
        assert coordinator.pending_states == 0


class TestShardedCoordinatorSurface:
    """The sharded coordinator exposes the same protocol surface."""

    def _sharded(self, num_shards: int = 4) -> Coordinator:
        return Coordinator(
            CoordinatorConfig(bounds=BOUNDS, window=50, cells_per_axis=16, num_shards=num_shards)
        )

    def test_invalid_num_shards(self):
        with pytest.raises(ConfigurationError):
            CoordinatorConfig(bounds=BOUNDS, num_shards=0)

    def test_sharded_epoch_round_trip(self):
        coordinator = self._sharded()
        # One object per 2x2 shard, plus one whose FSA straddles the centre.
        for object_id, (x, y) in enumerate(
            [(100.0, 100.0), (900.0, 100.0), (100.0, 900.0), (900.0, 900.0), (480.0, 480.0)]
        ):
            coordinator.submit_state(
                state(object_id, Point(x, y), Point(x + 40.0, y + 40.0), Point(x + 80.0, y + 80.0), 0, 8)
            )
        outcome = coordinator.run_epoch(10)
        assert outcome.states_processed == 5
        assert len(outcome.responses) == 5
        assert coordinator.index_size() == len(list(coordinator.index.records))
        stats = coordinator.shard_statistics()
        assert stats["num_shards"] == 4
        assert stats["total_records"] == coordinator.index_size()

    def test_sharded_expiry_drains_all_shards(self):
        coordinator = self._sharded()
        for object_id, (x, y) in enumerate([(100.0, 100.0), (900.0, 900.0)]):
            coordinator.submit_state(
                state(object_id, Point(x, y), Point(x + 40.0, y + 40.0), Point(x + 60.0, y + 60.0), 0, 5)
            )
        coordinator.run_epoch(10)
        assert coordinator.index_size() == 2
        outcome = coordinator.run_epoch(60)
        assert outcome.paths_expired == 2
        assert coordinator.index_size() == 0
        assert coordinator.hotness.pending_events == 0

    def test_single_shard_statistics_fallback(self):
        coordinator = make_coordinator()
        stats = coordinator.shard_statistics()
        assert stats["num_shards"] == 1
        assert stats["total_records"] == coordinator.index_size()


class TestTopK:
    def _populate(self, coordinator: Coordinator) -> None:
        # Three objects share a start and a long FSA; one object goes elsewhere.
        for object_id in (1, 2, 3):
            coordinator.submit_state(
                state(object_id, Point(100.0, 100.0), Point(300.0, 300.0), Point(320.0, 320.0), 0, 9)
            )
        coordinator.submit_state(
            state(4, Point(700.0, 700.0), Point(720.0, 720.0), Point(740.0, 740.0), 0, 9)
        )
        coordinator.run_epoch(10)

    def test_top_k_orders_by_hotness(self):
        coordinator = make_coordinator()
        self._populate(coordinator)
        top = coordinator.top_k(2)
        assert len(top) == 2
        assert top[0].hotness >= top[1].hotness
        assert top[0].hotness == 3

    def test_top_k_score_positive(self):
        coordinator = make_coordinator()
        self._populate(coordinator)
        assert coordinator.top_k_score(2) > 0.0

    def test_top_k_more_than_paths(self):
        coordinator = make_coordinator()
        self._populate(coordinator)
        assert len(coordinator.top_k(100)) == coordinator.index_size()
