"""Unit tests for :mod:`repro.coordinator.coordinator`."""

from __future__ import annotations

import pytest

from repro.core.errors import ConfigurationError
from repro.core.geometry import Point, Rectangle
from repro.client.state import ObjectState
from repro.coordinator.coordinator import Coordinator, CoordinatorConfig


BOUNDS = Rectangle(Point(0.0, 0.0), Point(1000.0, 1000.0))


def make_coordinator(window: int = 50) -> Coordinator:
    return Coordinator(CoordinatorConfig(bounds=BOUNDS, window=window, cells_per_axis=16))


def state(object_id: int, start: Point, low: Point, high: Point, t_start: int, t_end: int) -> ObjectState:
    return ObjectState(object_id, start, t_start, low, high, t_end)


class TestConfig:
    def test_invalid_window(self):
        with pytest.raises(ConfigurationError):
            CoordinatorConfig(bounds=BOUNDS, window=0)


class TestEpochProcessing:
    def test_empty_epoch(self):
        coordinator = make_coordinator()
        outcome = coordinator.run_epoch(10)
        assert outcome.responses == []
        assert outcome.states_processed == 0
        assert coordinator.index_size() == 0
        assert coordinator.epochs_processed == 1

    def test_states_are_consumed_by_epoch(self):
        coordinator = make_coordinator()
        coordinator.submit_state(
            state(1, Point(100.0, 100.0), Point(150.0, 150.0), Point(170.0, 170.0), 0, 8)
        )
        assert coordinator.pending_states == 1
        outcome = coordinator.run_epoch(10)
        assert coordinator.pending_states == 0
        assert outcome.states_processed == 1
        assert len(outcome.responses) == 1
        assert outcome.responses[0].object_id == 1
        assert coordinator.index_size() == 1

    def test_processing_time_recorded(self):
        coordinator = make_coordinator()
        coordinator.submit_state(
            state(1, Point(100.0, 100.0), Point(150.0, 150.0), Point(170.0, 170.0), 0, 8)
        )
        outcome = coordinator.run_epoch(10)
        assert outcome.processing_seconds >= 0.0
        assert coordinator.total_processing_seconds >= outcome.processing_seconds
        assert coordinator.mean_processing_seconds_per_epoch > 0.0

    def test_two_objects_same_start_share_path(self):
        coordinator = make_coordinator()
        coordinator.submit_state(
            state(1, Point(100.0, 100.0), Point(150.0, 150.0), Point(175.0, 175.0), 0, 8)
        )
        coordinator.submit_state(
            state(2, Point(100.0, 100.0), Point(160.0, 160.0), Point(185.0, 185.0), 0, 9)
        )
        coordinator.run_epoch(10)
        assert coordinator.index_size() == 1
        (record, hotness), = coordinator.hot_paths()
        assert hotness == 2


class TestWindowExpiry:
    def test_paths_expire_and_are_removed_from_index(self):
        coordinator = make_coordinator(window=20)
        coordinator.submit_state(
            state(1, Point(100.0, 100.0), Point(150.0, 150.0), Point(170.0, 170.0), 0, 5)
        )
        coordinator.run_epoch(10)
        assert coordinator.index_size() == 1

        # The crossing ended at t=5, so it expires at t=25.
        outcome = coordinator.run_epoch(24)
        assert outcome.paths_expired == 0
        assert coordinator.index_size() == 1

        outcome = coordinator.run_epoch(30)
        assert outcome.paths_expired == 1
        assert coordinator.index_size() == 0
        assert coordinator.hot_paths() == []

    def test_repeated_crossings_keep_path_alive(self):
        coordinator = make_coordinator(window=20)
        for t_end in (5, 15, 25):
            coordinator.submit_state(
                state(1, Point(100.0, 100.0), Point(150.0, 150.0), Point(170.0, 170.0), t_end - 5, t_end)
            )
            coordinator.run_epoch(t_end + 1)
        assert coordinator.index_size() == 1
        (_, hotness), = coordinator.hot_paths()
        assert hotness >= 2


class TestTopK:
    def _populate(self, coordinator: Coordinator) -> None:
        # Three objects share a start and a long FSA; one object goes elsewhere.
        for object_id in (1, 2, 3):
            coordinator.submit_state(
                state(object_id, Point(100.0, 100.0), Point(300.0, 300.0), Point(320.0, 320.0), 0, 9)
            )
        coordinator.submit_state(
            state(4, Point(700.0, 700.0), Point(720.0, 720.0), Point(740.0, 740.0), 0, 9)
        )
        coordinator.run_epoch(10)

    def test_top_k_orders_by_hotness(self):
        coordinator = make_coordinator()
        self._populate(coordinator)
        top = coordinator.top_k(2)
        assert len(top) == 2
        assert top[0].hotness >= top[1].hotness
        assert top[0].hotness == 3

    def test_top_k_score_positive(self):
        coordinator = make_coordinator()
        self._populate(coordinator)
        assert coordinator.top_k_score(2) > 0.0

    def test_top_k_more_than_paths(self):
        coordinator = make_coordinator()
        self._populate(coordinator)
        assert len(coordinator.top_k(100)) == coordinator.index_size()
