"""Stitching differential harness: composite corridors must match the seed.

Extends the differential contract of ``tests/test_sharding_equivalence.py``
to the corridor report: a sharded fleet with ``stitching='exact'`` must
produce, after every epoch, exactly the corridors a *global* stitch of the
seed coordinator's hot paths produces — path ids, segment order, geometry,
per-segment hotness, merged hotness and score, bit for bit — for 2x2 and 4x4
grids on every execution backend.

The streams here are *feedback-driven*: each object's next SSA start is the
endpoint the coordinator returned for it, exactly as RayTrace consumes
responses.  That is what makes hot paths chain end-to-start (and therefore
makes the stitch non-trivial); the seed and the sharded coordinators receive
identical streams because their responses are identical (the existing
bit-for-bit contract).  A guard test asserts the streams really do produce
multi-segment, multi-shard corridors — without it the differential would be
vacuous.

``TestStitchingOff`` is the harness's deviation mode, mirroring
``TestOverlapHalo``: ``stitching='off'`` drops the cross-shard welds, and the
truncation is *quantified*, not just allowed — the off corridors must be
exactly the exact corridors cut at shard boundaries, the corridor count must
grow by exactly the number of dropped boundary welds, and the truncation must
be deterministic and backend-independent.
"""

from __future__ import annotations

import random
from typing import Dict, List

import pytest

from repro.core.geometry import Point, Rectangle
from repro.core.motion_path import MotionPath
from repro.client.state import ObjectState
from repro.coordinator.coordinator import Coordinator, CoordinatorConfig
from repro.coordinator.sharding import ShardRouter
from repro.coordinator.stitching import CompositeCorridor, stitch_paths
from repro.network.generator import NetworkConfig
from repro.simulation.engine import HotPathSimulation, SimulationConfig

BOUNDS = Rectangle(Point(0.0, 0.0), Point(1000.0, 1000.0))
SHARD_COUNTS = (4, 16)  # 2x2 and 4x4
PARALLEL_BACKENDS = ("threads", "processes")
ALL_BACKENDS = ("serial",) + PARALLEL_BACKENDS


def make_coordinator(
    num_shards: int,
    window: int = 120,
    backend: str = "serial",
    stitching: str = "exact",
    epoch_mode: str = "delta",
    partition: str = "uniform",
    rebalance_threshold: float = 2.0,
) -> Coordinator:
    return Coordinator(
        CoordinatorConfig(
            bounds=BOUNDS,
            window=window,
            cells_per_axis=32,
            num_shards=num_shards,
            backend=backend,
            stitching=stitching,
            epoch_mode=epoch_mode,
            partition=partition,
            rebalance_threshold=rebalance_threshold,
        )
    )


def corridor_snapshot(corridors: List[CompositeCorridor]) -> List[tuple]:
    """Canonical bit-for-bit snapshot of a corridor report."""
    return [
        (
            corridor.path_ids,
            tuple(
                (
                    segment.path.start.as_tuple(),
                    segment.path.end.as_tuple(),
                    segment.hotness,
                )
                for segment in corridor.segments
            ),
            corridor.hotness,
            corridor.score,
            corridor.length,
        )
        for corridor in corridors
    ]


def _clamp(value: float, low: float = 0.0, high: float = 1000.0) -> float:
    return min(max(value, low), high)


def feedback_epochs(coordinator: Coordinator, seed: int, epochs: int = 8, objects: int = 14):
    """Drive one feedback epoch at a time, yielding each ``EpochOutcome``.

    Objects random-walk across the whole area (steps up to 240 units cross
    the 4x4 shard borders routinely); each epoch an object reports from the
    endpoint of its previous response, so consecutive paths weld end-to-start.
    Per-step randomness is derived from ``(seed, epoch, object)`` alone, so
    every coordinator sees the identical stream as long as its responses
    match the seed's — which the sharding contract guarantees.
    """
    rng = random.Random(seed)
    position = {
        object_id: Point(rng.uniform(0.0, 1000.0), rng.uniform(0.0, 1000.0))
        for object_id in range(objects)
    }
    for epoch in range(1, epochs + 1):
        boundary = epoch * 10
        for object_id in range(objects):
            step = random.Random(seed * 1_000_003 + epoch * 1009 + object_id)
            start = position[object_id]
            target = Point(
                _clamp(start.x + step.uniform(-240.0, 240.0)),
                _clamp(start.y + step.uniform(-240.0, 240.0)),
            )
            fsa = Rectangle.from_center(target, step.uniform(8.0, 60.0))
            t_end = boundary - step.randrange(5)
            coordinator.submit_state(
                ObjectState(object_id, start, max(0, t_end - 5), fsa.low, fsa.high, t_end)
            )
        outcome = coordinator.run_epoch(boundary)
        for response in outcome.responses:
            position[response.object_id] = response.endpoint
        yield outcome


def drive_feedback(
    coordinator: Coordinator, seed: int, epochs: int = 8, objects: int = 14
) -> List[Dict]:
    """Run the feedback stream, snapshotting the corridor report every epoch."""
    trace = []
    try:
        for outcome in feedback_epochs(coordinator, seed, epochs, objects):
            trace.append(
                {
                    "responses": outcome.responses,
                    "corridors": corridor_snapshot(coordinator.hot_corridors()),
                    "top_k_by_hotness": corridor_snapshot(
                        coordinator.top_k_corridors(10)
                    ),
                    "top_k_by_score": corridor_snapshot(
                        coordinator.top_k_corridors(10, by_score=True)
                    ),
                }
            )
    finally:
        coordinator.close()
    return trace


def drive_feedback_no_close(coordinator: Coordinator, seed: int, epochs: int = 8):
    """Feedback-stream variant leaving the coordinator open for inspection.

    Returns the last ``EpochOutcome``.
    """
    outcome = None
    for outcome in feedback_epochs(coordinator, seed, epochs):
        pass
    return outcome


class TestStitchingDifferential:
    """Sharded ``exact`` stitching vs the seed coordinator's global stitch."""

    @pytest.mark.parametrize("seed", [3, 11, 42])
    @pytest.mark.parametrize("num_shards", SHARD_COUNTS)
    def test_stitched_trace_matches_seed(self, num_shards, seed):
        seed_trace = drive_feedback(make_coordinator(1), seed)
        sharded_trace = drive_feedback(make_coordinator(num_shards), seed)
        for epoch, (expected, actual) in enumerate(zip(seed_trace, sharded_trace)):
            assert actual == expected, f"stitching diverged at epoch {epoch}"

    @pytest.mark.parametrize("seed", [11, 42])
    @pytest.mark.parametrize("backend", PARALLEL_BACKENDS)
    @pytest.mark.parametrize("num_shards", SHARD_COUNTS)
    def test_parallel_backend_stitched_trace_matches_seed(self, num_shards, backend, seed):
        """2x2 and 4x4 fleets stitching on the worker-pool backends."""
        seed_trace = drive_feedback(make_coordinator(1), seed)
        parallel_trace = drive_feedback(
            make_coordinator(num_shards, backend=backend), seed
        )
        for epoch, (expected, actual) in enumerate(zip(seed_trace, parallel_trace)):
            assert actual == expected, (
                f"backend={backend} stitching diverged from the seed at epoch {epoch}"
            )

    @pytest.mark.parametrize("seed", [3, 11, 42])
    def test_streams_really_exercise_cross_shard_stitching(self, seed):
        """Guard against a vacuous differential: the feedback streams must
        produce corridors stitched from several paths owned by several
        shards, with real cross-boundary welds."""
        coordinator = make_coordinator(16)
        try:
            drive_feedback_no_close(coordinator, seed)
            corridors = coordinator.hot_corridors()
            # The first query stitched and cached this exact report.
            assert coordinator.hot_corridors() is corridors
            stats = coordinator.router.stitch_stats
            grid = coordinator.router.grid
            multi = [c for c in corridors if c.num_segments > 1]
            cross_shard = [
                corridor
                for corridor in multi
                if len(
                    {
                        grid.shard_id_of(segment.path.start)
                        for segment in corridor.segments
                    }
                )
                > 1
            ]
            assert multi, "no multi-segment corridors — the stream never chained"
            assert cross_shard, "no corridor spans several shards"
            assert stats["boundary_welds"] > 0
            assert stats["corridors"] == len(corridors)
        finally:
            coordinator.close()

    def test_hot_corridors_partition_the_hot_set(self):
        """Every hot path appears in exactly one corridor, on every layout."""
        for num_shards in (1,) + SHARD_COUNTS:
            coordinator = make_coordinator(num_shards)
            try:
                drive_feedback_no_close(coordinator, seed=11)
                hot_ids = sorted(
                    path_id for path_id, _ in coordinator.hotness.items()
                    if path_id in coordinator.index
                )
                corridor_ids = sorted(
                    path_id
                    for corridor in coordinator.hot_corridors()
                    for path_id in corridor.path_ids
                )
                assert corridor_ids == hot_ids
            finally:
                coordinator.close()


class TestIncrementalStitching:
    """``epoch_mode='delta'`` corridor maintenance vs the full rebuild.

    The feedback streams weld consecutive paths end-to-start, so the
    incremental stitcher's chain patching (insert welds, corridor-aware
    expiry, re-welds at touched vertices) is exercised for real — and must
    stay bit-for-bit equal to full mode's per-epoch global rebuild.
    """

    @pytest.mark.parametrize("seed", [3, 11, 42])
    @pytest.mark.parametrize("num_shards", (1,) + SHARD_COUNTS)
    def test_delta_stitched_trace_matches_full(self, num_shards, seed):
        full_trace = drive_feedback(make_coordinator(num_shards, epoch_mode="full"), seed)
        delta_trace = drive_feedback(make_coordinator(num_shards, epoch_mode="delta"), seed)
        for epoch, (expected, actual) in enumerate(zip(full_trace, delta_trace)):
            assert actual == expected, (
                f"delta stitching diverged at epoch {epoch} (shards={num_shards})"
            )

    @pytest.mark.parametrize("backend", PARALLEL_BACKENDS)
    def test_delta_stitching_on_parallel_backends_matches_full(self, backend):
        full_trace = drive_feedback(make_coordinator(16, epoch_mode="full"), 11)
        delta_trace = drive_feedback(
            make_coordinator(16, backend=backend, epoch_mode="delta"), 11
        )
        for epoch, (expected, actual) in enumerate(zip(full_trace, delta_trace)):
            assert actual == expected, f"{backend} delta stitching diverged at {epoch}"

    @pytest.mark.parametrize("num_shards", (1,) + SHARD_COUNTS)
    def test_delta_stitching_under_expiry_matches_full(self, num_shards):
        """A short window tears welded chains down mid-replay: corridor-aware
        expiry must remove exactly the expired fragments from their chains."""
        full_trace = drive_feedback(
            make_coordinator(num_shards, window=25, epoch_mode="full"), 42, epochs=10
        )
        delta = make_coordinator(num_shards, window=25, epoch_mode="delta")
        delta_trace = []
        try:
            for outcome in feedback_epochs(delta, 42, epochs=10):
                delta_trace.append(
                    {
                        "responses": outcome.responses,
                        "corridors": corridor_snapshot(delta.hot_corridors()),
                        "top_k_by_hotness": corridor_snapshot(delta.top_k_corridors(10)),
                        "top_k_by_score": corridor_snapshot(
                            delta.top_k_corridors(10, by_score=True)
                        ),
                    }
                )
        finally:
            stats = delta.shard_statistics()
            delta.close()
        for epoch, (expected, actual) in enumerate(zip(full_trace, delta_trace)):
            assert actual == expected, f"expiry delta stitching diverged at {epoch}"
        assert stats["fragments_removed"] > 0, (
            "window never removed a welded fragment — vacuous scenario"
        )

    def test_delta_stitching_with_kd_rebalance_matches_full(self):
        """Chains survive partition migrations: the stitcher is keyed by path
        geometry, and per-query ownership resolution follows the new owners."""
        full_trace = drive_feedback(make_coordinator(16, epoch_mode="full"), 11)
        delta = make_coordinator(
            16, partition="kd", rebalance_threshold=1.2, epoch_mode="delta"
        )
        delta_trace = []
        try:
            for outcome in feedback_epochs(delta, 11):
                delta_trace.append(
                    {
                        "responses": outcome.responses,
                        "corridors": corridor_snapshot(delta.hot_corridors()),
                        "top_k_by_hotness": corridor_snapshot(delta.top_k_corridors(10)),
                        "top_k_by_score": corridor_snapshot(
                            delta.top_k_corridors(10, by_score=True)
                        ),
                    }
                )
            rebalances = delta.router.rebalances
        finally:
            delta.close()
        for epoch, (expected, actual) in enumerate(zip(full_trace, delta_trace)):
            assert actual == expected, f"kd delta stitching diverged at {epoch}"
        assert rebalances > 0, "no rebalance fired — vacuous scenario"

    def test_incremental_counters_engage_on_feedback_streams(self):
        """The welding workload must drive the patch path, not full rebuilds:
        fragments enter chains, touched chains are re-welded, untouched
        corridors are served from cache."""
        coordinator = make_coordinator(16, epoch_mode="delta")
        try:
            for outcome in feedback_epochs(coordinator, 3):
                coordinator.hot_corridors()
            stats = coordinator.shard_statistics()
        finally:
            coordinator.close()
        assert stats["fragments_added"] > 0
        assert stats["chains_rewelded"] > 0
        assert stats["corridors_reused"] > 0, (
            "every corridor was rebuilt every epoch — no incrementality"
        )


def cut_at_shard_boundaries(
    corridors: List[CompositeCorridor], grid
) -> List[tuple]:
    """Reference truncation: split every corridor where segment ownership
    changes (owner = shard of the segment's start vertex)."""
    pieces = []
    for corridor in corridors:
        piece = [corridor.segments[0]]
        for previous, segment in zip(corridor.segments, corridor.segments[1:]):
            if grid.shard_id_of(previous.path.start) != grid.shard_id_of(
                segment.path.start
            ):
                pieces.append(tuple(piece))
                piece = [segment]
            else:
                piece.append(segment)
        pieces.append(tuple(piece))
    return sorted(
        tuple(segment.path_id for segment in piece) for piece in pieces
    )


class TestStitchingOff:
    """Deviation mode: ``stitching='off'`` truncation, quantified."""

    @pytest.mark.parametrize("seed", [11, 42])
    def test_off_truncation_is_quantified(self, seed):
        """The off report must be exactly the exact report cut at shard
        boundaries: corridor count grows by precisely the number of dropped
        cross-shard welds, and the pieces match segment for segment."""
        exact = make_coordinator(16, stitching="exact")
        off = make_coordinator(16, stitching="off")
        try:
            drive_feedback_no_close(exact, seed)
            drive_feedback_no_close(off, seed)
            exact_corridors = exact.hot_corridors()
            exact_stats = dict(exact.router.stitch_stats)
            off_corridors = off.hot_corridors()
            off_stats = dict(off.router.stitch_stats)

            boundary_welds = exact_stats["boundary_welds"]
            assert boundary_welds > 0, "stream produced no cross-shard welds"
            assert off_stats["boundary_welds"] == boundary_welds
            # Truncation is real and exactly accounted for: one extra
            # corridor per dropped boundary weld, nothing else changes.
            assert len(off_corridors) == len(exact_corridors) + boundary_welds
            off_ids = sorted(corridor.path_ids for corridor in off_corridors)
            assert off_ids == cut_at_shard_boundaries(
                exact_corridors, exact.router.grid
            )
            # Fragment coverage is identical — truncation regroups, never drops.
            assert sorted(
                path_id for c in off_corridors for path_id in c.path_ids
            ) == sorted(path_id for c in exact_corridors for path_id in c.path_ids)
            # Scores are additive, so truncation never *increases* a
            # corridor's score, and the longest chain can only shrink.
            assert max(c.num_segments for c in off_corridors) <= max(
                c.num_segments for c in exact_corridors
            )
            assert max(c.score for c in off_corridors) <= max(
                c.score for c in exact_corridors
            )
        finally:
            exact.close()
            off.close()

    @pytest.mark.parametrize("stitching", ("off", "exact"))
    def test_stitching_is_lazy_until_queried(self, stitching):
        """Epochs that nobody asks corridors of never pay for stitching:
        run_epoch only invalidates the cached report, and the first query
        afterwards stitches once in the configured mode."""
        coordinator = make_coordinator(4, stitching=stitching)
        try:
            drive_feedback_no_close(coordinator, seed=3, epochs=2)
            assert coordinator.router.stitch_stats == {}  # no query yet
            corridors = coordinator.hot_corridors()
            assert corridors
            assert coordinator.router.stitch_stats["mode"] == stitching
            assert coordinator.hot_corridors() is corridors  # cached
        finally:
            coordinator.close()

    @pytest.mark.parametrize("num_shards", SHARD_COUNTS)
    def test_off_is_deterministic_and_backend_independent(self, num_shards):
        reference = None
        for backend in ALL_BACKENDS:
            coordinator = make_coordinator(num_shards, backend=backend, stitching="off")
            try:
                drive_feedback_no_close(coordinator, seed=42)
                snapshot = corridor_snapshot(coordinator.hot_corridors())
            finally:
                coordinator.close()
            if reference is None:
                reference = snapshot
                again = make_coordinator(num_shards, backend=backend, stitching="off")
                try:
                    drive_feedback_no_close(again, seed=42)
                    assert corridor_snapshot(again.hot_corridors()) == reference
                finally:
                    again.close()
            else:
                assert snapshot == reference, (
                    f"off-mode stitching diverged on backend={backend}"
                )

    def test_single_shard_has_no_boundaries_to_truncate(self):
        """With one shard both modes are the full global stitch."""
        exact = make_coordinator(1, stitching="exact")
        off = make_coordinator(1, stitching="off")
        try:
            drive_feedback_no_close(exact, seed=11)
            drive_feedback_no_close(off, seed=11)
            assert corridor_snapshot(off.hot_corridors()) == corridor_snapshot(
                exact.hot_corridors()
            )
        finally:
            exact.close()
            off.close()


class TestWeldCycles:
    """Weld cycles (closed hot-path loops) are broken once — at the minimum
    member id, before the off-mode cut — so the deviation accounting holds
    even in the adversarial case where the dropped closing weld is a
    *same-owner* weld while the cycle spans shards (filtering cross-owner
    welds first and re-chaining would regroup across the break and report
    one corridor too few)."""

    def _cycle_router(self) -> ShardRouter:
        # 2x2 grid over 1000^2: V0, V1 in shard 0 (x < 500), V2 in shard 1.
        # Paths 0: V0->V2, 1: V1->V0, 2: V2->V1 close the weld cycle
        # 0 -> 2 -> 1 -> 0 with welds {1->0 same-owner, 2->1 and 0->2 cross}.
        router = ShardRouter(BOUNDS, window=10**6, cells_per_axis=32, num_shards=4)
        v0, v1, v2 = Point(100.0, 100.0), Point(200.0, 100.0), Point(600.0, 100.0)
        for path in (MotionPath(v0, v2), MotionPath(v1, v0), MotionPath(v2, v1)):
            record = router.insert(path, created_at=0)
            router.hotness.record_crossing(record.path_id, 0)
        return router

    def test_cross_shard_cycle_deviation_accounting(self):
        router = self._cycle_router()
        exact = router.stitch_epoch("exact")
        exact_stats = dict(router.stitch_stats)
        assert [c.path_ids for c in exact] == [(0, 2, 1)]  # broken at min id 0
        # Stats count *consumed* welds — the cycle-closing 1->0 weld drops
        # out before counting, so fragments - welds == corridors and the
        # numbers match whatever shard layout decided the welds.
        assert exact_stats["welds"] == 2
        assert exact_stats["boundary_welds"] == 2
        off = router.stitch_epoch("off")
        assert [c.path_ids for c in off] == [(0,), (1,), (2,)]
        assert len(off) == len(exact) + exact_stats["boundary_welds"]

    def test_cycle_matches_the_global_stitch(self):
        router = self._cycle_router()
        hot = [
            (router.index.get(path_id), hotness)
            for path_id, hotness in sorted(router.hotness.items())
        ]
        assert corridor_snapshot(router.stitch_epoch("exact")) == corridor_snapshot(
            stitch_paths(hot)
        )


class TestSimulationStitching:
    """End-to-end simulations: the corridor report survives the full stack."""

    @staticmethod
    def _run(num_shards: int, backend: str = "serial", stitching: str = "exact"):
        config = SimulationConfig(
            num_objects=60,
            duration=80,
            agility=0.1,
            tolerance=10.0,
            window=50,
            epoch_length=10,
            num_shards=num_shards,
            backend=backend,
            stitching=stitching,
            seed=9,
            network_config=NetworkConfig(area_size=2000.0, grid_nodes_per_axis=6, seed=9),
            run_dp_baseline=False,
            run_naive_baseline=False,
        )
        return HotPathSimulation(config).run()

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_simulation_corridors_match_seed(self, backend):
        baseline = self._run(1)
        sharded = self._run(16, backend=backend)
        assert corridor_snapshot(sharded.hot_corridors()) == corridor_snapshot(
            baseline.hot_corridors()
        )
        assert corridor_snapshot(sharded.top_k_corridors()) == corridor_snapshot(
            baseline.top_k_corridors()
        )

    def test_simulation_reference_is_the_global_stitch(self):
        """The seed report is literally ``stitch_paths`` over its hot paths,
        and real simulations chain paths into multi-segment corridors."""
        baseline = self._run(1)
        assert corridor_snapshot(baseline.hot_corridors()) == corridor_snapshot(
            stitch_paths(baseline.hot_paths())
        )
        assert any(c.num_segments > 1 for c in baseline.hot_corridors())
