"""Unit tests for :mod:`repro.coordinator.grid_index`."""

from __future__ import annotations

import pytest

from repro.core.errors import ConfigurationError, CoordinatorError
from repro.core.geometry import Point, Rectangle
from repro.core.motion_path import MotionPath
from repro.coordinator.grid_index import GridConfig, GridIndex


@pytest.fixture()
def index(unit_bounds) -> GridIndex:
    return GridIndex(GridConfig(unit_bounds, cells_per_axis=16))


class TestGridConfig:
    def test_invalid_cells(self, unit_bounds):
        with pytest.raises(ConfigurationError):
            GridConfig(unit_bounds, cells_per_axis=0)

    def test_invalid_bounds(self):
        with pytest.raises(ConfigurationError):
            GridConfig(Rectangle.degenerate(Point(0.0, 0.0)))


class TestInsertionAndDeletion:
    def test_insert_assigns_sequential_ids(self, index):
        first = index.insert(MotionPath(Point(10.0, 10.0), Point(20.0, 20.0)))
        second = index.insert(MotionPath(Point(30.0, 30.0), Point(40.0, 40.0)))
        assert first.path_id == 0
        assert second.path_id == 1
        assert len(index) == 2

    def test_contains_and_get(self, index):
        record = index.insert(MotionPath(Point(10.0, 10.0), Point(20.0, 20.0)))
        assert record.path_id in index
        assert index.get(record.path_id).path == record.path

    def test_get_missing_raises(self, index):
        with pytest.raises(CoordinatorError):
            index.get(99)

    def test_delete_removes_both_endpoints(self, index):
        record = index.insert(MotionPath(Point(10.0, 10.0), Point(500.0, 500.0)))
        index.delete(record.path_id)
        assert len(index) == 0
        assert record.path_id not in index
        everywhere = Rectangle(Point(0.0, 0.0), Point(1000.0, 1000.0))
        assert index.paths_intersecting(everywhere) == []

    def test_delete_missing_raises(self, index):
        with pytest.raises(CoordinatorError):
            index.delete(5)

    def test_ids_not_reused_after_delete(self, index):
        first = index.insert(MotionPath(Point(10.0, 10.0), Point(20.0, 20.0)))
        index.delete(first.path_id)
        second = index.insert(MotionPath(Point(30.0, 30.0), Point(40.0, 40.0)))
        assert second.path_id != first.path_id

    def test_records_iteration(self, index):
        index.insert(MotionPath(Point(10.0, 10.0), Point(20.0, 20.0)))
        index.insert(MotionPath(Point(30.0, 30.0), Point(40.0, 40.0)))
        assert len(list(index.records)) == 2


class TestSameCellEndpoints:
    """Regressions for paths whose two endpoints share one grid cell.

    The former cell layout keyed entries by path id alone, so a same-cell
    path's start entry was overwritten by its end entry and the two-pass
    delete could drop the cell while re-deriving its key.  Entries are now
    keyed by ``(path_id, is_start)``; these tests pin the fixed behaviour.
    """

    def test_same_cell_path_keeps_both_entries(self, index):
        # 1000/16 = 62.5 per cell: both endpoints land in cell (0, 0).
        record = index.insert(MotionPath(Point(10.0, 10.0), Point(40.0, 40.0)))
        region = Rectangle(Point(0.0, 0.0), Point(20.0, 20.0))
        # The region covers only the start; the path must still be found via
        # its start entry (lost entirely before the fix).
        assert [r.path_id for r in index.paths_intersecting(region)] == [record.path_id]

    def test_same_cell_path_deletes_cleanly(self, index):
        record = index.insert(MotionPath(Point(10.0, 10.0), Point(40.0, 40.0)))
        index.delete(record.path_id)
        assert len(index) == 0
        assert index._cells == {}

    def test_same_cell_delete_keeps_neighbours(self, index):
        doomed = index.insert(MotionPath(Point(10.0, 10.0), Point(40.0, 40.0)))
        kept = index.insert(MotionPath(Point(20.0, 20.0), Point(30.0, 30.0)))
        index.delete(doomed.path_id)
        everywhere = Rectangle(Point(0.0, 0.0), Point(1000.0, 1000.0))
        assert [r.path_id for r in index.paths_intersecting(everywhere)] == [kept.path_id]
        assert index.paths_starting_at(Point(20.0, 20.0), everywhere)[0].path_id == kept.path_id

    def test_clamped_endpoints_share_border_cell_and_delete(self, index):
        # Both endpoints are outside the bounds and clamp into the same
        # top-right border cell; insert, query and delete must all agree.
        record = index.insert(MotionPath(Point(1100.0, 1100.0), Point(1500.0, 1200.0)))
        region = Rectangle(Point(990.0, 990.0), Point(2000.0, 2000.0))
        assert [r.path_id for r in index.paths_intersecting(region)] == [record.path_id]
        assert Point(1500.0, 1200.0) in index.end_vertices_in(region)
        index.delete(record.path_id)
        assert len(index) == 0
        assert index._cells == {}

    def test_zero_length_path_round_trips(self, index):
        point = Point(10.0, 10.0)
        record = index.insert(MotionPath(point, point))
        everywhere = Rectangle(Point(0.0, 0.0), Point(1000.0, 1000.0))
        assert [r.path_id for r in index.paths_from_into(point, everywhere)] == [record.path_id]
        index.delete(record.path_id)
        assert index._cells == {}


class TestQueries:
    def test_paths_from_into_matches_start_and_region(self, index):
        start = Point(100.0, 100.0)
        match = index.insert(MotionPath(start, Point(200.0, 200.0)))
        index.insert(MotionPath(Point(101.0, 100.0), Point(200.0, 201.0)))  # wrong start
        index.insert(MotionPath(start, Point(900.0, 900.0)))  # end outside region
        region = Rectangle(Point(150.0, 150.0), Point(250.0, 250.0))
        results = index.paths_from_into(start, region)
        assert [record.path_id for record in results] == [match.path_id]

    def test_paths_from_into_empty_region(self, index):
        index.insert(MotionPath(Point(100.0, 100.0), Point(200.0, 200.0)))
        region = Rectangle(Point(800.0, 800.0), Point(900.0, 900.0))
        assert index.paths_from_into(Point(100.0, 100.0), region) == []

    def test_end_vertices_in_groups_by_vertex(self, index):
        shared_end = Point(300.0, 300.0)
        a = index.insert(MotionPath(Point(100.0, 100.0), shared_end))
        b = index.insert(MotionPath(Point(200.0, 100.0), shared_end))
        c = index.insert(MotionPath(Point(100.0, 200.0), Point(310.0, 310.0)))
        region = Rectangle(Point(290.0, 290.0), Point(320.0, 320.0))
        vertices = index.end_vertices_in(region)
        assert set(vertices[shared_end]) == {a.path_id, b.path_id}
        assert vertices[Point(310.0, 310.0)] == [c.path_id]

    def test_end_vertices_excludes_start_points(self, index):
        index.insert(MotionPath(Point(300.0, 300.0), Point(700.0, 700.0)))
        region = Rectangle(Point(290.0, 290.0), Point(310.0, 310.0))
        assert index.end_vertices_in(region) == {}

    def test_paths_intersecting_deduplicates(self, index):
        record = index.insert(MotionPath(Point(100.0, 100.0), Point(110.0, 110.0)))
        region = Rectangle(Point(90.0, 90.0), Point(120.0, 120.0))
        results = index.paths_intersecting(region)
        assert [r.path_id for r in results] == [record.path_id]

    def test_points_outside_bounds_are_clamped_into_border_cells(self, index):
        # Endpoint beyond the nominal bounds must still be indexed and findable.
        record = index.insert(MotionPath(Point(500.0, 500.0), Point(1500.0, 1500.0)))
        region = Rectangle(Point(990.0, 990.0), Point(2000.0, 2000.0))
        results = index.paths_intersecting(region)
        assert [r.path_id for r in results] == [record.path_id]

    def test_query_spanning_many_cells(self, index):
        inserted = [
            index.insert(MotionPath(Point(50.0 * i, 50.0 * i), Point(50.0 * i + 10, 50.0 * i + 10)))
            for i in range(1, 10)
        ]
        region = Rectangle(Point(0.0, 0.0), Point(1000.0, 1000.0))
        results = index.paths_intersecting(region)
        assert len(results) == len(inserted)


class TestCellStatistics:
    def test_empty_statistics(self, index):
        stats = index.cell_statistics()
        assert stats["occupied_cells"] == 0
        assert stats["total_cells"] == 256

    def test_statistics_after_insertions(self, index):
        index.insert(MotionPath(Point(10.0, 10.0), Point(20.0, 20.0)))
        index.insert(MotionPath(Point(900.0, 900.0), Point(910.0, 910.0)))
        stats = index.cell_statistics()
        assert stats["occupied_cells"] >= 1
        assert stats["max_entries_per_cell"] >= 1
        assert stats["mean_entries_per_occupied_cell"] > 0
