"""Unit tests for :mod:`repro.core.motion_path` and :mod:`repro.core.scoring`."""

from __future__ import annotations

import pytest

from repro.core.errors import (
    ConfigurationError,
    InvalidGeometryError,
    InvalidTrajectoryError,
)
from repro.core.geometry import Point
from repro.core.motion_path import (
    CoveringMotionPathSet,
    MotionPath,
    MotionPathRecord,
    PathCrossing,
)
from repro.core.scoring import ScoredPath, path_score, select_top_k, top_k_score
from repro.core.trajectory import TimePoint, Trajectory


def straight_trajectory(n: int = 11, step: float = 1.0) -> Trajectory:
    return Trajectory(0, [TimePoint(Point(i * step, 0.0), i) for i in range(n)])


class TestMotionPath:
    def test_length(self):
        path = MotionPath(Point(0.0, 0.0), Point(3.0, 4.0))
        assert path.length == 5.0

    def test_point_at_endpoints(self):
        path = MotionPath(Point(0.0, 0.0), Point(10.0, 0.0))
        assert path.point_at(0.0) == Point(0.0, 0.0)
        assert path.point_at(1.0) == Point(10.0, 0.0)

    def test_point_at_middle(self):
        path = MotionPath(Point(0.0, 0.0), Point(10.0, 20.0))
        assert path.point_at(0.5) == Point(5.0, 10.0)

    def test_reversed(self):
        path = MotionPath(Point(1.0, 2.0), Point(3.0, 4.0))
        assert path.reversed() == MotionPath(Point(3.0, 4.0), Point(1.0, 2.0))

    def test_bounding_box_with_padding(self):
        path = MotionPath(Point(0.0, 0.0), Point(10.0, 5.0))
        box = path.bounding_box(padding=1.0)
        assert box.low == Point(-1.0, -1.0)
        assert box.high == Point(11.0, 6.0)

    def test_fits_exact_trajectory(self):
        trajectory = straight_trajectory(11)
        path = MotionPath(Point(0.0, 0.0), Point(10.0, 0.0))
        assert path.fits(trajectory, 0, 10, tolerance=0.1)

    def test_fits_within_tolerance(self):
        trajectory = straight_trajectory(11)
        path = MotionPath(Point(0.0, 2.0), Point(10.0, 2.0))
        assert path.fits(trajectory, 0, 10, tolerance=2.0)
        assert not path.fits(trajectory, 0, 10, tolerance=1.0)

    def test_fits_requires_time_alignment(self):
        trajectory = straight_trajectory(11)
        # Same geometry but crossed over the wrong interval: at t=0 the path
        # point is x=5 while the object is at x=0.
        path = MotionPath(Point(5.0, 0.0), Point(10.0, 0.0))
        assert not path.fits(trajectory, 0, 10, tolerance=1.0)
        assert path.fits(trajectory, 5, 10, tolerance=0.1)

    def test_fits_outside_observed_time_is_false(self):
        trajectory = straight_trajectory(5)
        path = MotionPath(Point(0.0, 0.0), Point(10.0, 0.0))
        assert not path.fits(trajectory, 0, 10, tolerance=1.0)

    def test_fits_invalid_interval_rejected(self):
        trajectory = straight_trajectory(5)
        path = MotionPath(Point(0.0, 0.0), Point(4.0, 0.0))
        with pytest.raises(InvalidTrajectoryError):
            path.fits(trajectory, 3, 1, tolerance=1.0)


class TestPathCrossing:
    def test_duration(self):
        crossing = PathCrossing(MotionPath(Point(0.0, 0.0), Point(1.0, 0.0)), 2, 7)
        assert crossing.duration == 5

    def test_invalid_interval_rejected(self):
        with pytest.raises(InvalidTrajectoryError):
            PathCrossing(MotionPath(Point(0.0, 0.0), Point(1.0, 0.0)), 7, 2)


class TestMotionPathRecord:
    def test_accessors(self):
        record = MotionPathRecord(3, MotionPath(Point(0.0, 0.0), Point(3.0, 4.0)), 10)
        assert record.path_id == 3
        assert record.start == Point(0.0, 0.0)
        assert record.end == Point(3.0, 4.0)
        assert record.length == 5.0
        assert record.created_at == 10


class TestCoveringMotionPathSet:
    def test_chaining_accepted(self):
        covering = CoveringMotionPathSet(0)
        covering.append(PathCrossing(MotionPath(Point(0.0, 0.0), Point(5.0, 0.0)), 0, 5))
        covering.append(PathCrossing(MotionPath(Point(5.0, 0.0), Point(10.0, 0.0)), 5, 10))
        assert len(covering) == 2
        assert covering.time_span == (0, 10)
        assert covering.total_length() == pytest.approx(10.0)

    def test_time_chaining_violation_rejected(self):
        covering = CoveringMotionPathSet(0)
        covering.append(PathCrossing(MotionPath(Point(0.0, 0.0), Point(5.0, 0.0)), 0, 5))
        with pytest.raises(InvalidTrajectoryError):
            covering.append(PathCrossing(MotionPath(Point(5.0, 0.0), Point(10.0, 0.0)), 6, 10))

    def test_space_chaining_violation_rejected(self):
        covering = CoveringMotionPathSet(0)
        covering.append(PathCrossing(MotionPath(Point(0.0, 0.0), Point(5.0, 0.0)), 0, 5))
        with pytest.raises(InvalidGeometryError):
            covering.append(PathCrossing(MotionPath(Point(6.0, 0.0), Point(10.0, 0.0)), 5, 10))

    def test_empty_time_span_rejected(self):
        with pytest.raises(InvalidTrajectoryError):
            _ = CoveringMotionPathSet(0).time_span

    def test_is_valid_for_straight_trajectory(self):
        trajectory = straight_trajectory(11)
        covering = CoveringMotionPathSet(
            0,
            [
                PathCrossing(MotionPath(Point(0.0, 0.0), Point(5.0, 0.0)), 0, 5),
                PathCrossing(MotionPath(Point(5.0, 0.0), Point(10.0, 0.0)), 5, 10),
            ],
        )
        assert covering.is_valid_for(trajectory, tolerance=0.5)

    def test_is_valid_for_detects_bad_fit(self):
        trajectory = straight_trajectory(11)
        covering = CoveringMotionPathSet(
            0,
            [PathCrossing(MotionPath(Point(0.0, 10.0), Point(5.0, 10.0)), 0, 5)],
        )
        assert not covering.is_valid_for(trajectory, tolerance=2.0)


class TestScoring:
    def test_path_score(self):
        path = MotionPath(Point(0.0, 0.0), Point(0.0, 10.0))
        assert path_score(path, 3) == pytest.approx(30.0)

    def test_path_score_negative_hotness_rejected(self):
        with pytest.raises(ConfigurationError):
            path_score(MotionPath(Point(0.0, 0.0), Point(1.0, 0.0)), -1)

    def test_scored_path_score_property(self):
        scored = ScoredPath(MotionPath(Point(0.0, 0.0), Point(4.0, 0.0)), 2)
        assert scored.score == pytest.approx(8.0)

    def _records(self):
        paths = [
            (MotionPathRecord(0, MotionPath(Point(0.0, 0.0), Point(10.0, 0.0))), 5),
            (MotionPathRecord(1, MotionPath(Point(0.0, 0.0), Point(100.0, 0.0))), 2),
            (MotionPathRecord(2, MotionPath(Point(0.0, 0.0), Point(1.0, 0.0))), 5),
            (MotionPathRecord(3, MotionPath(Point(0.0, 0.0), Point(2.0, 0.0))), 1),
        ]
        return paths

    def test_select_top_k_by_hotness(self):
        top = select_top_k(self._records(), 2)
        assert [scored.path_id for scored in top] == [0, 2]

    def test_select_top_k_by_score(self):
        top = select_top_k(self._records(), 2, by_score=True)
        assert [scored.path_id for scored in top] == [1, 0]

    def test_select_top_k_more_than_available(self):
        top = select_top_k(self._records(), 10)
        assert len(top) == 4

    def test_select_top_k_invalid_k(self):
        with pytest.raises(ConfigurationError):
            select_top_k(self._records(), 0)

    def test_top_k_score_empty(self):
        assert top_k_score([]) == 0.0

    def test_top_k_score_average(self):
        scored = [
            ScoredPath(MotionPath(Point(0.0, 0.0), Point(10.0, 0.0)), 2),
            ScoredPath(MotionPath(Point(0.0, 0.0), Point(20.0, 0.0)), 1),
        ]
        assert top_k_score(scored) == pytest.approx((20.0 + 20.0) / 2)
