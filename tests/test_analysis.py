"""Unit tests for the export and rendering utilities."""

from __future__ import annotations

import csv
import io

import pytest

from repro.core.errors import ConfigurationError
from repro.core.geometry import Point, Rectangle
from repro.core.motion_path import MotionPath, MotionPathRecord
from repro.analysis.export import paths_to_csv, paths_to_wkt, write_csv
from repro.analysis.render import AsciiMapRenderer, render_hot_paths


def sample_paths():
    return [
        (MotionPathRecord(0, MotionPath(Point(0.0, 0.0), Point(100.0, 0.0))), 3),
        (MotionPathRecord(1, MotionPath(Point(0.0, 0.0), Point(0.0, 100.0))), 1),
    ]


class TestCsvExport:
    def test_header_and_rows(self):
        text = paths_to_csv(sample_paths())
        rows = list(csv.reader(io.StringIO(text)))
        assert rows[0][0] == "path_id"
        assert len(rows) == 3

    def test_score_column_is_hotness_times_length(self):
        text = paths_to_csv(sample_paths())
        rows = list(csv.DictReader(io.StringIO(text)))
        assert float(rows[0]["score"]) == pytest.approx(300.0)
        assert float(rows[1]["score"]) == pytest.approx(100.0)

    def test_empty_input(self):
        text = paths_to_csv([])
        rows = list(csv.reader(io.StringIO(text)))
        assert len(rows) == 1

    def test_write_csv(self, tmp_path):
        destination = write_csv(sample_paths(), tmp_path / "paths.csv")
        assert destination.exists()
        assert "path_id" in destination.read_text()


class TestWktExport:
    def test_linestring_format(self):
        lines = paths_to_wkt(sample_paths())
        assert len(lines) == 2
        assert lines[0].startswith("LINESTRING (")
        assert lines[0].endswith("hotness=3")

    def test_coordinates_present(self):
        lines = paths_to_wkt(sample_paths())
        assert "100.000 0.000" in lines[0]


class TestAsciiRenderer:
    BOUNDS = Rectangle(Point(0.0, 0.0), Point(100.0, 100.0))

    def test_invalid_dimensions(self):
        with pytest.raises(ConfigurationError):
            AsciiMapRenderer(self.BOUNDS, width=0, height=10)

    def test_invalid_bounds(self):
        with pytest.raises(ConfigurationError):
            AsciiMapRenderer(Rectangle.degenerate(Point(0.0, 0.0)))

    def test_output_dimensions(self):
        renderer = AsciiMapRenderer(self.BOUNDS, width=20, height=10)
        output = renderer.render_paths(sample_paths())
        lines = output.splitlines()
        assert len(lines) == 10
        assert all(len(line) == 20 for line in lines)

    def test_empty_input_is_blank(self):
        renderer = AsciiMapRenderer(self.BOUNDS, width=10, height=5)
        output = renderer.render_paths([])
        assert set(output.replace("\n", "")) == {" "}

    def test_horizontal_path_lights_bottom_row(self):
        renderer = AsciiMapRenderer(self.BOUNDS, width=20, height=10)
        paths = [(MotionPathRecord(0, MotionPath(Point(0.0, 0.0), Point(100.0, 0.0))), 1)]
        output = renderer.render_paths(paths)
        lines = output.splitlines()
        # y=0 is the bottom row (rendered last); it must contain non-blank cells.
        assert any(char != " " for char in lines[-1])
        assert all(char == " " for char in lines[0])

    def test_hotter_path_renders_denser(self):
        renderer = AsciiMapRenderer(self.BOUNDS, width=20, height=10)
        paths = [
            (MotionPathRecord(0, MotionPath(Point(0.0, 10.0), Point(100.0, 10.0))), 9),
            (MotionPathRecord(1, MotionPath(Point(0.0, 90.0), Point(100.0, 90.0))), 1),
        ]
        output = renderer.render_paths(paths)
        ramp = " .:-=+*#%@"
        lines = output.splitlines()
        hot_row_level = max(ramp.index(c) for c in lines[-1] if c != " ")
        cold_row_level = max(ramp.index(c) for c in lines[1] if c != " ")
        assert hot_row_level > cold_row_level

    def test_render_network(self, tiny_manual_network):
        renderer = AsciiMapRenderer(
            tiny_manual_network.bounding_box(padding=1.0), width=20, height=10
        )
        output = renderer.render_network(tiny_manual_network)
        assert any(char != " " for char in output)

    def test_convenience_wrapper(self):
        output = render_hot_paths(sample_paths(), self.BOUNDS, width=10, height=5)
        assert len(output.splitlines()) == 5

    def test_paths_outside_bounds_ignored(self):
        renderer = AsciiMapRenderer(self.BOUNDS, width=10, height=5)
        paths = [(MotionPathRecord(0, MotionPath(Point(500.0, 500.0), Point(600.0, 600.0))), 2)]
        output = renderer.render_paths(paths)
        assert set(output.replace("\n", "")) == {" "}
