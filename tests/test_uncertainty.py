"""Unit tests for :mod:`repro.client.uncertainty`."""

from __future__ import annotations

import math

import pytest

from repro.core.errors import ToleranceError
from repro.core.geometry import Point
from repro.core.trajectory import UncertainTimePoint
from repro.client.uncertainty import (
    NormalToleranceModel,
    ToleranceInterval,
    UnsatisfiableTolerancePolicy,
    interval_probability,
    standard_normal_cdf,
)


class TestStandardNormalCdf:
    def test_symmetry(self):
        assert standard_normal_cdf(0.0) == pytest.approx(0.5)
        assert standard_normal_cdf(1.0) + standard_normal_cdf(-1.0) == pytest.approx(1.0)

    def test_known_value(self):
        # Phi(1.96) ~ 0.975
        assert standard_normal_cdf(1.96) == pytest.approx(0.975, abs=1e-3)

    def test_monotonicity(self):
        values = [standard_normal_cdf(z) for z in (-3.0, -1.0, 0.0, 1.0, 3.0)]
        assert values == sorted(values)


class TestIntervalProbability:
    def test_centered_interval_has_maximum_probability(self):
        centered = interval_probability(0.0, epsilon=2.0, sigma=1.0)
        offset = interval_probability(1.0, epsilon=2.0, sigma=1.0)
        assert centered > offset

    def test_zero_sigma_is_indicator(self):
        assert interval_probability(0.5, epsilon=1.0, sigma=0.0) == 1.0
        assert interval_probability(2.0, epsilon=1.0, sigma=0.0) == 0.0

    def test_probability_decreases_with_sigma(self):
        small = interval_probability(0.0, epsilon=1.0, sigma=0.5)
        large = interval_probability(0.0, epsilon=1.0, sigma=2.0)
        assert small > large

    def test_known_value(self):
        # Pr(|X| <= sigma) ~ 0.6827 for X ~ N(0, sigma^2)
        assert interval_probability(0.0, epsilon=1.0, sigma=1.0) == pytest.approx(0.6827, abs=1e-3)


class TestToleranceInterval:
    def test_properties(self):
        interval = ToleranceInterval(-2.0, 4.0)
        assert interval.half_width == 3.0
        assert interval.center == 1.0
        assert interval.contains(0.0)
        assert not interval.contains(5.0)


class TestNormalToleranceModelValidation:
    def test_invalid_epsilon(self):
        with pytest.raises(ToleranceError):
            NormalToleranceModel(epsilon=0.0)

    def test_invalid_delta(self):
        with pytest.raises(ToleranceError):
            NormalToleranceModel(epsilon=1.0, delta=1.0)

    def test_invalid_table_resolution(self):
        with pytest.raises(ToleranceError):
            NormalToleranceModel(epsilon=1.0, table_resolution=1)


class TestOneDimensionalInterval:
    def test_zero_delta_gives_plain_interval(self):
        model = NormalToleranceModel(epsilon=5.0, delta=0.0)
        interval = model.tolerance_interval(mean=10.0, sigma=3.0)
        assert interval.low == 5.0
        assert interval.high == 15.0

    def test_zero_sigma_gives_plain_interval(self):
        model = NormalToleranceModel(epsilon=5.0, delta=0.1)
        interval = model.tolerance_interval(mean=0.0, sigma=0.0)
        assert interval.low == -5.0
        assert interval.high == 5.0

    def test_interval_is_centred_on_mean(self):
        model = NormalToleranceModel(epsilon=5.0, delta=0.1)
        interval = model.tolerance_interval(mean=7.0, sigma=1.0)
        assert interval.center == pytest.approx(7.0)

    def test_interval_shrinks_with_noise(self):
        model = NormalToleranceModel(epsilon=5.0, delta=0.1)
        wide = model.tolerance_interval(mean=0.0, sigma=0.5)
        narrow = model.tolerance_interval(mean=0.0, sigma=2.0)
        assert wide.half_width > narrow.half_width

    def test_interval_never_exceeds_plain_epsilon(self):
        model = NormalToleranceModel(epsilon=5.0, delta=0.1)
        interval = model.tolerance_interval(mean=0.0, sigma=0.5)
        assert interval.half_width <= 5.0 + 1e-9

    def test_solution_satisfies_equation_2(self):
        """At the solved boundary offset, the coverage probability equals 1 - delta."""
        epsilon, delta, sigma = 5.0, 0.1, 1.5
        model = NormalToleranceModel(epsilon=epsilon, delta=delta)
        interval = model.tolerance_interval(mean=0.0, sigma=sigma, axis_delta=delta)
        boundary = interval.high  # offset from the mean
        probability = interval_probability(boundary, epsilon, sigma)
        assert probability == pytest.approx(1.0 - delta, abs=1e-6)

    def test_unsatisfiable_raise_policy(self):
        model = NormalToleranceModel(
            epsilon=1.0, delta=0.01, policy=UnsatisfiableTolerancePolicy.RAISE
        )
        with pytest.raises(ToleranceError):
            model.tolerance_interval(mean=0.0, sigma=10.0)

    def test_unsatisfiable_minimal_policy(self):
        model = NormalToleranceModel(
            epsilon=1.0,
            delta=0.01,
            policy=UnsatisfiableTolerancePolicy.MINIMAL,
            minimal_half_width=0.2,
        )
        interval = model.tolerance_interval(mean=3.0, sigma=10.0)
        assert interval.half_width == pytest.approx(0.2)
        assert interval.center == pytest.approx(3.0)

    def test_max_supported_sigma_boundary(self):
        model = NormalToleranceModel(epsilon=5.0, delta=0.1)
        boundary = model.max_supported_sigma()
        # Just below the boundary a solution exists, just above it does not.
        below = model.tolerance_interval(mean=0.0, sigma=boundary * 0.99)
        assert below.half_width > 0.0
        assert interval_probability(0.0, 5.0, boundary * 1.05) < 1.0 - model.delta / 2.0


class TestTwoDimensionalSquare:
    def test_square_centred_on_measurement(self):
        model = NormalToleranceModel(epsilon=5.0, delta=0.1)
        measurement = UncertainTimePoint(Point(10.0, 20.0), 0, 1.0, 1.0)
        square = model.tolerance_square(measurement)
        assert square.center.x == pytest.approx(10.0)
        assert square.center.y == pytest.approx(20.0)

    def test_square_shrinks_with_delta(self):
        loose = NormalToleranceModel(epsilon=5.0, delta=0.4)
        tight = NormalToleranceModel(epsilon=5.0, delta=0.05)
        measurement = UncertainTimePoint(Point(0.0, 0.0), 0, 1.5, 1.5)
        assert tight.tolerance_square(measurement).area < loose.tolerance_square(measurement).area

    def test_asymmetric_noise_gives_asymmetric_square(self):
        model = NormalToleranceModel(epsilon=5.0, delta=0.1)
        measurement = UncertainTimePoint(Point(0.0, 0.0), 0, 0.5, 2.0)
        square = model.tolerance_square(measurement)
        assert square.width > square.height

    def test_effective_half_widths(self):
        model = NormalToleranceModel(epsilon=5.0, delta=0.0)
        measurement = UncertainTimePoint(Point(0.0, 0.0), 0, 1.0, 1.0)
        half_x, half_y = model.effective_half_widths(measurement)
        assert half_x == pytest.approx(5.0)
        assert half_y == pytest.approx(5.0)

    def test_noiseless_measurement_gives_plain_square(self):
        model = NormalToleranceModel(epsilon=3.0, delta=0.2)
        measurement = UncertainTimePoint(Point(1.0, 1.0), 0, 0.0, 0.0)
        square = model.tolerance_square(measurement)
        assert square.width == pytest.approx(6.0)
        assert square.height == pytest.approx(6.0)


class TestQuantile:
    def test_quantile_inverts_cdf(self):
        for p in (0.1, 0.5, 0.9, 0.975):
            z = NormalToleranceModel._standard_normal_quantile(p)
            assert standard_normal_cdf(z) == pytest.approx(p, abs=1e-6)

    def test_quantile_rejects_invalid_probability(self):
        with pytest.raises(ToleranceError):
            NormalToleranceModel._standard_normal_quantile(0.0)
