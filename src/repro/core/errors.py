"""Exception hierarchy for the hot motion path library.

Every error raised by the library derives from :class:`ReproError`, so callers
can catch a single base class at API boundaries while still distinguishing
precise failure modes when they need to.
"""


class ReproError(Exception):
    """Base class for all library-specific errors."""


class InvalidGeometryError(ReproError):
    """Raised when a geometric primitive is constructed with invalid data.

    Examples include rectangles whose lower corner exceeds the upper corner or
    non-finite coordinates.
    """


class InvalidTrajectoryError(ReproError):
    """Raised when a trajectory violates its invariants.

    A trajectory must have strictly increasing timestamps; querying a location
    outside the observed time range is also reported through this error.
    """


class ToleranceError(ReproError):
    """Raised when tolerance parameters are invalid or unsatisfiable.

    The (epsilon, delta) uncertainty model can fail to admit any tolerance
    interval when the measurement noise is too large relative to epsilon
    (Equation 2 of the paper has no solution); that condition is surfaced via
    this exception unless a fallback policy is configured.
    """


class CoordinatorError(ReproError):
    """Raised for protocol violations between clients and the coordinator."""


class ConfigurationError(ReproError):
    """Raised when a simulation, workload or experiment configuration is invalid."""
