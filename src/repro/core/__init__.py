"""Core primitives: geometry, trajectories, motion paths and scoring."""

from repro.core.geometry import (
    Point,
    Rectangle,
    max_distance,
    euclidean_distance,
    manhattan_distance,
    lp_distance,
    interpolate_point,
)
from repro.core.trajectory import TimePoint, UncertainTimePoint, Trajectory
from repro.core.motion_path import MotionPath, MotionPathRecord, CoveringMotionPathSet
from repro.core.scoring import path_score, top_k_score, select_top_k
from repro.core.errors import (
    ReproError,
    InvalidGeometryError,
    InvalidTrajectoryError,
    ToleranceError,
    CoordinatorError,
)

__all__ = [
    "Point",
    "Rectangle",
    "max_distance",
    "euclidean_distance",
    "manhattan_distance",
    "lp_distance",
    "interpolate_point",
    "TimePoint",
    "UncertainTimePoint",
    "Trajectory",
    "MotionPath",
    "MotionPathRecord",
    "CoveringMotionPathSet",
    "path_score",
    "top_k_score",
    "select_top_k",
    "ReproError",
    "InvalidGeometryError",
    "InvalidTrajectoryError",
    "ToleranceError",
    "CoordinatorError",
]
