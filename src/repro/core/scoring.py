"""Quality metrics for sets of discovered motion paths (paper Section 3.1).

The paper assesses top-k results with a *score* that promotes longer paths:
the score of a single motion path is its hotness multiplied by its length, and
the score of a top-k set is the average score of its members.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

from repro.core.errors import ConfigurationError
from repro.core.motion_path import MotionPath, MotionPathRecord

__all__ = ["ScoredPath", "path_score", "select_top_k", "top_k_score"]


@dataclass(frozen=True)
class ScoredPath:
    """A motion path together with its hotness and derived score."""

    path: MotionPath
    hotness: int
    path_id: int = -1

    @property
    def score(self) -> float:
        return self.hotness * self.path.length


def path_score(path: MotionPath, hotness: int) -> float:
    """Score of one path: ``hotness * length``."""
    if hotness < 0:
        raise ConfigurationError(f"hotness must be non-negative, got {hotness}")
    return hotness * path.length


def select_top_k(
    paths: Iterable[Tuple[MotionPathRecord, int]],
    k: int,
    by_score: bool = False,
) -> List[ScoredPath]:
    """Select the top-k paths ranked by hotness (default) or by score.

    ``paths`` yields ``(record, hotness)`` pairs, typically produced by the
    coordinator.  Ties are broken by score so longer paths are preferred among
    equally hot ones, then by path id for determinism.
    """
    if k <= 0:
        raise ConfigurationError(f"k must be positive, got {k}")
    scored = [
        ScoredPath(record.path, hotness, record.path_id) for record, hotness in paths
    ]
    if by_score:
        key = lambda sp: (sp.score, sp.hotness, -sp.path_id)
    else:
        key = lambda sp: (sp.hotness, sp.score, -sp.path_id)
    return heapq.nlargest(k, scored, key=key)


def top_k_score(top_k: Sequence[ScoredPath]) -> float:
    """Average score of a top-k set; zero for an empty set."""
    if not top_k:
        return 0.0
    return sum(scored.score for scored in top_k) / len(top_k)
