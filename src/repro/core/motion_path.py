"""Motion paths, crossings and covering motion path sets (paper Section 3.1).

A *motion path* is a directed segment ``start -> end`` on the xy plane.  An
object *crosses* it over a time interval ``[t_start, t_end]`` when, for every
intermediate fraction lambda, the interpolated point on the segment is within
tolerance epsilon of the object's interpolated location at the corresponding
time.  The coordinator stores one :class:`MotionPathRecord` per discovered
path, tracking its identity and geometry; hotness is maintained separately by
:mod:`repro.coordinator.hotness`.

A *covering motion path set* for an object is a chain of (path, interval)
pairs whose intervals tile the object's lifetime and whose geometry is
connected: each path starts where the previous one ended.  RayTrace together
with SinglePath construct such a covering set implicitly; the class here exists
mainly so tests and analyses can verify the invariant explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.core.errors import InvalidGeometryError, InvalidTrajectoryError
from repro.core.geometry import Point, Rectangle, interpolate_point, segment_length
from repro.core.trajectory import Trajectory

__all__ = ["MotionPath", "PathCrossing", "MotionPathRecord", "CoveringMotionPathSet"]


@dataclass(frozen=True)
class MotionPath:
    """A directed segment ``start -> end`` on the xy plane."""

    start: Point
    end: Point

    @property
    def length(self) -> float:
        """Euclidean length of the segment (used by the score metric)."""
        return segment_length(self.start, self.end)

    def point_at(self, fraction: float) -> Point:
        """Point ``start + fraction * (end - start)`` for ``fraction`` in [0, 1]."""
        return interpolate_point(self.start, self.end, fraction)

    def reversed(self) -> "MotionPath":
        """The same segment travelled in the opposite direction."""
        return MotionPath(self.end, self.start)

    def bounding_box(self, padding: float = 0.0) -> Rectangle:
        """Minimum bounding rectangle of the segment, expanded by ``padding``."""
        return Rectangle.bounding(self.start, self.end, padding)

    def fits(self, trajectory: Trajectory, t_start: int, t_end: int, tolerance: float) -> bool:
        """Check whether ``trajectory`` crosses this path during ``[t_start, t_end]``.

        The check samples every discrete timestamp in the interval (time is
        discrete in the paper's model) and verifies max-distance proximity of
        the time-aligned point on the segment to the interpolated object
        location.
        """
        if t_start > t_end:
            raise InvalidTrajectoryError(f"invalid crossing interval [{t_start}, {t_end}]")
        if not trajectory.covers_time(t_start) or not trajectory.covers_time(t_end):
            return False
        span = t_end - t_start
        for timestamp in range(t_start, t_end + 1):
            fraction = 0.0 if span == 0 else (timestamp - t_start) / span
            path_point = self.point_at(fraction)
            object_point = trajectory.location_at(timestamp)
            if path_point.max_distance_to(object_point) > tolerance:
                return False
        return True


@dataclass(frozen=True)
class PathCrossing:
    """A motion path paired with the time interval during which it was crossed."""

    path: MotionPath
    t_start: int
    t_end: int

    def __post_init__(self) -> None:
        if self.t_start > self.t_end:
            raise InvalidTrajectoryError(
                f"crossing interval must be ordered, got [{self.t_start}, {self.t_end}]"
            )

    @property
    def duration(self) -> int:
        return self.t_end - self.t_start


@dataclass
class MotionPathRecord:
    """A motion path as stored by the coordinator.

    ``path_id`` is assigned by the coordinator on insertion and is the key used
    by the grid index, the hotness hash table and the expiry queue.
    """

    path_id: int
    path: MotionPath
    created_at: int = 0

    @property
    def start(self) -> Point:
        return self.path.start

    @property
    def end(self) -> Point:
        return self.path.end

    @property
    def length(self) -> float:
        return self.path.length


class CoveringMotionPathSet:
    """An ordered set of crossings forming a covering set for one object.

    The covering-set invariant of the paper: crossings are chained in time and
    in space — each crossing starts at the timestamp and at the endpoint where
    the previous one ended.
    """

    __slots__ = ("object_id", "_crossings")

    def __init__(self, object_id: int = 0, crossings: Optional[Iterable[PathCrossing]] = None) -> None:
        self.object_id = object_id
        self._crossings: List[PathCrossing] = []
        if crossings is not None:
            for crossing in crossings:
                self.append(crossing)

    def append(self, crossing: PathCrossing) -> None:
        """Append a crossing, enforcing the chaining invariant."""
        if self._crossings:
            previous = self._crossings[-1]
            if crossing.t_start != previous.t_end:
                raise InvalidTrajectoryError(
                    "covering set crossings must chain in time: "
                    f"{crossing.t_start} != {previous.t_end}"
                )
            if crossing.path.start != previous.path.end:
                raise InvalidGeometryError(
                    "covering set crossings must chain in space: "
                    f"{crossing.path.start} != {previous.path.end}"
                )
        self._crossings.append(crossing)

    def __len__(self) -> int:
        return len(self._crossings)

    def __iter__(self) -> Iterator[PathCrossing]:
        return iter(self._crossings)

    def __getitem__(self, index: int) -> PathCrossing:
        return self._crossings[index]

    @property
    def crossings(self) -> Sequence[PathCrossing]:
        return tuple(self._crossings)

    @property
    def time_span(self) -> Tuple[int, int]:
        """Overall ``(start, end)`` time interval covered by the set."""
        if not self._crossings:
            raise InvalidTrajectoryError("empty covering set has no time span")
        return (self._crossings[0].t_start, self._crossings[-1].t_end)

    def total_length(self) -> float:
        """Sum of the Euclidean lengths of the member paths."""
        return sum(crossing.path.length for crossing in self._crossings)

    def is_valid_for(self, trajectory: Trajectory, tolerance: float) -> bool:
        """Verify that every crossing fits the trajectory within ``tolerance``."""
        return all(
            crossing.path.fits(trajectory, crossing.t_start, crossing.t_end, tolerance)
            for crossing in self._crossings
        )
