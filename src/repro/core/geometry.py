"""Geometric primitives used throughout the framework.

The paper works on the xy plane with the max-distance (L-infinity) metric: a
point ``p_a`` is *close* to ``p_k`` when ``max(|x_a - x_k|, |y_a - y_k|) <= eps``.
The tolerance square of side ``2 * eps`` around a measurement and the Spatial
Safe Area projections maintained by RayTrace are all axis-aligned rectangles,
so :class:`Rectangle` (with intersection, containment and expansion) is the
workhorse of both tiers.

Everything in this module is a small immutable value object; the hot loops of
the simulation create millions of them, so the implementations avoid any
unnecessary allocation and validation can be bypassed by the internal callers
that already guarantee well-formed inputs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, Optional, Tuple

from repro.core.errors import InvalidGeometryError

__all__ = [
    "Point",
    "Rectangle",
    "max_distance",
    "euclidean_distance",
    "manhattan_distance",
    "lp_distance",
    "interpolate_point",
    "interpolate_scalar",
    "segment_length",
]


@dataclass(frozen=True)
class Point:
    """A point on the xy plane.

    Points are immutable and hashable so they can serve as dictionary keys in
    the coordinator's vertex bookkeeping.
    """

    x: float
    y: float

    def __post_init__(self) -> None:
        if not (math.isfinite(self.x) and math.isfinite(self.y)):
            raise InvalidGeometryError(f"point coordinates must be finite, got ({self.x}, {self.y})")

    def __iter__(self) -> Iterator[float]:
        yield self.x
        yield self.y

    def as_tuple(self) -> Tuple[float, float]:
        """Return the point as a plain ``(x, y)`` tuple."""
        return (self.x, self.y)

    def translate(self, dx: float, dy: float) -> "Point":
        """Return a new point shifted by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)

    def max_distance_to(self, other: "Point") -> float:
        """L-infinity distance to ``other`` (the paper's default metric)."""
        return max(abs(self.x - other.x), abs(self.y - other.y))

    def euclidean_distance_to(self, other: "Point") -> float:
        """L2 distance to ``other``."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def is_close_to(self, other: "Point", tolerance: float) -> bool:
        """Return ``True`` when ``other`` is within ``tolerance`` under L-infinity."""
        return self.max_distance_to(other) <= tolerance

    def midpoint(self, other: "Point") -> "Point":
        """Return the midpoint of the segment joining this point and ``other``."""
        return Point((self.x + other.x) / 2.0, (self.y + other.y) / 2.0)


def max_distance(a: Point, b: Point) -> float:
    """L-infinity (max) distance between two points."""
    return max(abs(a.x - b.x), abs(a.y - b.y))


def euclidean_distance(a: Point, b: Point) -> float:
    """Euclidean (L2) distance between two points."""
    return math.hypot(a.x - b.x, a.y - b.y)


def manhattan_distance(a: Point, b: Point) -> float:
    """Manhattan (L1) distance between two points."""
    return abs(a.x - b.x) + abs(a.y - b.y)


def lp_distance(a: Point, b: Point, p: float) -> float:
    """General Lp distance between two points.

    ``p`` must be at least 1; ``math.inf`` selects the max-distance metric.
    """
    if p < 1:
        raise InvalidGeometryError(f"Lp distance requires p >= 1, got {p}")
    if math.isinf(p):
        return max_distance(a, b)
    return (abs(a.x - b.x) ** p + abs(a.y - b.y) ** p) ** (1.0 / p)


def segment_length(a: Point, b: Point) -> float:
    """Euclidean length of the directed segment ``a -> b``.

    Motion-path *length* in the score metric is measured with the Euclidean
    norm even though proximity uses the max-distance, matching the paper.
    """
    return euclidean_distance(a, b)


def interpolate_scalar(v0: float, v1: float, fraction: float) -> float:
    """Linear interpolation between two scalars at ``fraction`` in [0, 1]."""
    return v0 + fraction * (v1 - v0)


def interpolate_point(a: Point, b: Point, fraction: float) -> Point:
    """Linearly interpolate between ``a`` and ``b``.

    ``fraction`` = 0 yields ``a`` and 1 yields ``b``. Values outside [0, 1]
    extrapolate along the supporting line, which is occasionally useful for
    tests but never produced by the library itself.
    """
    return Point(
        interpolate_scalar(a.x, b.x, fraction),
        interpolate_scalar(a.y, b.y, fraction),
    )


@dataclass(frozen=True)
class Rectangle:
    """An axis-aligned rectangle defined by its lower and upper corners.

    Degenerate rectangles (zero width and/or height) are allowed: the initial
    SSA projection of RayTrace is a single point and tolerance squares collapse
    when epsilon is zero.
    """

    low: Point
    high: Point

    def __post_init__(self) -> None:
        if self.low.x > self.high.x or self.low.y > self.high.y:
            raise InvalidGeometryError(
                f"rectangle lower corner {self.low} exceeds upper corner {self.high}"
            )

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_bounds(cls, x_min: float, y_min: float, x_max: float, y_max: float) -> "Rectangle":
        """Build a rectangle from explicit bounds."""
        return cls(Point(x_min, y_min), Point(x_max, y_max))

    @classmethod
    def from_center(cls, center: Point, half_extent: float) -> "Rectangle":
        """Square of side ``2 * half_extent`` centred at ``center``.

        This is exactly the *tolerance square* of the paper for
        ``half_extent = epsilon``.
        """
        if half_extent < 0:
            raise InvalidGeometryError(f"half extent must be non-negative, got {half_extent}")
        return cls(
            Point(center.x - half_extent, center.y - half_extent),
            Point(center.x + half_extent, center.y + half_extent),
        )

    @classmethod
    def degenerate(cls, point: Point) -> "Rectangle":
        """Zero-area rectangle covering a single point."""
        return cls(point, point)

    @classmethod
    def bounding(cls, a: Point, b: Point, padding: float = 0.0) -> "Rectangle":
        """Minimum bounding box of two points, optionally expanded by ``padding``.

        The DP baseline expands candidate-segment MBBs by the tolerance value;
        that expansion is what ``padding`` provides.
        """
        low = Point(min(a.x, b.x) - padding, min(a.y, b.y) - padding)
        high = Point(max(a.x, b.x) + padding, max(a.y, b.y) + padding)
        return cls(low, high)

    # -- basic properties ----------------------------------------------------

    @property
    def width(self) -> float:
        return self.high.x - self.low.x

    @property
    def height(self) -> float:
        return self.high.y - self.low.y

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def center(self) -> Point:
        """Centroid of the rectangle — used when SinglePath fabricates a vertex."""
        return Point((self.low.x + self.high.x) / 2.0, (self.low.y + self.high.y) / 2.0)

    def is_degenerate(self) -> bool:
        """True when the rectangle has zero area."""
        return self.width == 0.0 or self.height == 0.0

    # -- predicates ----------------------------------------------------------

    def contains_point(self, point: Point) -> bool:
        """Closed containment test for a point."""
        return (
            self.low.x <= point.x <= self.high.x
            and self.low.y <= point.y <= self.high.y
        )

    def contains_rectangle(self, other: "Rectangle") -> bool:
        """True when ``other`` lies entirely inside (or on the boundary of) this rectangle."""
        return (
            self.low.x <= other.low.x
            and self.low.y <= other.low.y
            and self.high.x >= other.high.x
            and self.high.y >= other.high.y
        )

    def intersects(self, other: "Rectangle") -> bool:
        """Closed intersection test (touching rectangles intersect)."""
        return not (
            self.high.x < other.low.x
            or other.high.x < self.low.x
            or self.high.y < other.low.y
            or other.high.y < self.low.y
        )

    # -- constructive operations ----------------------------------------------

    def intersection(self, other: "Rectangle") -> Optional["Rectangle"]:
        """Return the intersection rectangle, or ``None`` when disjoint."""
        if not self.intersects(other):
            return None
        return Rectangle(
            Point(max(self.low.x, other.low.x), max(self.low.y, other.low.y)),
            Point(min(self.high.x, other.high.x), min(self.high.y, other.high.y)),
        )

    def union_bounds(self, other: "Rectangle") -> "Rectangle":
        """Minimum bounding rectangle of this rectangle and ``other``."""
        return Rectangle(
            Point(min(self.low.x, other.low.x), min(self.low.y, other.low.y)),
            Point(max(self.high.x, other.high.x), max(self.high.y, other.high.y)),
        )

    def expand(self, margin: float) -> "Rectangle":
        """Grow (or shrink, for negative ``margin``) the rectangle on all sides."""
        low = Point(self.low.x - margin, self.low.y - margin)
        high = Point(self.high.x + margin, self.high.y + margin)
        if low.x > high.x or low.y > high.y:
            raise InvalidGeometryError(
                f"shrinking by {margin} would invert rectangle {self}"
            )
        return Rectangle(low, high)

    def clamp_point(self, point: Point) -> Point:
        """Project ``point`` onto the rectangle (nearest point inside it)."""
        return Point(
            min(max(point.x, self.low.x), self.high.x),
            min(max(point.y, self.low.y), self.high.y),
        )

    def corners(self) -> Tuple[Point, Point, Point, Point]:
        """The four corners in counter-clockwise order starting at ``low``."""
        return (
            self.low,
            Point(self.high.x, self.low.y),
            self.high,
            Point(self.low.x, self.high.y),
        )

    def as_bounds(self) -> Tuple[float, float, float, float]:
        """Return ``(x_min, y_min, x_max, y_max)``."""
        return (self.low.x, self.low.y, self.high.x, self.high.y)
