"""Timepoints, uncertain timepoints and trajectories (paper Section 3.1).

A *timepoint* pairs a position with a timestamp.  A *trajectory* is the
time-ordered sequence of timepoints recorded for one object; between two
consecutive timestamps the object is assumed to move at constant velocity, so
its position at any intermediate time is obtained by linear interpolation.

Under positional uncertainty each measurement additionally carries the standard
deviations of the Gaussian noise on each axis
(:class:`UncertainTimePoint`); the RayTrace adaptation of Section 4.1 turns
those into shrunken tolerance intervals.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.core.errors import InvalidTrajectoryError
from repro.core.geometry import Point, Rectangle, interpolate_point

__all__ = ["TimePoint", "UncertainTimePoint", "Trajectory"]


@dataclass(frozen=True)
class TimePoint:
    """A position observed at a discrete timestamp."""

    point: Point
    timestamp: int

    @property
    def x(self) -> float:
        return self.point.x

    @property
    def y(self) -> float:
        return self.point.y

    def as_tuple(self) -> Tuple[float, float, int]:
        """Return ``(x, y, t)``."""
        return (self.point.x, self.point.y, self.timestamp)


@dataclass(frozen=True)
class UncertainTimePoint:
    """A noisy position measurement with per-axis Gaussian standard deviations.

    ``point`` holds the reported mean location.  ``sigma_x`` / ``sigma_y`` are
    the standard deviations of the true location around that mean; the paper
    assumes the axes are independent.
    """

    point: Point
    timestamp: int
    sigma_x: float
    sigma_y: float

    def __post_init__(self) -> None:
        if self.sigma_x < 0 or self.sigma_y < 0:
            raise InvalidTrajectoryError(
                f"standard deviations must be non-negative, got ({self.sigma_x}, {self.sigma_y})"
            )

    @property
    def x(self) -> float:
        return self.point.x

    @property
    def y(self) -> float:
        return self.point.y

    def certain(self) -> TimePoint:
        """Drop the uncertainty and return the mean location as a plain timepoint."""
        return TimePoint(self.point, self.timestamp)


class Trajectory:
    """A time-ordered sequence of timepoints for a single object.

    The class enforces strictly increasing timestamps, supports interpolation
    at arbitrary times inside the observed range, and offers the bounding-box
    and proximity helpers needed by tests and by the baselines.
    """

    __slots__ = ("object_id", "_timepoints", "_timestamps")

    def __init__(self, object_id: int = 0, timepoints: Optional[Iterable[TimePoint]] = None) -> None:
        self.object_id = object_id
        self._timepoints: List[TimePoint] = []
        self._timestamps: List[int] = []
        if timepoints is not None:
            for timepoint in timepoints:
                self.append(timepoint)

    # -- mutation -------------------------------------------------------------

    def append(self, timepoint: TimePoint) -> None:
        """Append a timepoint; its timestamp must exceed the current last one."""
        if self._timestamps and timepoint.timestamp <= self._timestamps[-1]:
            raise InvalidTrajectoryError(
                f"timestamps must strictly increase: {timepoint.timestamp} after {self._timestamps[-1]}"
            )
        self._timepoints.append(timepoint)
        self._timestamps.append(timepoint.timestamp)

    def extend(self, timepoints: Iterable[TimePoint]) -> None:
        """Append several timepoints in order."""
        for timepoint in timepoints:
            self.append(timepoint)

    # -- container protocol -----------------------------------------------------

    def __len__(self) -> int:
        return len(self._timepoints)

    def __iter__(self) -> Iterator[TimePoint]:
        return iter(self._timepoints)

    def __getitem__(self, index: int) -> TimePoint:
        return self._timepoints[index]

    def __bool__(self) -> bool:
        return bool(self._timepoints)

    # -- accessors ---------------------------------------------------------------

    @property
    def timepoints(self) -> Sequence[TimePoint]:
        """Read-only view of the underlying timepoints."""
        return tuple(self._timepoints)

    @property
    def start_time(self) -> int:
        if not self._timepoints:
            raise InvalidTrajectoryError("empty trajectory has no start time")
        return self._timestamps[0]

    @property
    def end_time(self) -> int:
        if not self._timepoints:
            raise InvalidTrajectoryError("empty trajectory has no end time")
        return self._timestamps[-1]

    @property
    def duration(self) -> int:
        """Time spanned by the trajectory (zero for a single timepoint)."""
        return self.end_time - self.start_time

    def location_at(self, timestamp: float) -> Point:
        """Position of the object at ``timestamp`` using linear interpolation.

        Raises :class:`InvalidTrajectoryError` when the timestamp falls outside
        the observed range, matching the paper's definition of ``T(t)``.
        """
        if not self._timepoints:
            raise InvalidTrajectoryError("cannot interpolate an empty trajectory")
        if timestamp < self._timestamps[0] or timestamp > self._timestamps[-1]:
            raise InvalidTrajectoryError(
                f"timestamp {timestamp} outside observed range "
                f"[{self._timestamps[0]}, {self._timestamps[-1]}]"
            )
        index = bisect.bisect_left(self._timestamps, timestamp)
        if index < len(self._timestamps) and self._timestamps[index] == timestamp:
            return self._timepoints[index].point
        previous = self._timepoints[index - 1]
        following = self._timepoints[index]
        span = following.timestamp - previous.timestamp
        fraction = (timestamp - previous.timestamp) / span
        return interpolate_point(previous.point, following.point, fraction)

    def covers_time(self, timestamp: float) -> bool:
        """True when ``timestamp`` lies inside the observed time range."""
        if not self._timepoints:
            return False
        return self._timestamps[0] <= timestamp <= self._timestamps[-1]

    def bounding_box(self, padding: float = 0.0) -> Rectangle:
        """Minimum bounding rectangle of all observed positions."""
        if not self._timepoints:
            raise InvalidTrajectoryError("empty trajectory has no bounding box")
        xs = [tp.x for tp in self._timepoints]
        ys = [tp.y for tp in self._timepoints]
        return Rectangle(
            Point(min(xs) - padding, min(ys) - padding),
            Point(max(xs) + padding, max(ys) + padding),
        )

    def total_length(self) -> float:
        """Sum of Euclidean lengths of the consecutive segments."""
        total = 0.0
        for previous, following in zip(self._timepoints, self._timepoints[1:]):
            total += previous.point.euclidean_distance_to(following.point)
        return total

    def passes_near(self, point: Point, tolerance: float) -> bool:
        """True when the (interpolated) trajectory gets within ``tolerance`` of ``point``.

        Proximity is evaluated with the max-distance metric at every discrete
        timestamp in the observed range, which is exactly the paper's notion of
        a point being *close* to an object given that time is discrete.
        """
        if not self._timepoints:
            return False
        for timestamp in range(self.start_time, self.end_time + 1):
            if self.location_at(timestamp).max_distance_to(point) <= tolerance:
                return True
        return False

    def slice_time(self, start: int, end: int) -> "Trajectory":
        """Return a new trajectory restricted to timepoints with ``start <= t <= end``."""
        if start > end:
            raise InvalidTrajectoryError(f"invalid time slice [{start}, {end}]")
        selected = [tp for tp in self._timepoints if start <= tp.timestamp <= end]
        return Trajectory(self.object_id, selected)

    def resample(self, step: int) -> "Trajectory":
        """Resample the trajectory on a regular grid of ``step`` time units.

        Interpolated positions are emitted for every multiple of ``step`` that
        falls inside the observed range. Useful when comparing against
        baselines that require uniformly spaced measurements.
        """
        if step <= 0:
            raise InvalidTrajectoryError(f"resample step must be positive, got {step}")
        if not self._timepoints:
            return Trajectory(self.object_id)
        first = ((self.start_time + step - 1) // step) * step
        resampled = Trajectory(self.object_id)
        timestamp = first
        while timestamp <= self.end_time:
            resampled.append(TimePoint(self.location_at(timestamp), timestamp))
            timestamp += step
        return resampled

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Trajectory(object_id={self.object_id}, n={len(self)})"
