"""Synthetic road-network generator (substitute for the Athens network).

The paper's evaluation uses a simplified graph of the main road network of
greater Athens: 1831 links connecting 1125 nodes over roughly 250 km², with
links classified into motorways, highways, primary and secondary roads.  That
dataset is not publicly distributed, so this module generates a synthetic
network with the same structural properties:

* nodes form a jittered grid over a square area (so the graph is planar and
  roughly uniform in density, like an urban street network);
* every node connects to its grid neighbours (secondary roads) and a small
  number of long "arterial" rows/columns and diagonals are upgraded to
  primary roads, highways and motorways with correspondingly larger weights;
* the generated network is connected and its node/link counts can be tuned to
  match the Athens figures.

The generator is deterministic given its seed, which keeps experiments
reproducible.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.errors import ConfigurationError
from repro.core.geometry import Point
from repro.network.road_network import RoadClass, RoadNetwork

__all__ = ["NetworkConfig", "SyntheticRoadNetworkGenerator"]


@dataclass(frozen=True)
class NetworkConfig:
    """Parameters of the synthetic network.

    ``area_size`` is the side of the square area in metres (the Athens network
    covers about 250 km², i.e. a ~15.8 km square; the default keeps that
    order of magnitude).  ``grid_nodes_per_axis`` controls the node count
    (``n^2`` nodes in total).  ``jitter_fraction`` perturbs node positions away
    from the regular grid so links are not axis-parallel.  The arterial
    parameters choose how many rows/columns are upgraded to each major class.
    """

    area_size: float = 16000.0
    grid_nodes_per_axis: int = 33
    jitter_fraction: float = 0.25
    motorway_lines: int = 2
    highway_lines: int = 4
    primary_lines: int = 6
    diagonal_fraction: float = 0.15
    seed: int = 7

    def __post_init__(self) -> None:
        if self.area_size <= 0:
            raise ConfigurationError(f"area_size must be positive, got {self.area_size}")
        if self.grid_nodes_per_axis < 2:
            raise ConfigurationError(
                f"grid_nodes_per_axis must be at least 2, got {self.grid_nodes_per_axis}"
            )
        if not 0.0 <= self.jitter_fraction < 0.5:
            raise ConfigurationError(
                f"jitter_fraction must be in [0, 0.5), got {self.jitter_fraction}"
            )
        if not 0.0 <= self.diagonal_fraction <= 1.0:
            raise ConfigurationError(
                f"diagonal_fraction must be in [0, 1], got {self.diagonal_fraction}"
            )


class SyntheticRoadNetworkGenerator:
    """Deterministic generator of Athens-like synthetic road networks."""

    def __init__(self, config: Optional[NetworkConfig] = None) -> None:
        self.config = config if config is not None else NetworkConfig()

    def generate(self) -> RoadNetwork:
        """Build and return the synthetic network."""
        config = self.config
        rng = random.Random(config.seed)
        network = RoadNetwork()
        n = config.grid_nodes_per_axis
        spacing = config.area_size / (n - 1)
        jitter = spacing * config.jitter_fraction

        # Nodes: jittered grid.
        for row in range(n):
            for col in range(n):
                node_id = row * n + col
                x = col * spacing + rng.uniform(-jitter, jitter)
                y = row * spacing + rng.uniform(-jitter, jitter)
                x = min(max(x, 0.0), config.area_size)
                y = min(max(y, 0.0), config.area_size)
                network.add_node(node_id, Point(x, y))

        # Decide which rows/columns host arterials of each class.
        arterial_classes = self._arterial_assignment(rng, n)

        # Grid links: horizontal and vertical neighbours.
        for row in range(n):
            for col in range(n):
                node_id = row * n + col
                if col + 1 < n:
                    road_class = self._link_class(arterial_classes, row=row, column=None)
                    network.add_link(node_id, node_id + 1, road_class)
                if row + 1 < n:
                    road_class = self._link_class(arterial_classes, row=None, column=col)
                    network.add_link(node_id, node_id + n, road_class)

        # A sprinkling of diagonal short-cuts (secondary roads) to break the
        # pure grid structure, mirroring the irregular minor streets of a city.
        for row in range(n - 1):
            for col in range(n - 1):
                if rng.random() < config.diagonal_fraction:
                    node_id = row * n + col
                    if rng.random() < 0.5:
                        network.add_link(node_id, node_id + n + 1, RoadClass.SECONDARY)
                    else:
                        network.add_link(node_id + 1, node_id + n, RoadClass.SECONDARY)

        return network

    # -- internals ---------------------------------------------------------------------

    def _arterial_assignment(self, rng: random.Random, n: int) -> Dict[str, Dict[int, RoadClass]]:
        """Pick which grid rows and columns carry each arterial class.

        The configured line counts are sized for the paper-scale 33x33 grid;
        smaller grids scale them down proportionally (but keep at least one
        line per class) so every road class is represented at any size.
        """
        config = self.config
        reference = 33.0

        def scaled(count: int) -> int:
            return max(1, round(count * n / reference)) if count > 0 else 0

        class_counts = [
            (RoadClass.MOTORWAY, scaled(config.motorway_lines)),
            (RoadClass.HIGHWAY, scaled(config.highway_lines)),
            (RoadClass.PRIMARY, scaled(config.primary_lines)),
        ]
        assignment: Dict[str, Dict[int, RoadClass]] = {"rows": {}, "cols": {}}
        for axis in ("rows", "cols"):
            lines = list(range(n))
            rng.shuffle(lines)
            cursor = 0
            for road_class, count in class_counts:
                for index in lines[cursor : cursor + count]:
                    assignment[axis][index] = road_class
                cursor += count
                if cursor >= n:
                    break
        return assignment

    @staticmethod
    def _link_class(
        assignment: Dict[str, Dict[int, RoadClass]],
        row: Optional[int],
        column: Optional[int],
    ) -> RoadClass:
        """Class of a horizontal (``row`` given) or vertical (``column`` given) link."""
        if row is not None:
            return assignment["rows"].get(row, RoadClass.SECONDARY)
        if column is not None:
            return assignment["cols"].get(column, RoadClass.SECONDARY)
        return RoadClass.SECONDARY
