"""Synthetic road network substrate used by the workload generator."""

from repro.network.road_network import RoadNetwork, RoadNode, RoadLink, RoadClass
from repro.network.generator import SyntheticRoadNetworkGenerator, NetworkConfig

__all__ = [
    "RoadNetwork",
    "RoadNode",
    "RoadLink",
    "RoadClass",
    "SyntheticRoadNetworkGenerator",
    "NetworkConfig",
]
