"""Road network model (paper Section 6.1).

The evaluation workload drives objects along a simplified road network: nodes
are major crossroads connected by straight links, and every link carries a
weight reflecting its significance in vehicle circulation.  Links are
classified into four categories — motorways, highways, primary roads and
secondary roads — and an object leaving a node picks an outgoing link with
probability proportional to the link's weight.

The model here is a small undirected weighted graph with exactly the
operations the workload generator needs: weighted choice of an outgoing link,
link geometry (length, interpolation along the link) and bounding box of the
whole network.  It is deliberately independent of any external graph library.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.core.errors import ConfigurationError
from repro.core.geometry import Point, Rectangle, interpolate_point

__all__ = ["RoadClass", "RoadNode", "RoadLink", "RoadNetwork"]


class RoadClass(enum.Enum):
    """Link categories with their default circulation weights.

    The weights encode the intuition of the paper's generator: objects tend to
    follow main roads for large parts of their movement and enter minor roads
    less frequently.
    """

    MOTORWAY = "motorway"
    HIGHWAY = "highway"
    PRIMARY = "primary"
    SECONDARY = "secondary"

    @property
    def default_weight(self) -> float:
        return _DEFAULT_CLASS_WEIGHTS[self]


_DEFAULT_CLASS_WEIGHTS: Dict[RoadClass, float] = {
    RoadClass.MOTORWAY: 8.0,
    RoadClass.HIGHWAY: 4.0,
    RoadClass.PRIMARY: 2.0,
    RoadClass.SECONDARY: 1.0,
}


@dataclass(frozen=True)
class RoadNode:
    """A crossroad of the network."""

    node_id: int
    location: Point


@dataclass(frozen=True)
class RoadLink:
    """An undirected straight link between two crossroads."""

    link_id: int
    source: int
    target: int
    road_class: RoadClass
    weight: float

    def other_end(self, node_id: int) -> int:
        """The node on the opposite side of ``node_id``."""
        if node_id == self.source:
            return self.target
        if node_id == self.target:
            return self.source
        raise ConfigurationError(f"node {node_id} is not an endpoint of link {self.link_id}")


class RoadNetwork:
    """Undirected weighted road network of nodes and straight links."""

    def __init__(self) -> None:
        self._nodes: Dict[int, RoadNode] = {}
        self._links: Dict[int, RoadLink] = {}
        self._adjacency: Dict[int, List[int]] = {}

    # -- construction -------------------------------------------------------------

    def add_node(self, node_id: int, location: Point) -> RoadNode:
        """Add a crossroad; node ids must be unique."""
        if node_id in self._nodes:
            raise ConfigurationError(f"node {node_id} already exists")
        node = RoadNode(node_id, location)
        self._nodes[node_id] = node
        self._adjacency[node_id] = []
        return node

    def add_link(
        self,
        source: int,
        target: int,
        road_class: RoadClass = RoadClass.SECONDARY,
        weight: Optional[float] = None,
    ) -> RoadLink:
        """Add an undirected link between two existing nodes."""
        if source not in self._nodes or target not in self._nodes:
            raise ConfigurationError(f"both endpoints must exist before adding link {source}-{target}")
        if source == target:
            raise ConfigurationError(f"self-loop links are not allowed (node {source})")
        link_id = len(self._links)
        link = RoadLink(
            link_id,
            source,
            target,
            road_class,
            weight if weight is not None else road_class.default_weight,
        )
        self._links[link_id] = link
        self._adjacency[source].append(link_id)
        self._adjacency[target].append(link_id)
        return link

    # -- accessors ---------------------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    @property
    def num_links(self) -> int:
        return len(self._links)

    def nodes(self) -> Iterator[RoadNode]:
        return iter(self._nodes.values())

    def links(self) -> Iterator[RoadLink]:
        return iter(self._links.values())

    def node(self, node_id: int) -> RoadNode:
        try:
            return self._nodes[node_id]
        except KeyError:
            raise ConfigurationError(f"unknown node {node_id}") from None

    def link(self, link_id: int) -> RoadLink:
        try:
            return self._links[link_id]
        except KeyError:
            raise ConfigurationError(f"unknown link {link_id}") from None

    def node_ids(self) -> List[int]:
        return list(self._nodes.keys())

    def outgoing_links(self, node_id: int) -> List[RoadLink]:
        """All links incident to ``node_id``."""
        return [self._links[link_id] for link_id in self._adjacency.get(node_id, [])]

    def degree(self, node_id: int) -> int:
        return len(self._adjacency.get(node_id, []))

    # -- geometry -----------------------------------------------------------------------

    def link_length(self, link_id: int) -> float:
        """Euclidean length of a link."""
        link = self.link(link_id)
        return self.node(link.source).location.euclidean_distance_to(
            self.node(link.target).location
        )

    def position_along(self, link_id: int, from_node: int, distance: float) -> Point:
        """Point at ``distance`` from ``from_node`` along the link, clamped to the link."""
        link = self.link(link_id)
        start = self.node(from_node).location
        end = self.node(link.other_end(from_node)).location
        length = start.euclidean_distance_to(end)
        if length == 0.0:
            return start
        fraction = min(max(distance / length, 0.0), 1.0)
        return interpolate_point(start, end, fraction)

    def bounding_box(self, padding: float = 0.0) -> Rectangle:
        """Minimum bounding rectangle of all node locations."""
        if not self._nodes:
            raise ConfigurationError("empty network has no bounding box")
        xs = [node.location.x for node in self._nodes.values()]
        ys = [node.location.y for node in self._nodes.values()]
        return Rectangle(
            Point(min(xs) - padding, min(ys) - padding),
            Point(max(xs) + padding, max(ys) + padding),
        )

    # -- link selection -----------------------------------------------------------------

    def link_choice_weights(self, node_id: int) -> List[Tuple[RoadLink, float]]:
        """Outgoing links of a node with their normalised choice probabilities.

        The probability of following a link is its weight divided by the total
        weight of all links connected to the node, exactly the ratio rule of
        the paper's generator.
        """
        links = self.outgoing_links(node_id)
        total = sum(link.weight for link in links)
        if total == 0.0 or not links:
            return []
        return [(link, link.weight / total) for link in links]

    # -- analysis helpers ------------------------------------------------------------------

    def total_length(self) -> float:
        """Sum of the lengths of all links."""
        return sum(self.link_length(link_id) for link_id in self._links)

    def is_connected(self) -> bool:
        """True when every node is reachable from every other node."""
        if not self._nodes:
            return True
        start = next(iter(self._nodes))
        seen = {start}
        frontier = [start]
        while frontier:
            current = frontier.pop()
            for link in self.outgoing_links(current):
                neighbour = link.other_end(current)
                if neighbour not in seen:
                    seen.add(neighbour)
                    frontier.append(neighbour)
        return len(seen) == len(self._nodes)

    def class_histogram(self) -> Dict[RoadClass, int]:
        """Number of links per road class."""
        histogram: Dict[RoadClass, int] = {road_class: 0 for road_class in RoadClass}
        for link in self._links.values():
            histogram[link.road_class] += 1
        return histogram
