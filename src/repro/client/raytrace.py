"""The RayTrace filter executed on every moving object (paper Section 4, Algorithm 1).

RayTrace is a one-pass greedy algorithm with O(1) state.  It maintains a
*Spatial Safe Area* (SSA): a spatiotemporal pyramid anchored at an initial
timepoint ``<s, t_s>`` whose cross-section at the current final timestamp
``t_e`` is the *Final Safe Area* (FSA) rectangle.  The invariant is that a
motion path ``s -> e`` exists for every point ``e`` inside the FSA, crossed by
the object during ``[t_s, t_e]``.

For each incoming measurement the filter projects the SSA onto the
measurement's timestamp, intersects the projection with the measurement's
tolerance square and, if the intersection is non-empty, adopts it as the new
FSA.  When the intersection is empty the SSA cannot grow: the object sends its
compact state to the coordinator and enters *waiting mode*, buffering further
measurements until the coordinator's response (which arrives at the next
epoch) supplies the initial timepoint of the next SSA.  That hand-off is what
chains consecutive motion paths into a covering set.

Uncertainty-aware filtering (Section 4.1) only changes how the tolerance
square is computed: an :class:`~repro.client.uncertainty.NormalToleranceModel`
derives per-axis admissible intervals from the measurement's reported sigmas.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, List, Optional, Union

from repro.core.errors import ConfigurationError, CoordinatorError
from repro.core.geometry import Point, Rectangle
from repro.core.trajectory import TimePoint, UncertainTimePoint
from repro.client.state import CoordinatorResponse, ObjectState
from repro.client.uncertainty import NormalToleranceModel

__all__ = ["RayTraceConfig", "RayTraceStatistics", "RayTraceFilter"]

Measurement = Union[TimePoint, UncertainTimePoint]


@dataclass(frozen=True)
class RayTraceConfig:
    """Configuration of a RayTrace filter.

    ``epsilon`` is the spatial tolerance.  When ``delta`` is positive the
    filter treats measurements as uncertain and uses the Gaussian tolerance
    model; otherwise tolerance squares have fixed side ``2 * epsilon``.
    """

    epsilon: float
    delta: float = 0.0

    def __post_init__(self) -> None:
        if self.epsilon <= 0:
            raise ConfigurationError(f"epsilon must be positive, got {self.epsilon}")
        if not 0.0 <= self.delta < 1.0:
            raise ConfigurationError(f"delta must be in [0, 1), got {self.delta}")


@dataclass
class RayTraceStatistics:
    """Counters describing the filtering behaviour of one object."""

    measurements_processed: int = 0
    states_sent: int = 0
    responses_received: int = 0
    buffered_high_watermark: int = 0

    @property
    def suppression_ratio(self) -> float:
        """Fraction of measurements that did *not* trigger a state message."""
        if self.measurements_processed == 0:
            return 0.0
        return 1.0 - self.states_sent / self.measurements_processed


class RayTraceFilter:
    """Client-side filter maintaining the Spatial Safe Area for one object.

    The filter is driven by two entry points: :meth:`observe` for every new
    location measurement, and :meth:`receive_response` when the coordinator's
    reply arrives at an epoch boundary.  Both return the state message emitted
    as a consequence (if any), which the simulation engine forwards to the
    coordinator.
    """

    def __init__(
        self,
        object_id: int,
        initial: Measurement,
        config: RayTraceConfig,
        tolerance_model: Optional[NormalToleranceModel] = None,
    ) -> None:
        self.object_id = object_id
        self.config = config
        if config.delta > 0.0 and tolerance_model is None:
            tolerance_model = NormalToleranceModel(config.epsilon, config.delta)
        self._tolerance_model = tolerance_model
        self.statistics = RayTraceStatistics()

        initial_tp = self._as_timepoint(initial)
        # SSA state: start timepoint and FSA rectangle at time t_end.
        self._t_start: int = initial_tp.timestamp
        self._t_end: int = initial_tp.timestamp
        self._start: Point = initial_tp.point
        self._fsa: Rectangle = Rectangle.degenerate(initial_tp.point)

        self._waiting: bool = False
        self._buffer: Deque[Measurement] = deque()

    # -- public state ------------------------------------------------------------

    @property
    def waiting(self) -> bool:
        """True while the filter awaits the coordinator's response."""
        return self._waiting

    @property
    def ssa_start(self) -> TimePoint:
        """Initial timepoint of the current SSA."""
        return TimePoint(self._start, self._t_start)

    @property
    def fsa(self) -> Rectangle:
        """Current Final Safe Area rectangle (at time :attr:`fsa_timestamp`)."""
        return self._fsa

    @property
    def fsa_timestamp(self) -> int:
        return self._t_end

    @property
    def buffered_measurements(self) -> int:
        """Number of measurements waiting to be processed after the next response."""
        return len(self._buffer)

    def current_state(self) -> ObjectState:
        """The state message describing the current SSA."""
        return ObjectState(
            object_id=self.object_id,
            start=self._start,
            t_start=self._t_start,
            fsa_low=self._fsa.low,
            fsa_high=self._fsa.high,
            t_end=self._t_end,
        )

    # -- protocol entry points ------------------------------------------------------

    def observe(self, measurement: Measurement) -> Optional[ObjectState]:
        """Process a new location measurement.

        Returns the state message to transmit when the measurement breaks the
        SSA, or ``None`` when the measurement was absorbed (or merely buffered
        because the filter is waiting for the coordinator).
        """
        self.statistics.measurements_processed += 1
        self._buffer.append(measurement)
        self.statistics.buffered_high_watermark = max(
            self.statistics.buffered_high_watermark, len(self._buffer)
        )
        if self._waiting:
            return None
        return self._drain_buffer()

    def receive_response(self, response: CoordinatorResponse) -> Optional[ObjectState]:
        """Handle the coordinator's response at an epoch boundary.

        The response's endpoint becomes the initial timepoint of the next SSA;
        buffered measurements are then replayed, which may immediately emit a
        new state message (returned) and re-enter waiting mode.
        """
        if not self._waiting:
            raise CoordinatorError(
                f"object {self.object_id} received a response while not waiting"
            )
        if response.object_id != self.object_id:
            raise CoordinatorError(
                f"response for object {response.object_id} delivered to object {self.object_id}"
            )
        self.statistics.responses_received += 1
        self._t_start = response.timestamp
        self._t_end = response.timestamp
        self._start = response.endpoint
        self._fsa = Rectangle.degenerate(response.endpoint)
        self._waiting = False
        return self._drain_buffer()

    # -- core SSA update -----------------------------------------------------------------

    def _drain_buffer(self) -> Optional[ObjectState]:
        """Process buffered measurements until one breaks the SSA or the buffer empties."""
        while not self._waiting and self._buffer:
            measurement = self._buffer.popleft()
            emitted = self._process(measurement)
            if emitted is not None:
                return emitted
        return None

    def _process(self, measurement: Measurement) -> Optional[ObjectState]:
        timepoint = self._as_timepoint(measurement)
        if timepoint.timestamp < self._t_end:
            raise CoordinatorError(
                f"object {self.object_id}: measurement at t={timepoint.timestamp} "
                f"arrived after SSA already extends to t={self._t_end}"
            )
        tolerance_square = self._tolerance_square(measurement)

        if self._t_end == self._t_start:
            # First measurement after the SSA start: the FSA is simply the
            # tolerance square of this measurement (Lines 20-23 of Algorithm 1).
            if timepoint.timestamp == self._t_start:
                # A duplicate of the start timestamp carries no new extent.
                return None
            self._t_end = timepoint.timestamp
            self._fsa = tolerance_square
            return None

        projection = self._project_ssa(timepoint.timestamp)
        intersection = projection.intersection(tolerance_square)
        if intersection is not None:
            self._t_end = timepoint.timestamp
            self._fsa = intersection
            return None

        # SSA cannot grow: report state, re-buffer the violating measurement so
        # it is replayed against the next SSA, and wait for the coordinator.
        # (Algorithm 1 pushes it back onto the buffer; we push it to the front
        # to preserve temporal order relative to measurements that arrive while
        # waiting.)
        self._waiting = True
        self._buffer.appendleft(measurement)
        self.statistics.states_sent += 1
        return self.current_state()

    def _project_ssa(self, timestamp: int) -> Rectangle:
        """Project the SSA onto the plane ``t = timestamp`` (Lines 26-27 of Algorithm 1).

        The SSA is the pyramid spanned by the start point at ``t_start`` and
        the FSA at ``t_end``; for ``timestamp >= t_end`` the projection keeps
        expanding linearly along the same rays.
        """
        span = self._t_end - self._t_start
        if span == 0:
            return Rectangle.degenerate(self._start)
        fraction = (timestamp - self._t_start) / span
        low = Point(
            self._start.x + fraction * (self._fsa.low.x - self._start.x),
            self._start.y + fraction * (self._fsa.low.y - self._start.y),
        )
        high = Point(
            self._start.x + fraction * (self._fsa.high.x - self._start.x),
            self._start.y + fraction * (self._fsa.high.y - self._start.y),
        )
        # The rays may cross for fractions > 1 when the FSA lies entirely on
        # one side of the start point; normalise the corner order.
        return Rectangle(
            Point(min(low.x, high.x), min(low.y, high.y)),
            Point(max(low.x, high.x), max(low.y, high.y)),
        )

    def _tolerance_square(self, measurement: Measurement) -> Rectangle:
        if isinstance(measurement, UncertainTimePoint) and self._tolerance_model is not None:
            return self._tolerance_model.tolerance_square(measurement)
        point = measurement.point
        return Rectangle.from_center(point, self.config.epsilon)

    @staticmethod
    def _as_timepoint(measurement: Measurement) -> TimePoint:
        if isinstance(measurement, UncertainTimePoint):
            return measurement.certain()
        return measurement
