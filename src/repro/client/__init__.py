"""Client (moving object) tier: the RayTrace filter and the uncertainty model."""

from repro.client.raytrace import RayTraceFilter, RayTraceConfig
from repro.client.state import ObjectState, CoordinatorResponse
from repro.client.uncertainty import (
    NormalToleranceModel,
    ToleranceInterval,
    UnsatisfiableTolerancePolicy,
)

__all__ = [
    "RayTraceFilter",
    "RayTraceConfig",
    "ObjectState",
    "CoordinatorResponse",
    "NormalToleranceModel",
    "ToleranceInterval",
    "UnsatisfiableTolerancePolicy",
]
