"""Messages exchanged between moving objects and the coordinator.

The paper's protocol is deliberately tiny:

* when RayTrace can no longer grow its Spatial Safe Area, the object sends an
  :class:`ObjectState` — the SSA start timepoint plus the Final Safe Area and
  its timestamp (three points and two timestamps in total);
* at the next epoch the coordinator answers with a
  :class:`CoordinatorResponse` carrying the single endpoint timepoint that the
  object must use as the start of its next SSA, which is what guarantees the
  covering-set chaining.

Both messages expose ``message_size_bytes`` so the simulation can account for
communication volume, one of the costs the framework is designed to reduce.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.core.geometry import Point, Rectangle

__all__ = ["ObjectState", "CoordinatorResponse"]

# A coordinate or timestamp serialised as a 4-byte value, mirroring the
# compact binary encoding a real deployment would use.
_FIELD_BYTES = 4


@dataclass(frozen=True)
class ObjectState:
    """State message ``<s, t_s, l(t_e), u(t_e), t_e>`` sent by a reporting object."""

    object_id: int
    start: Point
    t_start: int
    fsa_low: Point
    fsa_high: Point
    t_end: int

    @property
    def fsa(self) -> Rectangle:
        """The Final Safe Area as a rectangle."""
        return Rectangle(self.fsa_low, self.fsa_high)

    @property
    def duration(self) -> int:
        """Length of the time interval covered by the reported SSA."""
        return self.t_end - self.t_start

    def message_size_bytes(self) -> int:
        """Size of the state message on the wire.

        Three points (six coordinates), two timestamps and the object id.
        """
        return (6 + 2 + 1) * _FIELD_BYTES

    def as_tuple(self) -> Tuple[int, float, float, int, float, float, float, float, int]:
        """Flat tuple representation, convenient for logging and CSV export."""
        return (
            self.object_id,
            self.start.x,
            self.start.y,
            self.t_start,
            self.fsa_low.x,
            self.fsa_low.y,
            self.fsa_high.x,
            self.fsa_high.y,
            self.t_end,
        )


@dataclass(frozen=True)
class CoordinatorResponse:
    """Response ``<e, t_e>`` assigning the object its next SSA start timepoint."""

    object_id: int
    endpoint: Point
    timestamp: int

    def message_size_bytes(self) -> int:
        """Size of the response on the wire: one point, one timestamp, the id."""
        return (2 + 1 + 1) * _FIELD_BYTES
