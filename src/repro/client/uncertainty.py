"""Uncertainty-aware tolerance intervals (paper Section 4.1).

A location sensor reports the mean and standard deviation of a Gaussian
estimate of the true position.  Given tolerance parameters ``(epsilon,
delta)``, a candidate location ``x'`` is *close* to the measurement when the
true location falls inside ``[x' - epsilon, x' + epsilon]`` with probability at
least ``1 - delta``.  The set of admissible ``x'`` values is an interval
``[l, u]`` centred on the reported mean; it is obtained by solving

    Phi((x' + eps - x) / sigma) - Phi((x' - eps - x) / sigma) = 1 - delta

for the two extreme values of ``x'`` (Equation 2).  The paper recommends a
precomputed lookup table; :class:`NormalToleranceModel` builds one (offsets of
``x' - x`` in units of sigma, indexed by ``epsilon / sigma``) and falls back to
bisection outside its range.

In two dimensions the requirement splits into per-axis conditions with failure
probability ``delta / 2`` each, so the same 1-d machinery applies to x and y
independently and the tolerance *square* becomes the product of the two
intervals.
"""

from __future__ import annotations

import bisect
import enum
import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.errors import ToleranceError
from repro.core.geometry import Point, Rectangle
from repro.core.trajectory import UncertainTimePoint

__all__ = [
    "standard_normal_cdf",
    "interval_probability",
    "ToleranceInterval",
    "UnsatisfiableTolerancePolicy",
    "NormalToleranceModel",
]


def standard_normal_cdf(z: float) -> float:
    """Cumulative distribution function of the standard normal distribution."""
    return 0.5 * (1.0 + math.erf(z / math.sqrt(2.0)))


def interval_probability(center_offset: float, epsilon: float, sigma: float) -> float:
    """Probability that ``X ~ N(0, sigma^2)`` lies in ``[offset - eps, offset + eps]``.

    ``center_offset`` is the (signed) distance of the candidate location from
    the reported mean.  With ``sigma == 0`` the measurement is exact and the
    probability degenerates to an indicator.
    """
    if sigma == 0.0:
        return 1.0 if abs(center_offset) <= epsilon else 0.0
    upper = standard_normal_cdf((center_offset + epsilon) / sigma)
    lower = standard_normal_cdf((center_offset - epsilon) / sigma)
    return upper - lower


@dataclass(frozen=True)
class ToleranceInterval:
    """Admissible interval ``[low, high]`` of close locations on one axis."""

    low: float
    high: float

    @property
    def half_width(self) -> float:
        return (self.high - self.low) / 2.0

    @property
    def center(self) -> float:
        return (self.high + self.low) / 2.0

    def contains(self, value: float) -> bool:
        return self.low <= value <= self.high


class UnsatisfiableTolerancePolicy(enum.Enum):
    """What to do when Equation 2 has no solution (noise too large for epsilon).

    ``RAISE`` surfaces a :class:`ToleranceError` (the strictest reading of the
    paper).  ``MINIMAL`` is the retroactive fallback the paper suggests: assign
    a predefined minimal tolerance interval centred on the reported mean.
    """

    RAISE = "raise"
    MINIMAL = "minimal"


class NormalToleranceModel:
    """Solver for uncertainty-aware tolerance intervals and squares.

    Parameters
    ----------
    epsilon:
        Spatial tolerance of the motion-path definition.
    delta:
        Maximum allowed failure probability. ``delta == 0`` disables the
        probabilistic model and the tolerance interval is the plain
        ``[x - eps, x + eps]``.
    table_resolution:
        Number of entries in the precomputed lookup table over the offset axis.
    policy:
        Behaviour when the interval is unsatisfiable; see
        :class:`UnsatisfiableTolerancePolicy`.
    minimal_half_width:
        Half width of the fallback interval used by the ``MINIMAL`` policy.
    """

    def __init__(
        self,
        epsilon: float,
        delta: float = 0.0,
        table_resolution: int = 2048,
        policy: UnsatisfiableTolerancePolicy = UnsatisfiableTolerancePolicy.MINIMAL,
        minimal_half_width: Optional[float] = None,
    ) -> None:
        if epsilon <= 0:
            raise ToleranceError(f"epsilon must be positive, got {epsilon}")
        if not 0.0 <= delta < 1.0:
            raise ToleranceError(f"delta must be in [0, 1), got {delta}")
        if table_resolution < 2:
            raise ToleranceError(f"table resolution must be at least 2, got {table_resolution}")
        self.epsilon = epsilon
        self.delta = delta
        self.policy = policy
        self.minimal_half_width = (
            minimal_half_width if minimal_half_width is not None else epsilon * 0.05
        )
        self._table_resolution = table_resolution
        # Per-axis failure budget: the paper splits delta evenly between x and y.
        self._axis_delta = delta / 2.0
        # Lookup tables are keyed by sigma because offsets scale with sigma; we
        # cache the solved half width for recently seen sigmas.
        self._half_width_cache: dict = {}

    # -- one-dimensional interval -------------------------------------------------

    def max_supported_sigma(self, axis_delta: Optional[float] = None) -> float:
        """Largest sigma for which Equation 2 still has a solution.

        A solution exists iff the probability mass of ``[-eps, eps]`` around
        the mean itself is at least ``1 - delta`` (the best possible candidate
        is the mean).  Solving ``2 Phi(eps / sigma) - 1 >= 1 - delta`` for sigma
        gives the bound returned here.
        """
        delta = self._axis_delta if axis_delta is None else axis_delta
        if delta <= 0.0:
            return 0.0
        # Invert: Phi(eps / sigma) = 1 - delta / 2  =>  eps / sigma = z
        z = self._standard_normal_quantile(1.0 - delta / 2.0)
        if z <= 0:
            return math.inf
        return self.epsilon / z

    def tolerance_interval(
        self, mean: float, sigma: float, axis_delta: Optional[float] = None
    ) -> ToleranceInterval:
        """Admissible interval of close locations for a 1-d measurement.

        With ``delta == 0`` or ``sigma == 0`` this is simply
        ``[mean - eps, mean + eps]``; otherwise the interval shrinks as the
        noise grows, collapsing to the unsatisfiable case handled per policy.
        """
        delta = self._axis_delta if axis_delta is None else axis_delta
        if delta <= 0.0 or sigma <= 0.0:
            return ToleranceInterval(mean - self.epsilon, mean + self.epsilon)
        half_width = self._solve_half_width(sigma, delta)
        if half_width is None:
            if self.policy is UnsatisfiableTolerancePolicy.RAISE:
                raise ToleranceError(
                    f"no tolerance interval exists for sigma={sigma} with "
                    f"epsilon={self.epsilon}, delta={delta}"
                )
            half_width = self.minimal_half_width
        return ToleranceInterval(mean - half_width, mean + half_width)

    # -- two-dimensional square ------------------------------------------------------

    def tolerance_square(self, measurement: UncertainTimePoint) -> Rectangle:
        """Tolerance rectangle for a 2-d uncertain measurement.

        The per-axis intervals are computed with failure budget ``delta / 2``
        each, following the simplification in Section 4.1, then combined into
        an axis-aligned rectangle.
        """
        interval_x = self.tolerance_interval(measurement.x, measurement.sigma_x)
        interval_y = self.tolerance_interval(measurement.y, measurement.sigma_y)
        return Rectangle(
            Point(interval_x.low, interval_y.low),
            Point(interval_x.high, interval_y.high),
        )

    def effective_half_widths(self, measurement: UncertainTimePoint) -> Tuple[float, float]:
        """Half widths of the tolerance square on each axis (for diagnostics)."""
        square = self.tolerance_square(measurement)
        return (square.width / 2.0, square.height / 2.0)

    # -- internals --------------------------------------------------------------------

    def _solve_half_width(self, sigma: float, delta: float) -> Optional[float]:
        """Solve Equation 2 for the half width of the admissible interval.

        The admissible offsets are symmetric around zero, so it suffices to
        find the largest non-negative offset ``d`` with
        ``interval_probability(d, eps, sigma) >= 1 - delta``.  Returns ``None``
        when even ``d = 0`` fails, i.e. the equation has no solution.
        """
        key = (round(sigma, 9), round(delta, 12))
        if key in self._half_width_cache:
            return self._half_width_cache[key]
        target = 1.0 - delta
        if interval_probability(0.0, self.epsilon, sigma) < target:
            self._half_width_cache[key] = None
            return None
        # interval_probability is monotonically decreasing in |offset|, so a
        # bisection over [0, epsilon] finds the boundary offset. Offsets larger
        # than epsilon are impossible: the mean itself would then lie outside
        # [x' - eps, x' + eps] and the mass could not reach 1 - delta for any
        # delta < 1/2; for larger delta the boundary is still found because we
        # extend the bracket until the probability drops below the target.
        low, high = 0.0, self.epsilon
        while interval_probability(high, self.epsilon, sigma) >= target:
            high *= 2.0
            if high > self.epsilon * 1e6:
                break
        for _ in range(60):
            mid = (low + high) / 2.0
            if interval_probability(mid, self.epsilon, sigma) >= target:
                low = mid
            else:
                high = mid
        self._half_width_cache[key] = low
        return low

    @staticmethod
    def _standard_normal_quantile(p: float) -> float:
        """Inverse standard normal CDF via bisection (no scipy dependency needed)."""
        if not 0.0 < p < 1.0:
            raise ToleranceError(f"quantile probability must be in (0, 1), got {p}")
        low, high = -12.0, 12.0
        for _ in range(80):
            mid = (low + high) / 2.0
            if standard_normal_cdf(mid) < p:
                low = mid
            else:
                high = mid
        return (low + high) / 2.0
