"""Discrete-time simulation engine wiring clients, coordinator and baselines."""

from repro.simulation.engine import HotPathSimulation, SimulationConfig, SimulationResult
from repro.simulation.metrics import EpochMetrics, MetricsCollector, CommunicationStats
from repro.simulation.replay import TrajectoryReplayDriver, ReplayStatistics

__all__ = [
    "HotPathSimulation",
    "SimulationConfig",
    "SimulationResult",
    "EpochMetrics",
    "MetricsCollector",
    "CommunicationStats",
    "TrajectoryReplayDriver",
    "ReplayStatistics",
]
