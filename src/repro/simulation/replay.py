"""Replay recorded trajectories through the full client/coordinator protocol.

The simulation engine generates its own workload; sometimes you already *have*
trajectories — GPS logs, the scenario builders in
:mod:`repro.workload.scenarios`, or traces exported from another system — and
want to run hot-motion-path discovery over them exactly as the on-line
protocol would have.  :class:`TrajectoryReplayDriver` does that: it feeds the
measurements in global timestamp order to one RayTrace filter per object,
batches the resulting state messages, runs coordinator epochs on the paper's
schedule and hands the responses back to the filters.

The driver optionally uses the feedback extension
(:mod:`repro.extensions.feedback`): pass a :class:`FeedbackCoordinator` and set
``use_feedback=True`` to let clients snap their reports onto hinted hot
vertices.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Union

from repro.core.errors import ConfigurationError
from repro.core.trajectory import TimePoint, Trajectory, UncertainTimePoint
from repro.client.raytrace import RayTraceConfig, RayTraceFilter
from repro.client.state import ObjectState
from repro.coordinator.coordinator import Coordinator
from repro.extensions.feedback import FeedbackCoordinator, FeedbackRayTraceFilter
from repro.simulation.metrics import CommunicationStats

__all__ = ["ReplayStatistics", "TrajectoryReplayDriver"]

Measurement = Union[TimePoint, UncertainTimePoint]
MeasurementStream = Union[Trajectory, Sequence[Measurement]]


@dataclass
class ReplayStatistics:
    """Counters describing one replay run."""

    objects: int = 0
    measurements: int = 0
    epochs: int = 0
    uplink: CommunicationStats = field(default_factory=CommunicationStats)
    downlink: CommunicationStats = field(default_factory=CommunicationStats)
    snapped_reports: int = 0


class TrajectoryReplayDriver:
    """Drives RayTrace filters and a coordinator over pre-recorded trajectories."""

    def __init__(
        self,
        coordinator: Coordinator,
        raytrace_config: RayTraceConfig,
        epoch_length: int = 10,
        flush_at_end: bool = True,
        use_feedback: bool = False,
    ) -> None:
        if epoch_length <= 0:
            raise ConfigurationError(f"epoch_length must be positive, got {epoch_length}")
        if use_feedback and not isinstance(coordinator, FeedbackCoordinator):
            raise ConfigurationError(
                "use_feedback=True requires a FeedbackCoordinator instance"
            )
        self.coordinator = coordinator
        self.raytrace_config = raytrace_config
        self.epoch_length = epoch_length
        self.flush_at_end = flush_at_end
        self.use_feedback = use_feedback
        self.statistics = ReplayStatistics()
        self._filters: Dict[int, RayTraceFilter] = {}

    # -- public API --------------------------------------------------------------

    def replay(self, streams: Mapping[int, MeasurementStream]) -> ReplayStatistics:
        """Replay all measurement streams and return the run's statistics.

        ``streams`` maps object ids to trajectories (or plain measurement
        sequences); each stream must be ordered by timestamp, but different
        streams may start and end at different times.
        """
        if not streams:
            raise ConfigurationError("cannot replay an empty set of trajectories")
        normalised = {oid: self._normalise(stream) for oid, stream in streams.items()}
        self.statistics.objects = len(normalised)

        start_time = min(stream[0].timestamp for stream in normalised.values())
        end_time = max(stream[-1].timestamp for stream in normalised.values())
        offsets = {oid: stream[0].timestamp for oid, stream in normalised.items()}

        for timestamp in range(start_time, end_time + 1):
            for object_id, stream in normalised.items():
                index = timestamp - offsets[object_id]
                if index < 0 or index >= len(stream):
                    continue
                self._feed(object_id, stream[index])
            if timestamp % self.epoch_length == 0 and timestamp > start_time:
                self._run_epoch(timestamp)

        if self.flush_at_end:
            self._flush(end_time)
        self._run_epoch(end_time + 1)
        return self.statistics

    def filter_for(self, object_id: int) -> RayTraceFilter:
        """The filter driving ``object_id`` (available after :meth:`replay`)."""
        try:
            return self._filters[object_id]
        except KeyError:
            raise ConfigurationError(f"object {object_id} was not part of the replay") from None

    # -- internals ---------------------------------------------------------------------

    @staticmethod
    def _normalise(stream: MeasurementStream) -> List[Measurement]:
        measurements = list(stream)
        if not measurements:
            raise ConfigurationError("encountered an empty trajectory")
        return measurements

    def _make_filter(self, object_id: int, initial: Measurement) -> RayTraceFilter:
        if self.use_feedback:
            return FeedbackRayTraceFilter(object_id, initial, self.raytrace_config)
        return RayTraceFilter(object_id, initial, self.raytrace_config)

    def _feed(self, object_id: int, measurement: Measurement) -> None:
        filt = self._filters.get(object_id)
        if filt is None:
            self._filters[object_id] = self._make_filter(object_id, measurement)
            self.statistics.measurements += 1
            return
        self.statistics.measurements += 1
        state = filt.observe(measurement)
        if state is not None:
            self._submit(state)

    def _submit(self, state: ObjectState) -> None:
        self.statistics.uplink.record(state.message_size_bytes())
        self.coordinator.submit_state(state)

    def _run_epoch(self, timestamp: int) -> None:
        self.statistics.epochs += 1
        if self.use_feedback:
            _outcome, feedback = self.coordinator.run_epoch_with_feedback(timestamp)
            for item in feedback:
                filt = self._filters[item.object_id]
                if not filt.waiting:
                    # Response to a final-flush state: the filter kept running
                    # on its current SSA, so there is nothing to deliver.
                    continue
                self.statistics.downlink.record(item.message_size_bytes())
                follow_up = filt.receive_feedback(item)
                if follow_up is not None:
                    self._submit(follow_up)
            return
        outcome = self.coordinator.run_epoch(timestamp)
        for response in outcome.responses:
            filt = self._filters[response.object_id]
            if not filt.waiting:
                continue
            self.statistics.downlink.record(response.message_size_bytes())
            follow_up = filt.receive_response(response)
            if follow_up is not None:
                self._submit(follow_up)

    def _flush(self, end_time: int) -> None:
        """Report every still-open SSA so trailing motion is indexed."""
        for filt in self._filters.values():
            if filt.waiting:
                continue
            if filt.fsa_timestamp > filt.ssa_start.timestamp:
                self._submit(filt.current_state())
        for filt in self._filters.values():
            if isinstance(filt, FeedbackRayTraceFilter):
                self.statistics.snapped_reports += filt.snapped_reports
