"""End-to-end discrete-time simulation of the hot-motion-path framework.

The engine reproduces the experimental setting of Section 6: a synthetic road
network, N objects moving over it with agility alpha and displacement s, each
object running a RayTrace filter with tolerance epsilon (or (epsilon, delta)),
a central coordinator executing SinglePath once per epoch of Lambda timestamps
and, optionally, the DP hot-segment baseline and the naive always-report client
consuming the very same measurement stream for comparison.

Typical use::

    config = SimulationConfig(num_objects=2000, tolerance=10.0, duration=250)
    result = HotPathSimulation(config).run()
    print(result.metrics.mean_index_size, result.metrics.mean_top_k_score)
    for scored in result.top_k_paths(10):
        print(scored.path.start, scored.path.end, scored.hotness)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.errors import ConfigurationError
from repro.core.geometry import Rectangle
from repro.core.motion_path import MotionPathRecord
from repro.core.scoring import ScoredPath
from repro.core.trajectory import TimePoint, UncertainTimePoint
from repro.client.raytrace import RayTraceConfig, RayTraceFilter
from repro.client.state import ObjectState
from repro.coordinator.coordinator import Coordinator, CoordinatorConfig
from repro.coordinator.stitching import CompositeCorridor
from repro.baselines.dp_hot import DPHotSegmentTracker
from repro.baselines.naive import NaiveClient
from repro.network.generator import NetworkConfig, SyntheticRoadNetworkGenerator
from repro.network.road_network import RoadNetwork
from repro.simulation.metrics import EpochMetrics, MetricsCollector
from repro.workload.moving_objects import MovingObjectWorkload, WorkloadConfig

__all__ = ["SimulationConfig", "SimulationResult", "HotPathSimulation"]

Measurement = Union[TimePoint, UncertainTimePoint]


@dataclass(frozen=True)
class SimulationConfig:
    """Configuration of a full simulation run (defaults mirror Table 2).

    ``tolerance`` is epsilon in metres; ``delta`` enables the uncertainty-aware
    filter when positive.  ``window`` is W, ``epoch_length`` is Lambda and
    ``duration`` the total number of timestamps.  ``top_k`` is the k of the
    quality metric.  ``run_dp_baseline`` / ``run_naive_baseline`` toggle the
    comparison methods (they share the measurement stream, so enabling them
    does not perturb the main method).  ``num_shards`` partitions the
    coordinator into a shard fleet (1 = the paper's central coordinator) and
    ``backend`` selects the fleet's epoch execution backend (``serial``,
    ``threads`` or ``processes``); sharding and every backend are
    behaviour-identical, so results are comparable across values.
    ``overlap_halo`` sizes the halo of the fleet's shard-local FSA overlap
    structures (``None`` = adaptive exact halo, behaviour-identical below a
    saturated region cap; ``h`` = fixed ring of ``h`` neighbouring shards,
    which may deviate).  ``stitching`` controls the composite-corridor
    report: ``exact`` (default) stitches hot-path chains across shard
    boundaries — bit-for-bit the seed coordinator's long-path report —
    while ``off`` truncates corridors at shard boundaries (quantified by
    the differential harness); individual path results are identical either
    way.  ``partition`` selects the fleet's spatial layout: ``uniform`` (the
    fixed R x C grid) or ``kd`` (load-adaptive kd splits, rebalanced at
    epoch boundaries when the shard-load imbalance exceeds
    ``rebalance_threshold``); both are behaviour-identical.  ``epoch_mode``
    selects the incremental epoch pipeline: ``delta`` (the default) reuses
    unchanged halo pools and corridor chains across epochs — bit-for-bit
    equal to ``full``, which rebuilds everything per epoch.  ``kernel``
    selects the coordinator's geometry kernels: ``columnar`` (the default)
    runs the vectorized numpy hot path, bit-for-bit equal to the ``object``
    scalar reference.  ``elastic`` hands the shard *count* to the router's
    cost model (``auto`` splits hot shards and merges cold neighbours
    between ``min_shards`` and ``max_shards``; ``off`` keeps the fixed
    count) and ``migration_budget`` caps the records any one epoch boundary
    migrates (0 = stop-the-world); elastic runs stay behaviour-identical.
    """

    num_objects: int = 20000
    tolerance: float = 10.0
    delta: float = 0.0
    window: int = 100
    epoch_length: int = 10
    duration: int = 250
    agility: float = 0.1
    displacement: float = 10.0
    positional_error: float = 1.0
    top_k: int = 10
    cells_per_axis: int = 64
    num_shards: int = 1
    backend: str = "serial"
    overlap_halo: Optional[int] = None
    stitching: str = "exact"
    partition: str = "uniform"
    rebalance_threshold: float = 2.0
    epoch_mode: str = "delta"
    kernel: str = "columnar"
    elastic: str = "off"
    migration_budget: int = 0
    min_shards: Optional[int] = None
    max_shards: Optional[int] = None
    seed: int = 42
    report_uncertainty: bool = False
    run_dp_baseline: bool = True
    run_naive_baseline: bool = True
    network_config: Optional[NetworkConfig] = None

    def __post_init__(self) -> None:
        if self.tolerance <= 0:
            raise ConfigurationError(f"tolerance must be positive, got {self.tolerance}")
        if self.epoch_length <= 0:
            raise ConfigurationError(f"epoch_length must be positive, got {self.epoch_length}")
        if self.duration <= self.epoch_length:
            raise ConfigurationError(
                "duration must exceed the epoch length "
                f"(duration={self.duration}, epoch_length={self.epoch_length})"
            )
        if self.window <= 0:
            raise ConfigurationError(f"window must be positive, got {self.window}")
        if self.top_k <= 0:
            raise ConfigurationError(f"top_k must be positive, got {self.top_k}")

    def workload_config(self) -> WorkloadConfig:
        """Derive the workload configuration for this simulation."""
        return WorkloadConfig(
            num_objects=self.num_objects,
            agility=self.agility,
            displacement=self.displacement,
            positional_error=self.positional_error,
            duration=self.duration,
            report_uncertainty=self.report_uncertainty or self.delta > 0.0,
            seed=self.seed,
        )


@dataclass
class SimulationResult:
    """Outcome of a simulation run."""

    config: SimulationConfig
    metrics: MetricsCollector
    coordinator: Coordinator
    dp_baseline: Optional[DPHotSegmentTracker]
    network: RoadNetwork

    def top_k_paths(self, k: Optional[int] = None, by_score: bool = False) -> List[ScoredPath]:
        """Top-k hottest motion paths at the end of the run."""
        return self.coordinator.top_k(k if k is not None else self.config.top_k, by_score)

    def top_k_score(self, k: Optional[int] = None) -> float:
        """Score of the final top-k set."""
        return self.coordinator.top_k_score(k if k is not None else self.config.top_k)

    def hot_paths(self) -> List[Tuple[MotionPathRecord, int]]:
        """All motion paths with non-zero hotness at the end of the run."""
        return self.coordinator.hot_paths()

    def hot_corridors(self) -> List[CompositeCorridor]:
        """The final hot paths stitched into composite corridors."""
        return self.coordinator.hot_corridors()

    def top_k_corridors(
        self, k: Optional[int] = None, by_score: bool = False
    ) -> List[CompositeCorridor]:
        """Top-k composite corridors at the end of the run."""
        return self.coordinator.top_k_corridors(
            k if k is not None else self.config.top_k, by_score
        )

    def summary(self) -> Dict[str, float]:
        """Flat metric summary (see :meth:`MetricsCollector.as_dict`)."""
        return self.metrics.as_dict()


class HotPathSimulation:
    """Drives the workload, the RayTrace filters, the coordinator and the baselines."""

    def __init__(
        self,
        config: SimulationConfig,
        network: Optional[RoadNetwork] = None,
    ) -> None:
        self.config = config
        self.network = (
            network
            if network is not None
            else SyntheticRoadNetworkGenerator(config.network_config).generate()
        )
        self.workload = MovingObjectWorkload(self.network, config.workload_config())
        bounds = self.network.bounding_box(padding=config.tolerance * 2)
        self.coordinator = Coordinator(
            CoordinatorConfig(
                bounds=bounds,
                window=config.window,
                cells_per_axis=config.cells_per_axis,
                num_shards=config.num_shards,
                backend=config.backend,
                overlap_halo=config.overlap_halo,
                stitching=config.stitching,
                partition=config.partition,
                rebalance_threshold=config.rebalance_threshold,
                epoch_mode=config.epoch_mode,
                kernel=config.kernel,
                elastic=config.elastic,
                migration_budget=config.migration_budget,
                min_shards=config.min_shards,
                max_shards=config.max_shards,
            )
        )
        self.dp_baseline: Optional[DPHotSegmentTracker] = None
        if config.run_dp_baseline:
            self.dp_baseline = DPHotSegmentTracker(
                bounds, config.tolerance, config.window, config.cells_per_axis
            )
        self._filters: Dict[int, RayTraceFilter] = {}
        self._naive_clients: Dict[int, NaiveClient] = {}
        self.metrics = MetricsCollector()

    # -- main loop -----------------------------------------------------------------

    def run(self) -> SimulationResult:
        """Run the full simulation and return the collected results.

        Worker pools held by a parallel coordinator backend are released when
        the run finishes; the returned result stays fully queryable.
        """
        config = self.config
        raytrace_config = RayTraceConfig(config.tolerance, config.delta)

        try:
            # Timestamp 0: seed the filters with the initial measurement of each object.
            for object_id, measurement in self.workload.initial_measurements(0):
                self._filters[object_id] = RayTraceFilter(object_id, measurement, raytrace_config)
                if config.run_naive_baseline:
                    self._naive_clients[object_id] = NaiveClient(object_id)
                    self._account_naive(object_id, measurement)
                self._feed_dp(object_id, measurement)

            for timestamp in range(1, config.duration):
                for object_id, measurement in self.workload.step(timestamp):
                    state = self._filters[object_id].observe(measurement)
                    if state is not None:
                        self._submit(state)
                    if config.run_naive_baseline:
                        self._account_naive(object_id, measurement)
                    self._feed_dp(object_id, measurement)

                if timestamp % config.epoch_length == 0:
                    self._run_epoch(timestamp)

            # Final epoch at the end of the run so trailing states are processed.
            if (config.duration - 1) % config.epoch_length != 0:
                self._run_epoch(config.duration - 1)
        finally:
            self.coordinator.close()

        return SimulationResult(
            config=self.config,
            metrics=self.metrics,
            coordinator=self.coordinator,
            dp_baseline=self.dp_baseline,
            network=self.network,
        )

    # -- helpers -------------------------------------------------------------------------

    def _submit(self, state: ObjectState) -> None:
        self.metrics.uplink.record(state.message_size_bytes())
        self.coordinator.submit_state(state)

    def _account_naive(self, object_id: int, measurement: Measurement) -> None:
        client = self._naive_clients[object_id]
        timepoint = (
            measurement.certain() if isinstance(measurement, UncertainTimePoint) else measurement
        )
        client.observe(timepoint)
        self.metrics.naive_uplink.record(4 * 4)

    def _feed_dp(self, object_id: int, measurement: Measurement) -> None:
        if self.dp_baseline is None:
            return
        timepoint = (
            measurement.certain() if isinstance(measurement, UncertainTimePoint) else measurement
        )
        self.dp_baseline.observe(object_id, timepoint)

    def _run_epoch(self, timestamp: int) -> None:
        outcome = self.coordinator.run_epoch(timestamp)
        for response in outcome.responses:
            self.metrics.downlink.record(response.message_size_bytes())
            follow_up = self._filters[response.object_id].receive_response(response)
            if follow_up is not None:
                self._submit(follow_up)
        dp_index_size = None
        dp_score = None
        if self.dp_baseline is not None:
            self.dp_baseline.advance_time(timestamp)
            dp_index_size = self.dp_baseline.index_size()
            dp_score = self.dp_baseline.top_k_score(self.config.top_k)
        self.metrics.record_epoch(
            EpochMetrics(
                timestamp=timestamp,
                index_size=self.coordinator.index_size(),
                top_k_score=self.coordinator.top_k_score(self.config.top_k),
                processing_seconds=outcome.processing_seconds,
                states_processed=outcome.states_processed,
                paths_inserted=outcome.paths_inserted,
                paths_reused=outcome.paths_reused,
                paths_expired=outcome.paths_expired,
                dp_index_size=dp_index_size,
                dp_top_k_score=dp_score,
                naive_messages=self.metrics.naive_uplink.messages,
            )
        )
