"""Per-epoch metrics and their aggregation (the quantities plotted in Section 6).

The evaluation reports, per epoch (averaged over the run):

* the size of the motion-path index (and of the DP baseline's segment store);
* the score of the top-k hottest motion paths (and segments);
* the coordinator processing time spent running SinglePath.

On top of those the reproduction also tracks communication volume — number of
messages and bytes in each direction — so the filtering benefit of RayTrace
versus the naive approach can be quantified (ablation A1 in DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["EpochMetrics", "CommunicationStats", "MetricsCollector"]


@dataclass
class CommunicationStats:
    """Message and byte counters for one direction of the protocol."""

    messages: int = 0
    bytes: int = 0

    def record(self, size_bytes: int) -> None:
        self.messages += 1
        self.bytes += size_bytes

    def merge(self, other: "CommunicationStats") -> "CommunicationStats":
        return CommunicationStats(self.messages + other.messages, self.bytes + other.bytes)


@dataclass
class EpochMetrics:
    """Snapshot of the system at one epoch boundary."""

    timestamp: int
    index_size: int
    top_k_score: float
    processing_seconds: float
    states_processed: int
    paths_inserted: int
    paths_reused: int
    paths_expired: int
    dp_index_size: Optional[int] = None
    dp_top_k_score: Optional[float] = None
    naive_messages: Optional[int] = None


class MetricsCollector:
    """Accumulates per-epoch metrics and computes the run-level averages."""

    def __init__(self) -> None:
        self.epochs: List[EpochMetrics] = []
        self.uplink = CommunicationStats()
        self.downlink = CommunicationStats()
        self.naive_uplink = CommunicationStats()

    def record_epoch(self, metrics: EpochMetrics) -> None:
        self.epochs.append(metrics)

    # -- run-level aggregates ----------------------------------------------------

    def _mean(self, values: List[float]) -> float:
        return sum(values) / len(values) if values else 0.0

    @property
    def mean_index_size(self) -> float:
        """Average motion-path index size per epoch (Figure 7(a) / 8(a) series)."""
        return self._mean([m.index_size for m in self.epochs])

    @property
    def final_index_size(self) -> int:
        return self.epochs[-1].index_size if self.epochs else 0

    @property
    def mean_top_k_score(self) -> float:
        """Average top-k score per epoch (Figure 7(b) / 8(b) series)."""
        return self._mean([m.top_k_score for m in self.epochs])

    @property
    def mean_processing_seconds(self) -> float:
        """Average coordinator time per epoch (Figure 7(c) / 8(c) series)."""
        return self._mean([m.processing_seconds for m in self.epochs])

    @property
    def mean_dp_index_size(self) -> float:
        values = [m.dp_index_size for m in self.epochs if m.dp_index_size is not None]
        return self._mean(values)

    @property
    def mean_dp_top_k_score(self) -> float:
        values = [m.dp_top_k_score for m in self.epochs if m.dp_top_k_score is not None]
        return self._mean(values)

    @property
    def total_states_processed(self) -> int:
        return sum(m.states_processed for m in self.epochs)

    @property
    def total_paths_inserted(self) -> int:
        return sum(m.paths_inserted for m in self.epochs)

    @property
    def total_paths_reused(self) -> int:
        return sum(m.paths_reused for m in self.epochs)

    def message_reduction_versus_naive(self) -> float:
        """Fraction of uplink messages saved by RayTrace relative to naive reporting."""
        if self.naive_uplink.messages == 0:
            return 0.0
        return 1.0 - self.uplink.messages / self.naive_uplink.messages

    def as_dict(self) -> Dict[str, float]:
        """Flat summary convenient for CSV rows and benchmark reporting."""
        return {
            "epochs": len(self.epochs),
            "mean_index_size": self.mean_index_size,
            "final_index_size": self.final_index_size,
            "mean_top_k_score": self.mean_top_k_score,
            "mean_processing_seconds": self.mean_processing_seconds,
            "mean_dp_index_size": self.mean_dp_index_size,
            "mean_dp_top_k_score": self.mean_dp_top_k_score,
            "uplink_messages": self.uplink.messages,
            "uplink_bytes": self.uplink.bytes,
            "downlink_messages": self.downlink.messages,
            "downlink_bytes": self.downlink.bytes,
            "naive_uplink_messages": self.naive_uplink.messages,
            "message_reduction_versus_naive": self.message_reduction_versus_naive(),
            "total_states_processed": self.total_states_processed,
            "total_paths_inserted": self.total_paths_inserted,
            "total_paths_reused": self.total_paths_reused,
        }
