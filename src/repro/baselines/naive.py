"""The naive "send everything" approach used to motivate the two-tier design.

The paper argues (Section 1 and 3.2) that continuously relaying every location
update to the coordinator is infeasible because of bandwidth and coordinator
load.  This module implements that strawman so the communication-overhead
ablation can quantify the saving achieved by RayTrace:

* :class:`NaiveClient` transmits every measurement as-is;
* :class:`NaiveCoordinator` receives the raw measurements and periodically runs
  the opening-window simplifier server-side (the cheapest reasonable thing a
  centralised design could do) so that downstream hot-segment accounting still
  works and the comparison is about *communication*, not about path quality.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.geometry import Rectangle
from repro.core.trajectory import TimePoint
from repro.baselines.dp_hot import DPHotSegmentTracker
from repro.baselines.opening_window import OpeningWindowPolicy

__all__ = ["NaiveClient", "NaiveCoordinator"]

# Bytes per transmitted raw measurement: two coordinates, a timestamp and the
# object id, each serialised as a 4-byte field (same convention as ObjectState).
_MEASUREMENT_BYTES = 4 * 4


@dataclass
class NaiveClient:
    """A client that forwards every measurement to the coordinator."""

    object_id: int
    measurements_sent: int = 0
    bytes_sent: int = 0

    def observe(self, timepoint: TimePoint) -> Tuple[int, TimePoint]:
        """Transmit the measurement; returns ``(object_id, timepoint)`` as the message."""
        self.measurements_sent += 1
        self.bytes_sent += _MEASUREMENT_BYTES
        return (self.object_id, timepoint)


class NaiveCoordinator:
    """Centralised processing of raw measurement streams.

    Internally reuses the DP hot-segment tracker so the naive pipeline still
    produces hot segments; the interesting outputs for the ablation are the
    message and byte counters.
    """

    def __init__(
        self,
        bounds: Rectangle,
        tolerance: float,
        window: int = 100,
        cells_per_axis: int = 64,
    ) -> None:
        self._tracker = DPHotSegmentTracker(
            bounds, tolerance, window, cells_per_axis, OpeningWindowPolicy.NOPW
        )
        self.measurements_received = 0
        self.bytes_received = 0

    def receive(self, object_id: int, timepoint: TimePoint) -> None:
        """Ingest one raw measurement from a client."""
        self.measurements_received += 1
        self.bytes_received += _MEASUREMENT_BYTES
        self._tracker.observe(object_id, timepoint)

    def advance_time(self, now: int) -> None:
        self._tracker.advance_time(now)

    def index_size(self) -> int:
        return self._tracker.index_size()

    def top_k_score(self, k: int) -> float:
        return self._tracker.top_k_score(k)
