"""Baselines: Douglas-Peucker variants, the DP hot-segment method and the naive client."""

from repro.baselines.douglas_peucker import douglas_peucker, perpendicular_distance, synchronous_distance
from repro.baselines.opening_window import OpeningWindowPolicy, opening_window_simplify
from repro.baselines.dp_hot import DPHotSegmentTracker, DPSegmentRecord
from repro.baselines.naive import NaiveClient, NaiveCoordinator

__all__ = [
    "douglas_peucker",
    "perpendicular_distance",
    "synchronous_distance",
    "OpeningWindowPolicy",
    "opening_window_simplify",
    "DPHotSegmentTracker",
    "DPSegmentRecord",
    "NaiveClient",
    "NaiveCoordinator",
]
