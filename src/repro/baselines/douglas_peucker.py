"""Classic (offline) Douglas-Peucker line simplification.

The paper's related-work section builds on the Douglas-Peucker algorithm [8]
and its opening-window adaptations [20]; this module provides the offline
algorithm both for completeness and because the opening-window variants and
the DP hot-segment baseline reuse its distance primitives.

Two distance notions are supported:

* :func:`perpendicular_distance` — the classic spatial distance from a point to
  the supporting line of a segment (what the original algorithm uses);
* :func:`synchronous_distance` — the spatiotemporal variant used for
  trajectories: the distance between a timepoint and the position obtained by
  linearly interpolating the segment's endpoints at the timepoint's timestamp.
"""

from __future__ import annotations

import math
from typing import List, Sequence

from repro.core.errors import ConfigurationError
from repro.core.geometry import Point, euclidean_distance, max_distance
from repro.core.trajectory import TimePoint

__all__ = ["perpendicular_distance", "synchronous_distance", "douglas_peucker"]


def perpendicular_distance(point: Point, start: Point, end: Point) -> float:
    """Euclidean distance from ``point`` to the segment ``start -> end``.

    For a degenerate segment the distance to the (single) endpoint is returned.
    """
    dx = end.x - start.x
    dy = end.y - start.y
    length_squared = dx * dx + dy * dy
    if length_squared == 0.0:
        return euclidean_distance(point, start)
    # Projection parameter of `point` onto the segment, clamped to [0, 1].
    t = ((point.x - start.x) * dx + (point.y - start.y) * dy) / length_squared
    t = min(max(t, 0.0), 1.0)
    projection = Point(start.x + t * dx, start.y + t * dy)
    return euclidean_distance(point, projection)


def synchronous_distance(timepoint: TimePoint, start: TimePoint, end: TimePoint) -> float:
    """Spatiotemporal distance of ``timepoint`` to the segment ``start -> end``.

    The segment is interpreted as uniform motion from ``start`` to ``end``;
    the distance is the max-distance between the timepoint's position and the
    interpolated position at the same timestamp, matching how motion-path
    proximity is defined in the paper.
    """
    span = end.timestamp - start.timestamp
    if span == 0:
        return max_distance(timepoint.point, start.point)
    fraction = (timepoint.timestamp - start.timestamp) / span
    interpolated = Point(
        start.x + fraction * (end.x - start.x),
        start.y + fraction * (end.y - start.y),
    )
    return max_distance(timepoint.point, interpolated)


def douglas_peucker(
    timepoints: Sequence[TimePoint],
    tolerance: float,
    spatiotemporal: bool = True,
) -> List[TimePoint]:
    """Offline Douglas-Peucker simplification of a trajectory.

    Returns the subset of ``timepoints`` (always including the first and last)
    such that every dropped timepoint is within ``tolerance`` of the segment
    joining its surviving neighbours.  With ``spatiotemporal=True`` the
    time-synchronised distance is used, otherwise the classic perpendicular
    distance.
    """
    if tolerance < 0:
        raise ConfigurationError(f"tolerance must be non-negative, got {tolerance}")
    n = len(timepoints)
    if n <= 2:
        return list(timepoints)

    keep = [False] * n
    keep[0] = keep[n - 1] = True
    # Iterative stack-based recursion to avoid Python recursion limits on long
    # trajectories.
    stack = [(0, n - 1)]
    while stack:
        first, last = stack.pop()
        max_dist = -1.0
        max_index = -1
        for index in range(first + 1, last):
            if spatiotemporal:
                dist = synchronous_distance(
                    timepoints[index], timepoints[first], timepoints[last]
                )
            else:
                dist = perpendicular_distance(
                    timepoints[index].point, timepoints[first].point, timepoints[last].point
                )
            if dist > max_dist:
                max_dist = dist
                max_index = index
        if max_dist > tolerance and max_index > 0:
            keep[max_index] = True
            stack.append((first, max_index))
            stack.append((max_index, last))

    return [tp for tp, kept in zip(timepoints, keep) if kept]
