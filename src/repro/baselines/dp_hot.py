"""The DP hot-segment baseline used as the paper's competitor (Section 6).

The method combines the opening-window Douglas-Peucker simplifier with a
segment-reuse policy: whenever a new segment is about to be created between a
starting point and the chosen floating point, the tracker first checks whether
an existing segment (produced earlier, possibly by another object) falls
completely within the candidate segment's minimum bounding box expanded by the
tolerance.  If so, the existing segment's hotness is increased instead of
storing a new one; otherwise the candidate segment is stored with hotness 1.

Time is ignored when matching (the paper relaxes the requirements for DP so
that its hotness upper-bounds what proper motion paths can achieve), but the
sliding window still applies to hotness: each reuse/insertion schedules an
expiry ``W`` time units after the segment was crossed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.errors import ConfigurationError
from repro.core.geometry import Point, Rectangle
from repro.core.motion_path import MotionPath, MotionPathRecord
from repro.core.scoring import ScoredPath, select_top_k, top_k_score
from repro.core.trajectory import TimePoint
from repro.coordinator.grid_index import GridConfig, GridIndex
from repro.coordinator.hotness import HotnessTracker
from repro.baselines.opening_window import (
    OpeningWindowPolicy,
    OpeningWindowSegment,
    OpeningWindowSimplifier,
)

__all__ = ["DPSegmentRecord", "DPHotSegmentTracker"]


@dataclass
class DPSegmentRecord:
    """A stored DP segment (same shape as a motion-path record)."""

    record: MotionPathRecord

    @property
    def path_id(self) -> int:
        return self.record.path_id

    @property
    def segment(self) -> MotionPath:
        return self.record.path


class DPHotSegmentTracker:
    """Coordinator-side tracker for the DP baseline.

    One :class:`OpeningWindowSimplifier` is kept per object; segments they emit
    are matched against the stored segments via the expanded-MBB containment
    rule and either reused (hotness + 1) or inserted (hotness 1).
    """

    def __init__(
        self,
        bounds: Rectangle,
        tolerance: float,
        window: int = 100,
        cells_per_axis: int = 64,
        policy: OpeningWindowPolicy = OpeningWindowPolicy.NOPW,
    ) -> None:
        if tolerance <= 0:
            raise ConfigurationError(f"tolerance must be positive, got {tolerance}")
        self.tolerance = tolerance
        self.policy = policy
        self.index = GridIndex(GridConfig(bounds, cells_per_axis))
        self.hotness = HotnessTracker(window)
        self._simplifiers: Dict[int, OpeningWindowSimplifier] = {}
        self._segments_emitted = 0
        self._segments_reused = 0

    # -- streaming interface ---------------------------------------------------------

    def observe(self, object_id: int, timepoint: TimePoint) -> Optional[int]:
        """Feed one measurement of ``object_id``.

        Returns the id of the segment that was credited (reused or newly
        stored) when the measurement closed a segment, otherwise ``None``.
        """
        simplifier = self._simplifiers.get(object_id)
        if simplifier is None:
            simplifier = OpeningWindowSimplifier(self.tolerance, self.policy)
            self._simplifiers[object_id] = simplifier
        closed = simplifier.observe(timepoint)
        if closed is None:
            return None
        return self._register_segment(closed)

    def flush_object(self, object_id: int) -> Optional[int]:
        """Close the open segment of ``object_id`` at the end of its stream."""
        simplifier = self._simplifiers.get(object_id)
        if simplifier is None:
            return None
        closed = simplifier.flush()
        if closed is None:
            return None
        return self._register_segment(closed)

    def advance_time(self, now: int) -> int:
        """Expire segments whose crossings fell outside the window; return how many vanished."""
        vanished = self.hotness.advance_time(now)
        for path_id in vanished:
            if path_id in self.index:
                self.index.delete(path_id)
        return len(vanished)

    # -- segment registration ------------------------------------------------------------

    def _register_segment(self, segment: OpeningWindowSegment) -> int:
        """Reuse an existing stored segment or insert the new one (MBB containment rule)."""
        self._segments_emitted += 1
        candidate = MotionPath(segment.start.point, segment.end.point)
        query_box = candidate.bounding_box(padding=self.tolerance)
        reused_id: Optional[int] = None
        for record in self.index.paths_intersecting(query_box):
            stored_box = Rectangle.bounding(record.path.start, record.path.end)
            if query_box.contains_rectangle(stored_box):
                reused_id = record.path_id
                break
        if reused_id is not None:
            self._segments_reused += 1
            self.hotness.record_crossing(reused_id, segment.end.timestamp)
            return reused_id
        record = self.index.insert(candidate, created_at=segment.end.timestamp)
        self.hotness.record_crossing(record.path_id, segment.end.timestamp)
        return record.path_id

    # -- reporting -------------------------------------------------------------------------

    def index_size(self) -> int:
        """Number of distinct segments currently stored."""
        return len(self.index)

    def hot_segments(self) -> List[Tuple[MotionPathRecord, int]]:
        """All stored segments with non-zero hotness."""
        results: List[Tuple[MotionPathRecord, int]] = []
        for path_id, hotness in self.hotness.items():
            if path_id in self.index:
                results.append((self.index.get(path_id), hotness))
        return results

    def top_k(self, k: int, by_score: bool = False) -> List[ScoredPath]:
        """Top-k hottest segments."""
        return select_top_k(self.hot_segments(), k, by_score=by_score)

    def top_k_score(self, k: int) -> float:
        """Average score of the current top-k segments."""
        return top_k_score(self.top_k(k))

    @property
    def segments_emitted(self) -> int:
        return self._segments_emitted

    @property
    def segments_reused(self) -> int:
        return self._segments_reused

    @property
    def reuse_ratio(self) -> float:
        if self._segments_emitted == 0:
            return 0.0
        return self._segments_reused / self._segments_emitted
