"""Opening-window Douglas-Peucker variants (Meratnia & de By, EDBT 2004).

These are the streaming adaptations referenced as [20] in the paper: instead
of simplifying a complete trajectory offline, the algorithm fixes a starting
point and repeatedly extends a candidate segment to the newest measurement
(the *floating endpoint*), checking that all intermediate measurements stay
within the tolerance.  When the check fails the segment is closed and a new
one starts.  Two closing policies exist:

* ``NOPW`` (normal opening window, the conservative policy) — close the
  segment at the intermediate point that violated the tolerance the most;
* ``BOPW`` (before opening window, the eager policy) — close the segment at
  the measurement just before the floating endpoint.

The output is a sequence of segments whose endpoints are original
measurements, i.e. a strict trajectory synopsis.  The DP hot-segment baseline
of Section 6 builds on this generator.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.core.errors import ConfigurationError
from repro.core.trajectory import TimePoint
from repro.baselines.douglas_peucker import synchronous_distance

__all__ = ["OpeningWindowPolicy", "OpeningWindowSegment", "OpeningWindowSimplifier", "opening_window_simplify"]


class OpeningWindowPolicy(enum.Enum):
    """Closing policy of the opening-window algorithm."""

    NOPW = "nopw"
    BOPW = "bopw"


@dataclass(frozen=True)
class OpeningWindowSegment:
    """One simplification segment produced by the opening-window algorithm."""

    start: TimePoint
    end: TimePoint

    @property
    def duration(self) -> int:
        return self.end.timestamp - self.start.timestamp


class OpeningWindowSimplifier:
    """Streaming opening-window simplifier for a single object's measurements.

    Feed measurements with :meth:`observe`; each call returns the segment that
    was closed by this measurement, if any.  Call :meth:`flush` at the end of
    the stream to obtain the final (open) segment.
    """

    def __init__(self, tolerance: float, policy: OpeningWindowPolicy = OpeningWindowPolicy.NOPW) -> None:
        if tolerance <= 0:
            raise ConfigurationError(f"tolerance must be positive, got {tolerance}")
        self.tolerance = tolerance
        self.policy = policy
        self._window: List[TimePoint] = []

    @property
    def window_size(self) -> int:
        """Number of measurements currently buffered in the opening window."""
        return len(self._window)

    def observe(self, timepoint: TimePoint) -> Optional[OpeningWindowSegment]:
        """Process one measurement; return the closed segment when one is emitted."""
        if not self._window:
            self._window.append(timepoint)
            return None
        candidate_start = self._window[0]
        # Check all intermediate points against the candidate segment ending at
        # the new floating endpoint.
        worst_distance = -1.0
        worst_index = -1
        for index in range(1, len(self._window)):
            distance = synchronous_distance(self._window[index], candidate_start, timepoint)
            if distance > worst_distance:
                worst_distance = distance
                worst_index = index
        if worst_distance <= self.tolerance:
            self._window.append(timepoint)
            return None

        # Violation: close the segment according to the policy.
        if self.policy is OpeningWindowPolicy.NOPW:
            split_index = worst_index
        else:
            split_index = len(self._window) - 1
        segment = OpeningWindowSegment(candidate_start, self._window[split_index])
        # The new window starts at the split point and keeps the measurements
        # after it (still to be covered), followed by the new measurement.
        self._window = self._window[split_index:] + [timepoint]
        return segment

    def flush(self) -> Optional[OpeningWindowSegment]:
        """Close and return the final open segment (``None`` for a trivial window)."""
        if len(self._window) < 2:
            return None
        segment = OpeningWindowSegment(self._window[0], self._window[-1])
        self._window = [self._window[-1]]
        return segment


def opening_window_simplify(
    timepoints: Iterable[TimePoint],
    tolerance: float,
    policy: OpeningWindowPolicy = OpeningWindowPolicy.NOPW,
) -> List[OpeningWindowSegment]:
    """Simplify a complete measurement sequence with the opening-window algorithm."""
    simplifier = OpeningWindowSimplifier(tolerance, policy)
    segments: List[OpeningWindowSegment] = []
    for timepoint in timepoints:
        closed = simplifier.observe(timepoint)
        if closed is not None:
            segments.append(closed)
    final = simplifier.flush()
    if final is not None:
        segments.append(final)
    return segments
