"""Coordinator-to-client feedback (the paper's Section 7 future-work sketch).

In the base protocol each object only knows its own state; the coordinator
alone sees which vertices are hot.  The extension closes that loop:

* :class:`FeedbackCoordinator` piggybacks a small list of *hot vertex hints*
  — endpoints of currently hot motion paths near the object — onto every
  response it sends.
* :class:`FeedbackRayTraceFilter` remembers those hints and, at the moment its
  SSA breaks, checks whether any hinted vertex lies inside the Final Safe
  Area.  If so it *snaps* the reported FSA to that single vertex, so the
  coordinator is guaranteed to reuse (or create) a path terminating exactly at
  an already-hot vertex instead of fabricating a fresh endpoint nearby.

Snapping never violates the RayTrace guarantee: the snapped vertex is a point
of the FSA, and every point of the FSA is a valid motion-path endpoint for the
interval covered by the SSA.  The benefit is fewer distinct vertices and
therefore fewer, hotter paths; the cost is a slightly larger response message
(quantified by ``message_size_bytes``) — exactly the trade-off the paper
anticipates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.geometry import Point, Rectangle
from repro.client.raytrace import Measurement, RayTraceConfig, RayTraceFilter
from repro.client.state import CoordinatorResponse, ObjectState
from repro.client.uncertainty import NormalToleranceModel
from repro.coordinator.coordinator import Coordinator, CoordinatorConfig, EpochOutcome

__all__ = ["HotVertexHint", "FeedbackResponse", "FeedbackCoordinator", "FeedbackRayTraceFilter"]

_FIELD_BYTES = 4


@dataclass(frozen=True)
class HotVertexHint:
    """A hot motion-path endpoint advertised to a client."""

    vertex: Point
    hotness: int


@dataclass(frozen=True)
class FeedbackResponse:
    """A coordinator response augmented with hot-vertex hints."""

    response: CoordinatorResponse
    hints: Tuple[HotVertexHint, ...] = ()

    @property
    def object_id(self) -> int:
        return self.response.object_id

    def message_size_bytes(self) -> int:
        """Base response size plus two coordinates and a count per hint."""
        return self.response.message_size_bytes() + len(self.hints) * 3 * _FIELD_BYTES


class FeedbackCoordinator(Coordinator):
    """Coordinator that attaches hot-vertex hints to every response.

    ``hint_radius`` bounds how far from the object's assigned endpoint a
    hinted vertex may lie; ``max_hints`` bounds the per-response payload.
    """

    def __init__(
        self,
        config: CoordinatorConfig,
        hint_radius: float = 200.0,
        max_hints: int = 4,
    ) -> None:
        super().__init__(config)
        self.hint_radius = hint_radius
        self.max_hints = max_hints

    def run_epoch_with_feedback(self, now: int) -> Tuple[EpochOutcome, List[FeedbackResponse]]:
        """Run a normal epoch, then derive the hinted responses."""
        outcome = self.run_epoch(now)
        feedback = [
            FeedbackResponse(response, tuple(self._hints_near(response.endpoint)))
            for response in outcome.responses
        ]
        return outcome, feedback

    def _hints_near(self, endpoint: Point) -> List[HotVertexHint]:
        """The hottest path endpoints within ``hint_radius`` of ``endpoint``."""
        region = Rectangle.from_center(endpoint, self.hint_radius)
        vertex_heat: Dict[Point, int] = {}
        for vertex, path_ids in self.index.end_vertices_in(region).items():
            heat = sum(self.hotness.hotness(path_id) for path_id in path_ids)
            if heat > 0:
                vertex_heat[vertex] = heat
        ranked = sorted(vertex_heat.items(), key=lambda item: item[1], reverse=True)
        return [HotVertexHint(vertex, heat) for vertex, heat in ranked[: self.max_hints]]


class FeedbackRayTraceFilter(RayTraceFilter):
    """RayTrace filter that snaps its reported FSA onto hinted hot vertices."""

    def __init__(
        self,
        object_id: int,
        initial: Measurement,
        config: RayTraceConfig,
        tolerance_model: Optional[NormalToleranceModel] = None,
    ) -> None:
        super().__init__(object_id, initial, config, tolerance_model)
        self._hints: Tuple[HotVertexHint, ...] = ()
        self.snapped_reports = 0

    # -- feedback intake ---------------------------------------------------------

    def receive_feedback(self, feedback: FeedbackResponse) -> Optional[ObjectState]:
        """Handle a hinted response: store the hints, then resume as usual."""
        self._hints = feedback.hints
        emitted = self.receive_response(feedback.response)
        return self._snap(emitted)

    def observe(self, measurement: Measurement) -> Optional[ObjectState]:
        return self._snap(super().observe(measurement))

    # -- snapping -------------------------------------------------------------------

    def _snap(self, state: Optional[ObjectState]) -> Optional[ObjectState]:
        """Collapse the reported FSA onto the hottest hinted vertex it contains."""
        if state is None or not self._hints:
            return state
        fsa = state.fsa
        best: Optional[HotVertexHint] = None
        for hint in self._hints:
            if not fsa.contains_point(hint.vertex):
                continue
            if best is None or hint.hotness > best.hotness:
                best = hint
        if best is None:
            return state
        self.snapped_reports += 1
        snapped = ObjectState(
            object_id=state.object_id,
            start=state.start,
            t_start=state.t_start,
            fsa_low=best.vertex,
            fsa_high=best.vertex,
            t_end=state.t_end,
        )
        # Keep the filter's own FSA consistent with what was reported so the
        # next coordinator-assigned start chains correctly.
        self._fsa = Rectangle.degenerate(best.vertex)
        return snapped
