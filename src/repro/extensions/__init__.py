"""Extensions beyond the paper's core contribution.

The paper's conclusions (Section 7) sketch one direction of future work:
letting the coordinator feed information about nearby hot motion paths back to
the clients so that RayTrace can make better *splitting decisions* — i.e.
choose SSA endpoints that existing hot paths already terminate at.  The
:mod:`repro.extensions.feedback` module implements that idea on top of the
unmodified core components.
"""

from repro.extensions.feedback import (
    HotVertexHint,
    FeedbackCoordinator,
    FeedbackRayTraceFilter,
)

__all__ = ["HotVertexHint", "FeedbackCoordinator", "FeedbackRayTraceFilter"]
