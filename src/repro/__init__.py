"""Reproduction of *On-Line Discovery of Hot Motion Paths* (EDBT 2008).

The package is organised around the paper's two-tier architecture:

* :mod:`repro.client` — the RayTrace filter executed on every moving object,
  including the (epsilon, delta) uncertainty-aware variant.
* :mod:`repro.coordinator` — the SinglePath discovery strategy, the grid
  index over motion-path endpoints and the sliding-window hotness maintenance.
* :mod:`repro.baselines` — the Douglas-Peucker opening-window variants and the
  relaxed DP hot-segment baseline used as the paper's competitor, plus a naive
  "send everything" client.
* :mod:`repro.network` / :mod:`repro.workload` — the synthetic road network and
  the network-constrained moving-object workload generator from Section 6.1.
* :mod:`repro.simulation` — the discrete-time simulation engine that wires
  clients and coordinator together and records the evaluation metrics.
* :mod:`repro.experiments` — runners that regenerate every figure of the
  paper's evaluation section.

Quickstart::

    from repro import HotPathSimulation, SimulationConfig

    config = SimulationConfig(num_objects=500, tolerance=10.0)
    sim = HotPathSimulation(config)
    result = sim.run()
    for path in result.top_k_paths(10):
        print(path.path, path.hotness)
"""

from repro.core.geometry import Point, Rectangle, max_distance
from repro.core.trajectory import TimePoint, Trajectory, UncertainTimePoint
from repro.core.motion_path import MotionPath, MotionPathRecord
from repro.core.scoring import top_k_score, path_score
from repro.client.raytrace import RayTraceFilter
from repro.client.state import ObjectState
from repro.client.uncertainty import NormalToleranceModel
from repro.coordinator.coordinator import Coordinator
from repro.coordinator.single_path import SinglePathStrategy
from repro.simulation.engine import HotPathSimulation, SimulationConfig, SimulationResult
from repro.network.generator import SyntheticRoadNetworkGenerator, NetworkConfig
from repro.workload.moving_objects import MovingObjectWorkload, WorkloadConfig

__version__ = "1.0.0"

__all__ = [
    "Point",
    "Rectangle",
    "max_distance",
    "TimePoint",
    "UncertainTimePoint",
    "Trajectory",
    "MotionPath",
    "MotionPathRecord",
    "top_k_score",
    "path_score",
    "RayTraceFilter",
    "ObjectState",
    "NormalToleranceModel",
    "Coordinator",
    "SinglePathStrategy",
    "HotPathSimulation",
    "SimulationConfig",
    "SimulationResult",
    "SyntheticRoadNetworkGenerator",
    "NetworkConfig",
    "MovingObjectWorkload",
    "WorkloadConfig",
    "__version__",
]
