"""CSV reporting for experiment sweeps and ablations.

The figure runners return in-memory report objects; this module serialises
them to CSV so results can be archived, diffed across runs and plotted with
any external tool.  Every writer returns the path it wrote, and the combined
:func:`write_experiment_bundle` produces one directory with a file per
experiment — the machine-readable counterpart of ``benchmarks/results``.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Dict, Iterable, List, Sequence, Union

from repro.experiments.ablations import (
    CommunicationAblationRow,
    GridResolutionAblationRow,
    UncertaintyAblationRow,
)
from repro.experiments.sweeps import SweepRow

__all__ = [
    "sweep_rows_to_csv",
    "write_sweep_csv",
    "ablation_rows_to_csv",
    "write_experiment_bundle",
]

PathLike = Union[str, Path]


def sweep_rows_to_csv(rows: Sequence[SweepRow]) -> str:
    """Serialise Figure 7/8 sweep rows to CSV text."""
    buffer = io.StringIO()
    fieldnames = [
        "parameter_name",
        "parameter_value",
        "scaled_num_objects",
        "index_size",
        "dp_index_size",
        "top_k_score",
        "dp_top_k_score",
        "processing_seconds",
        "uplink_messages",
        "naive_messages",
    ]
    writer = csv.DictWriter(buffer, fieldnames=fieldnames)
    writer.writeheader()
    for row in rows:
        writer.writerow(row.as_dict())
    return buffer.getvalue()


def write_sweep_csv(rows: Sequence[SweepRow], destination: PathLike) -> Path:
    """Write sweep rows to ``destination`` and return the written path."""
    destination = Path(destination)
    destination.write_text(sweep_rows_to_csv(rows))
    return destination


def ablation_rows_to_csv(
    rows: Sequence[Union[CommunicationAblationRow, UncertaintyAblationRow, GridResolutionAblationRow]],
) -> str:
    """Serialise any ablation's rows to CSV text (columns follow the dataclass fields)."""
    buffer = io.StringIO()
    if not rows:
        return ""
    fieldnames = list(vars(rows[0]).keys())
    writer = csv.DictWriter(buffer, fieldnames=fieldnames)
    writer.writeheader()
    for row in rows:
        writer.writerow(vars(row))
    return buffer.getvalue()


def write_experiment_bundle(
    destination_dir: PathLike,
    figure7_rows: Sequence[SweepRow] = (),
    figure8_rows: Sequence[SweepRow] = (),
    ablations: Dict[str, Sequence[object]] = None,
) -> List[Path]:
    """Write one CSV per experiment into ``destination_dir``.

    Returns the list of files written.  Empty inputs are skipped, so callers
    can pass whatever subset of experiments they actually ran.
    """
    destination_dir = Path(destination_dir)
    destination_dir.mkdir(parents=True, exist_ok=True)
    written: List[Path] = []
    if figure7_rows:
        written.append(write_sweep_csv(figure7_rows, destination_dir / "figure7.csv"))
    if figure8_rows:
        written.append(write_sweep_csv(figure8_rows, destination_dir / "figure8.csv"))
    for name, rows in (ablations or {}).items():
        if not rows:
            continue
        path = destination_dir / f"ablation_{name}.csv"
        path.write_text(ablation_rows_to_csv(list(rows)))
        written.append(path)
    return written
