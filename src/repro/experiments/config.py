"""Experimental parameters (paper Table 2) and the scaling machinery.

The paper's experiments run 10,000 to 100,000 objects for 250 timestamps over
the full Athens network in C++.  The pure-Python reproduction keeps the exact
same parameter *structure* but scales the population, the duration and the
network size down by a configurable factor so the whole benchmark suite runs
on a laptop in minutes.  The scale can be raised via the ``REPRO_SCALE``
environment variable (1.0 reproduces the paper-size runs).

Table 2 (defaults in bold in the paper):

=====================  ==========================================
Parameter              Values
=====================  ==========================================
N                      10000, **20000**, 100000 objects
Tolerance (epsilon)    1, 2, **10**, 20 metres
Positional error       1 metre
Agility (alpha)        0.1
Displacement (s)       10 metres
Window size (W)        100 timestamps
k                      10
=====================  ==========================================

Duration is 250 timestamps and an epoch corresponds to 10 timestamps.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.errors import ConfigurationError
from repro.network.generator import NetworkConfig
from repro.simulation.engine import SimulationConfig

__all__ = [
    "PAPER_DEFAULTS",
    "PAPER_OBJECT_COUNTS",
    "PAPER_TOLERANCES",
    "DEFAULT_SCALE",
    "ExperimentScale",
    "scaled_simulation_config",
]

#: Default parameter values of Table 2.
PAPER_DEFAULTS: Dict[str, float] = {
    "num_objects": 20000,
    "tolerance": 10.0,
    "positional_error": 1.0,
    "agility": 0.1,
    "displacement": 10.0,
    "window": 100,
    "top_k": 10,
    "duration": 250,
    "epoch_length": 10,
}

#: Object counts swept in Figure 7.
PAPER_OBJECT_COUNTS: List[int] = [10000, 20000, 50000, 100000]

#: Tolerance values swept in Figure 8.
PAPER_TOLERANCES: List[float] = [1.0, 2.0, 10.0, 20.0]

#: Fraction of the paper-scale population used by default in benchmarks.
DEFAULT_SCALE: float = 0.02


@dataclass(frozen=True)
class ExperimentScale:
    """How aggressively to shrink the paper-scale experiments.

    ``population`` scales the object counts, ``duration`` scales the number of
    timestamps (never below three epochs) and ``network_nodes_per_axis`` sizes
    the synthetic network (the paper's Athens graph has ~1125 nodes, i.e. a
    33x33 grid; smaller runs use proportionally smaller grids so object
    density per link stays comparable).
    """

    population: float = DEFAULT_SCALE
    duration: float = 0.5
    network_nodes_per_axis: int = 12

    def __post_init__(self) -> None:
        if self.population <= 0 or self.population > 1.0:
            raise ConfigurationError(
                f"population scale must be in (0, 1], got {self.population}"
            )
        if self.duration <= 0 or self.duration > 1.0:
            raise ConfigurationError(f"duration scale must be in (0, 1], got {self.duration}")
        if self.network_nodes_per_axis < 2:
            raise ConfigurationError(
                f"network_nodes_per_axis must be at least 2, got {self.network_nodes_per_axis}"
            )

    @classmethod
    def from_environment(cls) -> "ExperimentScale":
        """Build a scale from the ``REPRO_SCALE`` environment variable.

        ``REPRO_SCALE=1.0`` reproduces the paper-size experiments;
        unset/empty uses the laptop-friendly default.
        """
        raw = os.environ.get("REPRO_SCALE", "").strip()
        if not raw:
            return cls()
        try:
            population = float(raw)
        except ValueError as exc:
            raise ConfigurationError(f"invalid REPRO_SCALE value: {raw!r}") from exc
        if population >= 1.0:
            return cls(population=1.0, duration=1.0, network_nodes_per_axis=33)
        # Scale the network roughly with the square root of the population so
        # object density per link stays in the same ballpark.
        nodes = max(6, int(33 * (population ** 0.5) * 2))
        return cls(population=population, duration=max(0.2, population * 10), network_nodes_per_axis=min(nodes, 33))

    def scale_objects(self, paper_count: int) -> int:
        return max(20, int(paper_count * self.population))

    def scale_duration(self, paper_duration: int, epoch_length: int) -> int:
        scaled = int(paper_duration * self.duration)
        return max(3 * epoch_length + 1, scaled)


def scaled_simulation_config(
    scale: Optional[ExperimentScale] = None,
    num_objects: Optional[int] = None,
    tolerance: Optional[float] = None,
    delta: float = 0.0,
    run_dp_baseline: bool = True,
    run_naive_baseline: bool = True,
    cells_per_axis: int = 64,
    num_shards: int = 1,
    backend: str = "serial",
    overlap_halo: Optional[int] = None,
    stitching: str = "exact",
    partition: str = "uniform",
    rebalance_threshold: float = 2.0,
    epoch_mode: str = "delta",
    kernel: str = "columnar",
    elastic: str = "off",
    migration_budget: int = 0,
    min_shards: Optional[int] = None,
    max_shards: Optional[int] = None,
    seed: int = 42,
) -> SimulationConfig:
    """Build a :class:`SimulationConfig` from paper defaults, scaled for Python.

    ``num_objects`` and ``tolerance`` are the *paper-scale* values (e.g. 20000
    and 10.0); the population is scaled down by ``scale`` while tolerance and
    the other physical parameters are kept as-is because they are properties of
    the environment, not of the experiment size.
    """
    scale = scale if scale is not None else ExperimentScale.from_environment()
    paper_objects = num_objects if num_objects is not None else int(PAPER_DEFAULTS["num_objects"])
    epoch_length = int(PAPER_DEFAULTS["epoch_length"])
    network_config = NetworkConfig(
        area_size=16000.0 * (scale.network_nodes_per_axis / 33.0),
        grid_nodes_per_axis=scale.network_nodes_per_axis,
    )
    return SimulationConfig(
        num_objects=scale.scale_objects(paper_objects),
        tolerance=tolerance if tolerance is not None else PAPER_DEFAULTS["tolerance"],
        delta=delta,
        window=int(PAPER_DEFAULTS["window"]),
        epoch_length=epoch_length,
        duration=scale.scale_duration(int(PAPER_DEFAULTS["duration"]), epoch_length),
        agility=PAPER_DEFAULTS["agility"],
        displacement=PAPER_DEFAULTS["displacement"],
        positional_error=PAPER_DEFAULTS["positional_error"],
        top_k=int(PAPER_DEFAULTS["top_k"]),
        cells_per_axis=cells_per_axis,
        num_shards=num_shards,
        backend=backend,
        overlap_halo=overlap_halo,
        stitching=stitching,
        partition=partition,
        rebalance_threshold=rebalance_threshold,
        epoch_mode=epoch_mode,
        kernel=kernel,
        elastic=elastic,
        migration_budget=migration_budget,
        min_shards=min_shards,
        max_shards=max_shards,
        seed=seed,
        run_dp_baseline=run_dp_baseline,
        run_naive_baseline=run_naive_baseline,
        network_config=network_config,
    )
