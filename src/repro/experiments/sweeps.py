"""Parameter sweeps underlying Figures 7 and 8.

Each sweep runs the full simulation (SinglePath plus the DP baseline on the
same measurement stream) for a list of parameter values and collects one
:class:`SweepRow` per value with exactly the series the paper plots: motion
path index size, top-k score and coordinator processing time, for both
methods where applicable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.experiments.config import (
    PAPER_OBJECT_COUNTS,
    PAPER_TOLERANCES,
    ExperimentScale,
    scaled_simulation_config,
)
from repro.simulation.engine import HotPathSimulation, SimulationResult

__all__ = ["SweepRow", "run_object_count_sweep", "run_tolerance_sweep"]


@dataclass
class SweepRow:
    """One row of a parameter sweep (one simulated configuration)."""

    parameter_name: str
    parameter_value: float
    scaled_num_objects: int
    index_size: float
    dp_index_size: float
    top_k_score: float
    dp_top_k_score: float
    processing_seconds: float
    uplink_messages: int
    naive_messages: int

    def as_dict(self) -> Dict[str, float]:
        return {
            "parameter_name": self.parameter_name,
            "parameter_value": self.parameter_value,
            "scaled_num_objects": self.scaled_num_objects,
            "index_size": self.index_size,
            "dp_index_size": self.dp_index_size,
            "top_k_score": self.top_k_score,
            "dp_top_k_score": self.dp_top_k_score,
            "processing_seconds": self.processing_seconds,
            "uplink_messages": self.uplink_messages,
            "naive_messages": self.naive_messages,
        }


def _row_from_result(
    parameter_name: str, parameter_value: float, result: SimulationResult
) -> SweepRow:
    metrics = result.metrics
    return SweepRow(
        parameter_name=parameter_name,
        parameter_value=parameter_value,
        scaled_num_objects=result.config.num_objects,
        index_size=metrics.mean_index_size,
        dp_index_size=metrics.mean_dp_index_size,
        top_k_score=metrics.mean_top_k_score,
        dp_top_k_score=metrics.mean_dp_top_k_score,
        processing_seconds=metrics.mean_processing_seconds,
        uplink_messages=metrics.uplink.messages,
        naive_messages=metrics.naive_uplink.messages,
    )


def run_object_count_sweep(
    object_counts: Optional[Sequence[int]] = None,
    scale: Optional[ExperimentScale] = None,
    tolerance: float = 10.0,
    seed: int = 42,
) -> List[SweepRow]:
    """Vary the number of objects at fixed tolerance (the Figure 7 sweep)."""
    counts = list(object_counts) if object_counts is not None else PAPER_OBJECT_COUNTS
    rows: List[SweepRow] = []
    for count in counts:
        config = scaled_simulation_config(
            scale=scale, num_objects=count, tolerance=tolerance, seed=seed
        )
        result = HotPathSimulation(config).run()
        rows.append(_row_from_result("num_objects", count, result))
    return rows


def run_tolerance_sweep(
    tolerances: Optional[Sequence[float]] = None,
    scale: Optional[ExperimentScale] = None,
    num_objects: int = 20000,
    seed: int = 42,
) -> List[SweepRow]:
    """Vary the tolerance at a fixed population (the Figure 8 sweep)."""
    values = list(tolerances) if tolerances is not None else PAPER_TOLERANCES
    rows: List[SweepRow] = []
    for tolerance in values:
        config = scaled_simulation_config(
            scale=scale, num_objects=num_objects, tolerance=tolerance, seed=seed
        )
        result = HotPathSimulation(config).run()
        rows.append(_row_from_result("tolerance", tolerance, result))
    return rows
