"""Figures 9 and 10 — qualitative maps of the discovered motion paths.

Figure 9 draws every motion path with non-zero hotness inside the sliding
window; the discovered set closely resembles the (hidden) road network.
Figure 10 zooms into the centre of the monitored area and draws the top-20
hottest motion paths.  The reproduction renders both as ASCII density maps and
also exposes the raw hot-path sets (and CSV/WKT exports) so the figures can be
redrawn with any plotting tool.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.core.geometry import Point, Rectangle
from repro.core.motion_path import MotionPathRecord
from repro.core.scoring import ScoredPath
from repro.analysis.export import paths_to_csv
from repro.analysis.render import AsciiMapRenderer
from repro.experiments.config import ExperimentScale, scaled_simulation_config
from repro.simulation.engine import HotPathSimulation, SimulationResult

__all__ = ["NetworkDiscoveryReport", "run_figure9", "run_figure10"]

HotPath = Tuple[MotionPathRecord, int]


@dataclass
class NetworkDiscoveryReport:
    """Discovered hot paths plus renderings of the map they trace out."""

    result: SimulationResult
    hot_paths: List[HotPath]
    bounds: Rectangle
    discovered_map: str
    network_map: str

    def coverage_fraction(self) -> float:
        """Fraction of the ground-truth map cells also lit by discovered paths.

        A cheap quantitative proxy for "the discovered paths resemble the
        network": both maps are rendered on the same grid and the fraction of
        network cells that are also non-blank in the discovery map is
        reported.
        """
        network_cells = 0
        shared_cells = 0
        for network_row, discovered_row in zip(
            self.network_map.splitlines(), self.discovered_map.splitlines()
        ):
            for network_char, discovered_char in zip(network_row, discovered_row):
                if network_char != " ":
                    network_cells += 1
                    if discovered_char != " ":
                        shared_cells += 1
        if network_cells == 0:
            return 0.0
        return shared_cells / network_cells

    def to_csv(self) -> str:
        """CSV export of the hot paths behind the figure."""
        return paths_to_csv(self.hot_paths)


def run_figure9(
    scale: Optional[ExperimentScale] = None,
    seed: int = 42,
    map_width: int = 80,
    map_height: int = 40,
) -> NetworkDiscoveryReport:
    """Reproduce Figure 9: all motion paths with hotness > 0 within the window."""
    config = scaled_simulation_config(scale=scale, seed=seed, run_naive_baseline=False)
    result = HotPathSimulation(config).run()
    hot_paths = result.hot_paths()
    bounds = result.network.bounding_box(padding=config.tolerance)
    renderer = AsciiMapRenderer(bounds, map_width, map_height)
    return NetworkDiscoveryReport(
        result=result,
        hot_paths=hot_paths,
        bounds=bounds,
        discovered_map=renderer.render_paths(hot_paths),
        network_map=renderer.render_network(result.network),
    )


def run_figure10(
    scale: Optional[ExperimentScale] = None,
    seed: int = 42,
    k: int = 20,
    centre_fraction: float = 0.5,
    map_width: int = 60,
    map_height: int = 30,
) -> NetworkDiscoveryReport:
    """Reproduce Figure 10: the top-k hottest motion paths in the centre of the area.

    ``centre_fraction`` selects the central sub-rectangle of the monitored area
    (0.5 keeps the central half along each axis, mirroring the paper's zoom on
    the centre of Athens).
    """
    config = scaled_simulation_config(scale=scale, seed=seed, run_naive_baseline=False)
    result = HotPathSimulation(config).run()

    full_bounds = result.network.bounding_box(padding=config.tolerance)
    margin_x = full_bounds.width * (1.0 - centre_fraction) / 2.0
    margin_y = full_bounds.height * (1.0 - centre_fraction) / 2.0
    centre = Rectangle(
        Point(full_bounds.low.x + margin_x, full_bounds.low.y + margin_y),
        Point(full_bounds.high.x - margin_x, full_bounds.high.y - margin_y),
    )

    central_paths = [
        (record, hotness)
        for record, hotness in result.hot_paths()
        if centre.contains_point(record.path.start) or centre.contains_point(record.path.end)
    ]
    central_paths.sort(key=lambda item: item[1], reverse=True)
    top = central_paths[:k]

    renderer = AsciiMapRenderer(centre, map_width, map_height)
    return NetworkDiscoveryReport(
        result=result,
        hot_paths=top,
        bounds=centre,
        discovered_map=renderer.render_paths(top),
        network_map=renderer.render_network(result.network),
    )
