"""Figure 8 — varying the tolerance parameter (paper Section 6.2).

Same three panels as Figure 7 but sweeping epsilon in {1, 2, 10, 20} metres at
a fixed population of 20,000 objects.  The expected shape from the paper:
SinglePath stores fewer, hotter and longer paths as epsilon grows, and the
coordinator's processing time drops by more than a factor of three between
epsilon = 2 and epsilon = 20.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.experiments.config import ExperimentScale, PAPER_TOLERANCES
from repro.experiments.sweeps import SweepRow, run_tolerance_sweep

__all__ = ["Figure8Report", "run_figure8"]


@dataclass
class Figure8Report:
    """Data behind the three panels of Figure 8."""

    rows: List[SweepRow] = field(default_factory=list)

    @property
    def tolerances(self) -> List[float]:
        return [row.parameter_value for row in self.rows]

    def panel_a(self) -> Dict[str, List[float]]:
        """Index size series: SinglePath vs DP."""
        return {
            "tolerance": self.tolerances,
            "single_path_index_size": [row.index_size for row in self.rows],
            "dp_index_size": [row.dp_index_size for row in self.rows],
        }

    def panel_b(self) -> Dict[str, List[float]]:
        """Top-k score series: SinglePath vs DP."""
        return {
            "tolerance": self.tolerances,
            "single_path_score": [row.top_k_score for row in self.rows],
            "dp_score": [row.dp_top_k_score for row in self.rows],
        }

    def panel_c(self) -> Dict[str, List[float]]:
        """Coordinator processing time per epoch (seconds)."""
        return {
            "tolerance": self.tolerances,
            "processing_seconds": [row.processing_seconds for row in self.rows],
        }

    def format_table(self) -> str:
        """Human-readable table of all three panels."""
        header = (
            f"{'epsilon (m)':>12} {'N (run)':>9} {'idx SP':>10} {'idx DP':>10} "
            f"{'score SP':>12} {'score DP':>12} {'time/epoch s':>14}"
        )
        lines = [header, "-" * len(header)]
        for row in self.rows:
            lines.append(
                f"{row.parameter_value:>12.1f} {row.scaled_num_objects:>9} "
                f"{row.index_size:>10.1f} {row.dp_index_size:>10.1f} "
                f"{row.top_k_score:>12.1f} {row.dp_top_k_score:>12.1f} "
                f"{row.processing_seconds:>14.4f}"
            )
        return "\n".join(lines)


def run_figure8(
    tolerances: Optional[Sequence[float]] = None,
    scale: Optional[ExperimentScale] = None,
    seed: int = 42,
) -> Figure8Report:
    """Run the Figure 8 sweep (population fixed at the default of 20,000 objects)."""
    values = list(tolerances) if tolerances is not None else PAPER_TOLERANCES
    rows = run_tolerance_sweep(values, scale=scale, num_objects=20000, seed=seed)
    return Figure8Report(rows)
