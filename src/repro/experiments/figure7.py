"""Figure 7 — varying the number of objects (paper Section 6.2).

Three panels share the same sweep (N in {10k, 20k, 50k, 100k}, epsilon = 10):

* 7(a) motion paths stored in the index, SinglePath vs DP;
* 7(b) score of the top-10 hottest motion paths, SinglePath vs DP;
* 7(c) coordinator processing time per epoch for SinglePath.

:func:`run_figure7` executes the sweep and returns a report object whose
``format_table`` method prints the three series side by side the way the
figure's data would be tabulated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.experiments.config import ExperimentScale, PAPER_OBJECT_COUNTS
from repro.experiments.sweeps import SweepRow, run_object_count_sweep

__all__ = ["Figure7Report", "run_figure7"]


@dataclass
class Figure7Report:
    """Data behind the three panels of Figure 7."""

    rows: List[SweepRow] = field(default_factory=list)

    @property
    def object_counts(self) -> List[float]:
        return [row.parameter_value for row in self.rows]

    def panel_a(self) -> Dict[str, List[float]]:
        """Index size series: SinglePath vs DP."""
        return {
            "num_objects": self.object_counts,
            "single_path_index_size": [row.index_size for row in self.rows],
            "dp_index_size": [row.dp_index_size for row in self.rows],
        }

    def panel_b(self) -> Dict[str, List[float]]:
        """Top-k score series: SinglePath vs DP."""
        return {
            "num_objects": self.object_counts,
            "single_path_score": [row.top_k_score for row in self.rows],
            "dp_score": [row.dp_top_k_score for row in self.rows],
        }

    def panel_c(self) -> Dict[str, List[float]]:
        """Coordinator processing time per epoch (seconds)."""
        return {
            "num_objects": self.object_counts,
            "processing_seconds": [row.processing_seconds for row in self.rows],
        }

    def format_table(self) -> str:
        """Human-readable table of all three panels."""
        header = (
            f"{'N (paper)':>12} {'N (run)':>9} {'idx SP':>10} {'idx DP':>10} "
            f"{'score SP':>12} {'score DP':>12} {'time/epoch s':>14}"
        )
        lines = [header, "-" * len(header)]
        for row in self.rows:
            lines.append(
                f"{int(row.parameter_value):>12} {row.scaled_num_objects:>9} "
                f"{row.index_size:>10.1f} {row.dp_index_size:>10.1f} "
                f"{row.top_k_score:>12.1f} {row.dp_top_k_score:>12.1f} "
                f"{row.processing_seconds:>14.4f}"
            )
        return "\n".join(lines)


def run_figure7(
    object_counts: Optional[Sequence[int]] = None,
    scale: Optional[ExperimentScale] = None,
    seed: int = 42,
) -> Figure7Report:
    """Run the Figure 7 sweep (tolerance fixed at the default of 10 metres)."""
    counts = list(object_counts) if object_counts is not None else PAPER_OBJECT_COUNTS
    rows = run_object_count_sweep(counts, scale=scale, tolerance=10.0, seed=seed)
    return Figure7Report(rows)
