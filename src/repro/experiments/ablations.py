"""Ablation studies on the design choices called out in DESIGN.md.

These go beyond the paper's reported figures but use only machinery the paper
describes:

* **Communication** (A1) — RayTrace's uplink message volume versus the naive
  always-report client, across tolerance values.  This quantifies the saving
  that motivates the two-tier design (Sections 1 and 3.2).
* **Uncertainty** (A2) — the effect of the (epsilon, delta) model on the
  effective tolerance square and therefore on message volume and index size,
  across delta values.
* **Grid resolution** (A3) — sensitivity of coordinator processing time and
  index behaviour to the grid-index resolution (Section 5.1 leaves the cell
  count as a free parameter).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.experiments.config import ExperimentScale, scaled_simulation_config
from repro.simulation.engine import HotPathSimulation

__all__ = [
    "CommunicationAblationRow",
    "UncertaintyAblationRow",
    "GridResolutionAblationRow",
    "run_communication_ablation",
    "run_uncertainty_ablation",
    "run_grid_resolution_ablation",
]


@dataclass
class CommunicationAblationRow:
    """Uplink volume of RayTrace versus naive reporting for one tolerance."""

    tolerance: float
    raytrace_messages: int
    raytrace_bytes: int
    naive_messages: int
    naive_bytes: int
    reduction: float


@dataclass
class UncertaintyAblationRow:
    """Effect of the delta parameter on filtering and index size."""

    delta: float
    uplink_messages: int
    mean_index_size: float
    mean_top_k_score: float


@dataclass
class GridResolutionAblationRow:
    """Effect of the grid resolution on coordinator cost."""

    cells_per_axis: int
    mean_processing_seconds: float
    mean_index_size: float
    mean_top_k_score: float


def run_communication_ablation(
    tolerances: Sequence[float] = (2.0, 10.0, 20.0),
    scale: Optional[ExperimentScale] = None,
    seed: int = 42,
) -> List[CommunicationAblationRow]:
    """Compare RayTrace uplink volume against naive reporting across tolerances."""
    rows: List[CommunicationAblationRow] = []
    for tolerance in tolerances:
        config = scaled_simulation_config(
            scale=scale, tolerance=tolerance, seed=seed, run_dp_baseline=False
        )
        result = HotPathSimulation(config).run()
        metrics = result.metrics
        rows.append(
            CommunicationAblationRow(
                tolerance=tolerance,
                raytrace_messages=metrics.uplink.messages,
                raytrace_bytes=metrics.uplink.bytes,
                naive_messages=metrics.naive_uplink.messages,
                naive_bytes=metrics.naive_uplink.bytes,
                reduction=metrics.message_reduction_versus_naive(),
            )
        )
    return rows


def run_uncertainty_ablation(
    deltas: Sequence[float] = (0.0, 0.05, 0.2),
    scale: Optional[ExperimentScale] = None,
    seed: int = 42,
) -> List[UncertaintyAblationRow]:
    """Sweep the delta parameter of the uncertainty-aware filter."""
    rows: List[UncertaintyAblationRow] = []
    for delta in deltas:
        config = scaled_simulation_config(
            scale=scale,
            delta=delta,
            seed=seed,
            run_dp_baseline=False,
            run_naive_baseline=False,
        )
        result = HotPathSimulation(config).run()
        metrics = result.metrics
        rows.append(
            UncertaintyAblationRow(
                delta=delta,
                uplink_messages=metrics.uplink.messages,
                mean_index_size=metrics.mean_index_size,
                mean_top_k_score=metrics.mean_top_k_score,
            )
        )
    return rows


def run_grid_resolution_ablation(
    cell_counts: Sequence[int] = (16, 64, 128),
    scale: Optional[ExperimentScale] = None,
    seed: int = 42,
) -> List[GridResolutionAblationRow]:
    """Sweep the grid-index resolution at otherwise default parameters."""
    rows: List[GridResolutionAblationRow] = []
    for cells in cell_counts:
        config = scaled_simulation_config(
            scale=scale,
            cells_per_axis=cells,
            seed=seed,
            run_dp_baseline=False,
            run_naive_baseline=False,
        )
        result = HotPathSimulation(config).run()
        metrics = result.metrics
        rows.append(
            GridResolutionAblationRow(
                cells_per_axis=cells,
                mean_processing_seconds=metrics.mean_processing_seconds,
                mean_index_size=metrics.mean_index_size,
                mean_top_k_score=metrics.mean_top_k_score,
            )
        )
    return rows
