"""Experiment runners regenerating every table and figure of the paper's evaluation."""

from repro.experiments.config import (
    PAPER_DEFAULTS,
    PAPER_OBJECT_COUNTS,
    PAPER_TOLERANCES,
    ExperimentScale,
    scaled_simulation_config,
)
from repro.experiments.sweeps import SweepRow, run_object_count_sweep, run_tolerance_sweep
from repro.experiments.figure7 import run_figure7
from repro.experiments.figure8 import run_figure8
from repro.experiments.figure9 import run_figure9, run_figure10
from repro.experiments.ablations import (
    run_communication_ablation,
    run_uncertainty_ablation,
    run_grid_resolution_ablation,
)
from repro.experiments.report import (
    sweep_rows_to_csv,
    write_sweep_csv,
    ablation_rows_to_csv,
    write_experiment_bundle,
)

__all__ = [
    "PAPER_DEFAULTS",
    "PAPER_OBJECT_COUNTS",
    "PAPER_TOLERANCES",
    "ExperimentScale",
    "scaled_simulation_config",
    "SweepRow",
    "run_object_count_sweep",
    "run_tolerance_sweep",
    "run_figure7",
    "run_figure8",
    "run_figure9",
    "run_figure10",
    "run_communication_ablation",
    "run_uncertainty_ablation",
    "run_grid_resolution_ablation",
    "sweep_rows_to_csv",
    "write_sweep_csv",
    "ablation_rows_to_csv",
    "write_experiment_bundle",
]
