"""Module entry point: ``python -m repro <command>`` dispatches to the CLI."""

import sys

from repro.cli import main

sys.exit(main())
