"""Coordinator tier: motion-path storage, hotness maintenance and SinglePath.

Scaling
-------
The tier runs in two layouts behind one interface:

* **Single shard** (``num_shards=1``, the paper's architecture): one
  :class:`GridIndex`, one :class:`HotnessTracker` and one
  :class:`SinglePathStrategy` own the whole monitored area.
* **Sharded** (``num_shards>1``): the area is partitioned into a shard fleet
  — a uniform R x C grid or a load-adaptive kd-split layout rebalanced at
  epoch boundaries (see :mod:`repro.coordinator.partition`) — and every
  shard owns the full coordinator state for its cell
  (see :mod:`repro.coordinator.sharding`).  Object state messages are routed
  to the shard owning their SSA start; motion paths straddling a shard
  boundary are split by *endpoint-owner routing* — each endpoint entry lives
  with the shard owning its location while the record and hotness stay with
  the start owner.  Epochs run as a batched pipeline (group-by-shard intake,
  one candidate pass and one halo-pooled FSA overlap structure per shard,
  deferred per-shard expiry drains) and the global top-k is an exact merge
  of the per-shard hot paths.  Hot paths welded end-to-start are stitched
  into cross-shard *composite corridors*
  (:mod:`repro.coordinator.stitching`) — recomputed lazily after each
  epoch's commit — and reported through the corridor-aware top-k merge.

The sharded layout is behaviour-identical to the single-shard one — the
differential harness in ``tests/test_sharding_equivalence.py`` asserts
bit-for-bit equality — so scale-out never changes the discovered paths.
"""

from repro.coordinator.grid_index import GridIndex, GridConfig
from repro.coordinator.hotness import HotnessTracker
from repro.coordinator.overlaps import OverlapRegion, FsaOverlapStructure
from repro.coordinator.partition import (
    PARTITION_KINDS,
    KdSplitPartition,
    Partition,
    UniformGridPartition,
)
from repro.coordinator.sharding import (
    Shard,
    ShardGrid,
    ShardRouter,
    ShardedGridIndex,
    ShardedHotnessTracker,
    ShardedSinglePath,
    shard_layout,
)
from repro.coordinator.single_path import SinglePathStrategy
from repro.coordinator.stitching import (
    STITCHING_MODES,
    CompositeCorridor,
    CorridorSegment,
    select_top_k_corridors,
    stitch_paths,
)
from repro.coordinator.coordinator import Coordinator, CoordinatorConfig, EpochOutcome

__all__ = [
    "GridIndex",
    "GridConfig",
    "HotnessTracker",
    "OverlapRegion",
    "FsaOverlapStructure",
    "SinglePathStrategy",
    "PARTITION_KINDS",
    "Partition",
    "UniformGridPartition",
    "KdSplitPartition",
    "Shard",
    "ShardGrid",
    "ShardRouter",
    "ShardedGridIndex",
    "ShardedHotnessTracker",
    "ShardedSinglePath",
    "shard_layout",
    "STITCHING_MODES",
    "CompositeCorridor",
    "CorridorSegment",
    "select_top_k_corridors",
    "stitch_paths",
    "Coordinator",
    "CoordinatorConfig",
    "EpochOutcome",
]
