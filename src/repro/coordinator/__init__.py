"""Coordinator tier: motion-path storage, hotness maintenance and SinglePath."""

from repro.coordinator.grid_index import GridIndex, GridConfig
from repro.coordinator.hotness import HotnessTracker
from repro.coordinator.overlaps import OverlapRegion, FsaOverlapStructure
from repro.coordinator.single_path import SinglePathStrategy
from repro.coordinator.coordinator import Coordinator, CoordinatorConfig, EpochOutcome

__all__ = [
    "GridIndex",
    "GridConfig",
    "HotnessTracker",
    "OverlapRegion",
    "FsaOverlapStructure",
    "SinglePathStrategy",
    "Coordinator",
    "CoordinatorConfig",
    "EpochOutcome",
]
