"""The SinglePath discovery strategy (paper Section 5.3, Algorithm 2).

SinglePath runs at the coordinator once per epoch, over the batch of state
messages received since the previous epoch.  For every reporting object it
determines the endpoint of the motion path the object just crossed, preferring
choices that concentrate hotness on few, long paths:

* **Case 1** — an already-stored motion path starts at the object's SSA start
  and ends inside its FSA: pick the hottest such path (hotness is temporarily
  boosted by the number of other reporting objects that could also adopt it).
* **Case 2** — no such path, but stored paths *end* inside the FSA: their end
  vertices become candidate endpoints, weighted by the summed hotness of the
  paths converging on them plus the count of the deepest FSA overlap they lie
  in.
* **Case 3** — nothing usable in the index: fabricate one extra candidate
  vertex inside the hottest overlap of reporting objects' FSAs intersecting
  this object's FSA, so simultaneous reporters converge on a shared endpoint.

In cases 2 and 3 a new motion path from the SSA start to the chosen vertex is
inserted into the grid index.  In every case a crossing is recorded with the
hotness tracker and the chosen endpoint is sent back to the object as the
start of its next Spatial Safe Area.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.geometry import Point, Rectangle
from repro.core.motion_path import MotionPath, MotionPathRecord
from repro.client.state import CoordinatorResponse, ObjectState
from repro.coordinator.grid_index import GridIndex
from repro.coordinator.hotness import HotnessTracker
from repro.coordinator.overlaps import FsaOverlapStructure, OverlapPoolCache

__all__ = [
    "CandidatePath",
    "CandidateVertex",
    "SinglePathDecision",
    "SinglePathEpochResult",
    "SinglePathStrategy",
    "apply_co_occurrence_boost",
]


@dataclass
class CandidatePath:
    """An available motion path for one object, with its provisional hotness."""

    record: MotionPathRecord
    hotness: int


@dataclass
class CandidateVertex:
    """A candidate endpoint for a new motion path, with its provisional hotness."""

    vertex: Point
    hotness: int
    fabricated: bool = False


@dataclass
class SinglePathDecision:
    """Outcome of SinglePath for a single reporting object."""

    object_id: int
    response: CoordinatorResponse
    path_id: int
    reused_existing_path: bool
    fabricated_vertex: bool


@dataclass
class SinglePathEpochResult:
    """Aggregate outcome of one SinglePath invocation (one epoch)."""

    decisions: List[SinglePathDecision] = field(default_factory=list)
    paths_inserted: int = 0
    paths_reused: int = 0
    vertices_fabricated: int = 0

    @property
    def responses(self) -> List[CoordinatorResponse]:
        return [decision.response for decision in self.decisions]

    def tally(self, decision: SinglePathDecision) -> None:
        """Append a decision and update the aggregate counters."""
        self.decisions.append(decision)
        if decision.reused_existing_path:
            self.paths_reused += 1
        else:
            self.paths_inserted += 1
        if decision.fabricated_vertex:
            self.vertices_fabricated += 1


def apply_co_occurrence_boost(candidate_paths: Dict[int, List[CandidatePath]]) -> None:
    """Boost hotness of paths appearing in several objects' candidate sets.

    Implements Lines 13-15 of Algorithm 2: each co-occurrence means another
    reporter could also adopt the path, making it a better shared choice.  The
    boost is a pure function of the multiset of candidate path ids, so it can
    be applied to per-shard candidate batches merged in any order.
    """
    occurrences: Counter = Counter()
    for candidates in candidate_paths.values():
        for candidate in candidates:
            occurrences[candidate.record.path_id] += 1
    for candidates in candidate_paths.values():
        for candidate in candidates:
            extra = occurrences[candidate.record.path_id] - 1
            candidate.hotness += extra


class SinglePathStrategy:
    """Implementation of Algorithm 2 over a grid index and a hotness tracker."""

    def __init__(
        self,
        index: GridIndex,
        hotness: HotnessTracker,
        kernel: str = "object",
        pool_cache: Optional[OverlapPoolCache] = None,
    ) -> None:
        self._index = index
        self._hotness = hotness
        self._kernel = kernel
        # Cross-epoch overlap-structure cache of the single-shard delta
        # pipeline.  A sharded fleet resolves its halo pools against the
        # router's cache before the backend builds the misses; the
        # single-shard strategy has exactly one "pool" per epoch (the full
        # FSA map) and runs it through the same resolve/store protocol, so a
        # 1-shard coordinator reports the same ``pools_*`` counter semantics
        # as a 1-shard fleet instead of hardcoded zeros.
        self._pool_cache = pool_cache
        #: Pool-cache outcome of the most recent epoch (mirrors
        #: ``ShardRouter.last_pool_stats``; all zeros without a cache).
        self.last_pool_stats: Dict[str, int] = self._zero_pool_stats()

    @staticmethod
    def _zero_pool_stats() -> Dict[str, int]:
        return {
            "pools_total": 0,
            "pools_reused": 0,
            "pools_prefix_reused": 0,
            "pools_rebuilt": 0,
        }

    def process_epoch(self, states: Sequence[ObjectState]) -> SinglePathEpochResult:
        """Run SinglePath over the batch of state messages of one epoch."""
        self.last_pool_stats = self._zero_pool_stats()
        result = SinglePathEpochResult()
        if not states:
            return result

        # Phase 1: candidate motion paths per object and the FSA overlap structure.
        candidate_paths: Dict[int, List[CandidatePath]] = {}
        fsas: Dict[int, Rectangle] = {}
        for state in states:
            candidate_paths[state.object_id] = self.candidate_paths(state)
            fsas[state.object_id] = state.fsa
        overlaps = self._overlap_structure(fsas)

        # Phase 2: boost hotness of paths that appear in several objects'
        # candidate sets.
        apply_co_occurrence_boost(candidate_paths)

        # Phase 3: selection per object, in submission order.
        for state in states:
            result.tally(self.decide(state, candidate_paths[state.object_id], overlaps))
        return result

    def _overlap_structure(self, fsas: Dict[int, Rectangle]) -> FsaOverlapStructure:
        """Build (or resolve from the delta-mode cache) the epoch's structure."""
        if self._pool_cache is None:
            return FsaOverlapStructure.build(fsas, kernel=self._kernel)
        structures, miss_indexes, stats = self._pool_cache.resolve([fsas])
        if miss_indexes:
            structures[0] = FsaOverlapStructure.build(fsas, kernel=self._kernel)
        self._pool_cache.store([fsas], structures)
        self.last_pool_stats = stats
        return structures[0]

    # -- candidate generation ------------------------------------------------------

    def candidate_paths(self, state: ObjectState) -> List[CandidatePath]:
        """``GetCandidatePaths``: stored paths from the SSA start into the FSA.

        Answered from the single grid cell holding the SSA start, so a shard
        that owns the start vertex can compute the candidate set without
        consulting its neighbours (every path starting at a vertex is stored
        with the shard owning that vertex).
        """
        records = self._index.paths_starting_at(state.start, state.fsa)
        return [
            CandidatePath(record, self._hotness.hotness(record.path_id) + 1)
            for record in records
        ]

    def _candidate_vertices(
        self, state: ObjectState, overlaps: FsaOverlapStructure
    ) -> List[CandidateVertex]:
        """``GetCandidateVertices`` plus the overlap-derived extra candidate."""
        candidates: List[CandidateVertex] = []
        for vertex, path_ids in self._index.end_vertices_in(state.fsa).items():
            converging = sum(self._hotness.hotness(path_id) for path_id in path_ids)
            region = overlaps.smallest_region_containing(vertex)
            bonus = region.count if region is not None else 0
            candidates.append(CandidateVertex(vertex, converging + bonus))
        fabricated = overlaps.candidate_vertex_for(state.fsa)
        if fabricated is not None:
            vertex, count = fabricated
            candidates.append(CandidateVertex(vertex, count, fabricated=True))
        if not candidates:
            # Degenerate fall-back: nothing intersects.  The object's own FSA
            # normally sits in the overlap structure as its singleton region,
            # but a saturated ``max_regions`` table drops late singletons (the
            # hard cap keeps earlier insertions), so use the FSA centroid with
            # zero hotness.
            candidates.append(CandidateVertex(state.fsa.center, 0, fabricated=True))
        return candidates

    # -- selection ---------------------------------------------------------------------

    def decide(
        self,
        state: ObjectState,
        candidates: List[CandidatePath],
        overlaps: FsaOverlapStructure,
    ) -> SinglePathDecision:
        """Choose one object's motion path given its (boosted) candidate set.

        Both selection steps use total orders — ties fall back to the path id
        or the vertex coordinates — so the outcome is independent of the order
        in which candidates were enumerated.  That invariance is what lets a
        sharded coordinator merge per-shard candidate batches and still make
        bit-identical decisions (see :mod:`repro.coordinator.sharding`).
        """
        if candidates:
            chosen = max(
                candidates,
                key=lambda candidate: (candidate.hotness, -candidate.record.path_id),
            )
            self._hotness.record_crossing(chosen.record.path_id, state.t_end)
            response = CoordinatorResponse(
                state.object_id, chosen.record.path.end, state.t_end
            )
            return SinglePathDecision(
                object_id=state.object_id,
                response=response,
                path_id=chosen.record.path_id,
                reused_existing_path=True,
                fabricated_vertex=False,
            )

        vertex_candidates = self._candidate_vertices(state, overlaps)
        chosen_vertex = max(
            vertex_candidates,
            key=lambda candidate: (
                candidate.hotness,
                not candidate.fabricated,
                candidate.vertex.x,
                candidate.vertex.y,
            ),
        )
        endpoint = chosen_vertex.vertex
        if endpoint == state.start:
            # A zero-length path carries no information and would produce a
            # degenerate segment; nudge the endpoint to another point of the
            # FSA (the centroid, falling back to a corner).
            for alternative in (state.fsa.center, state.fsa.high, state.fsa.low):
                if alternative != state.start:
                    endpoint = alternative
                    break
        record, inserted = self._insert_or_reuse(state.start, endpoint, state.t_end)
        self._hotness.record_crossing(record.path_id, state.t_end)
        response = CoordinatorResponse(state.object_id, endpoint, state.t_end)
        return SinglePathDecision(
            object_id=state.object_id,
            response=response,
            path_id=record.path_id,
            reused_existing_path=not inserted,
            fabricated_vertex=chosen_vertex.fabricated,
        )

    def _insert_or_reuse(
        self, start: Point, endpoint: Point, t_end: int
    ) -> Tuple[MotionPathRecord, bool]:
        """Insert ``start -> endpoint`` unless an identical path already exists.

        Objects processed later in the same epoch frequently choose the exact
        endpoint fabricated for an earlier object (that is the point of the
        overlap structure); crediting the already-inserted path instead of
        storing a duplicate keeps the index small and concentrates hotness,
        which is the stated goal of SinglePath.
        """
        probe = Rectangle.degenerate(endpoint)
        for record in self._index.paths_from_into(start, probe):
            if record.path.end == endpoint:
                return record, False
        record = self._index.insert(MotionPath(start, endpoint), created_at=t_end)
        return record, True
