"""Columnar (structure-of-arrays) kernels for the coordinator hot path.

The scalar pipeline spends its epochs in per-object python geometry: grid-cell
membership tests, closed-interval rectangle containment, FSA intersection
scans and the region tie-break loops of the overlap queries.  This module
flattens those inner loops into contiguous numpy arrays:

* :class:`CellBlock` / :class:`ColumnarCellStore` — per-cell SoA endpoint
  tables behind :class:`~repro.coordinator.grid_index.GridIndex`.  Each
  occupied grid cell keeps parallel ``float64`` coordinate columns and
  ``int64`` path-id columns, so one candidate query tests every entry of a
  cell block in a handful of vectorized comparisons instead of a python loop
  (the batched form of the Case 1 / Case 2 candidate scans).
* :class:`RegionTable` — a lazily built SoA view over an
  :class:`~repro.coordinator.overlaps.FsaOverlapStructure`'s region table.
  The two overlap queries become masked lexicographic argmins whose final
  tie-break key is the region's *insertion index*, reproducing the scalar
  first-encountered-wins semantics bit for bit.
* :class:`ShipmentRing` / :func:`decode_work_shipment` — the shared-memory
  transport of :class:`~repro.coordinator.execution.ProcessBackend`: one
  reusable ``multiprocessing.shared_memory`` block per worker carrying the
  epoch's journal slice, candidate tasks and halo FSA pools as packed
  ``int64``/``float64`` sections, so replicas read arrays instead of
  unpickling per-record tuples.

**Exactness.**  Every kernel is required to be bit-for-bit equal to the
scalar reference (``kernel="object"``), which stays the pinned
differential baseline exactly like ``--epoch-mode full`` does for the delta
pipeline.  The equality argument is mechanical: coordinates are stored
verbatim (python floats and ``float64`` are the same IEEE doubles, and
``==`` / ``<=`` agree), areas are computed with the same two double
multiplications, and wherever the scalar code breaks ties by encounter
order the vectorized argmin carries the insertion index as its last sort
key.  ``tests/test_columnar_equivalence.py`` enforces the contract over the
full harness matrix and with hypothesis kernel-level suites.

numpy is an optional dependency: without it :func:`resolve_kernel` silently
degrades ``columnar`` to ``object`` so every configuration keeps working on
a bare interpreter.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.errors import ConfigurationError
from repro.core.geometry import Point, Rectangle

try:  # pragma: no cover - exercised implicitly by every columnar test
    import numpy as _np
except ImportError:  # pragma: no cover - the container bakes numpy in
    _np = None

__all__ = [
    "KERNELS",
    "HAVE_NUMPY",
    "resolve_kernel",
    "CellBlock",
    "ColumnarCellStore",
    "RegionTable",
    "ShipmentRing",
    "decode_work_shipment",
    "close_attachments",
]

HAVE_NUMPY = _np is not None

#: Values accepted by the ``kernel`` knob (config layers and ``--kernel``):
#: ``object`` is the scalar per-object reference pipeline; ``columnar`` (the
#: default) runs the vectorized kernels of this module, bit-for-bit equal.
KERNELS: Tuple[str, ...] = ("object", "columnar")


def resolve_kernel(kernel: str) -> str:
    """Validate a kernel name, degrading ``columnar`` without numpy.

    The fallback is deliberate rather than an error: the two kernels are
    bit-for-bit equal, so a numpy-less interpreter silently running the
    scalar reference is a performance change, never a behaviour change.
    """
    if kernel not in KERNELS:
        raise ConfigurationError(
            f"kernel must be one of {', '.join(KERNELS)}, got {kernel!r}"
        )
    if kernel == "columnar" and not HAVE_NUMPY:
        return "object"
    return kernel


# ---------------------------------------------------------------------------
# Grid-index cell blocks
# ---------------------------------------------------------------------------

_INITIAL_CAPACITY = 8


class CellBlock:
    """SoA endpoint table of one occupied grid cell.

    Parallel capacity-doubling columns: ``pids`` / ``starts`` identify the
    entry (the ``(path_id, is_start)`` key of the object kernel), ``ex, ey``
    hold the indexed endpoint and ``ox, oy`` the path's other endpoint —
    the same two points the scalar cell dict stores per entry.  ``_rows``
    maps entry keys to row numbers for O(1) upsert/remove; removal swaps the
    last row in, so the block is always dense in ``[0, count)``.
    """

    __slots__ = ("count", "pids", "starts", "ex", "ey", "ox", "oy", "_rows")

    def __init__(self) -> None:
        self.count = 0
        self.pids = _np.empty(_INITIAL_CAPACITY, dtype=_np.int64)
        self.starts = _np.empty(_INITIAL_CAPACITY, dtype=_np.bool_)
        self.ex = _np.empty(_INITIAL_CAPACITY, dtype=_np.float64)
        self.ey = _np.empty(_INITIAL_CAPACITY, dtype=_np.float64)
        self.ox = _np.empty(_INITIAL_CAPACITY, dtype=_np.float64)
        self.oy = _np.empty(_INITIAL_CAPACITY, dtype=_np.float64)
        self._rows: Dict[Tuple[int, bool], int] = {}

    def _grow(self) -> None:
        capacity = len(self.pids) * 2
        for name in ("pids", "starts", "ex", "ey", "ox", "oy"):
            column = getattr(self, name)
            grown = _np.empty(capacity, dtype=column.dtype)
            grown[: self.count] = column[: self.count]
            setattr(self, name, grown)

    def upsert(self, key: Tuple[int, bool], endpoint: Point, other: Point) -> None:
        """Insert or overwrite one entry (matches the scalar dict assignment)."""
        row = self._rows.get(key)
        if row is None:
            if self.count == len(self.pids):
                self._grow()
            row = self.count
            self.count += 1
            self._rows[key] = row
        self.pids[row] = key[0]
        self.starts[row] = key[1]
        self.ex[row] = endpoint.x
        self.ey[row] = endpoint.y
        self.ox[row] = other.x
        self.oy[row] = other.y

    def remove(self, key: Tuple[int, bool]) -> int:
        """Drop one entry (swap-with-last); returns the remaining count."""
        row = self._rows.pop(key, None)
        if row is not None:
            last = self.count - 1
            if row != last:
                moved_key = (int(self.pids[last]), bool(self.starts[last]))
                for name in ("pids", "starts", "ex", "ey", "ox", "oy"):
                    column = getattr(self, name)
                    column[row] = column[last]
                self._rows[moved_key] = row
            self.count = last
        return self.count

    # -- vectorized candidate kernels ---------------------------------------

    def start_matches(self, start: Point, region: Rectangle) -> List[int]:
        """Case 1 kernel: start entries at ``start`` whose other endpoint is
        inside ``region`` (closed containment, like the scalar reference)."""
        n = self.count
        mask = self.starts[:n] & (self.ex[:n] == start.x) & (self.ey[:n] == start.y)
        mask &= (region.low.x <= self.ox[:n]) & (self.ox[:n] <= region.high.x)
        mask &= (region.low.y <= self.oy[:n]) & (self.oy[:n] <= region.high.y)
        return [int(pid) for pid in self.pids[:n][mask]]

    def from_into_matches(self, start: Point, region: Rectangle) -> List[int]:
        """End entries whose path starts at ``start`` and ends inside ``region``."""
        n = self.count
        mask = ~self.starts[:n] & (self.ox[:n] == start.x) & (self.oy[:n] == start.y)
        mask &= (region.low.x <= self.ex[:n]) & (self.ex[:n] <= region.high.x)
        mask &= (region.low.y <= self.ey[:n]) & (self.ey[:n] <= region.high.y)
        return [int(pid) for pid in self.pids[:n][mask]]

    def end_rows_in(self, region: Rectangle):
        """Case 2 kernel: ``(path_ids, xs, ys)`` of end entries inside ``region``."""
        n = self.count
        mask = ~self.starts[:n]
        mask &= (region.low.x <= self.ex[:n]) & (self.ex[:n] <= region.high.x)
        mask &= (region.low.y <= self.ey[:n]) & (self.ey[:n] <= region.high.y)
        rows = _np.flatnonzero(mask)
        return self.pids[rows], self.ex[rows], self.ey[rows]

    def endpoints_in(self, region: Rectangle):
        """Path ids (row order, possibly repeated) with the indexed endpoint inside."""
        n = self.count
        mask = (region.low.x <= self.ex[:n]) & (self.ex[:n] <= region.high.x)
        mask &= (region.low.y <= self.ey[:n]) & (self.ey[:n] <= region.high.y)
        return self.pids[:n][mask]


class ColumnarCellStore:
    """The columnar counterpart of the grid index's cell dict.

    Maps occupied cell keys to :class:`CellBlock` tables; empty blocks are
    dropped so occupancy statistics mirror the scalar store.
    """

    __slots__ = ("blocks",)

    def __init__(self) -> None:
        self.blocks: Dict[Tuple[int, int], CellBlock] = {}

    def upsert(
        self,
        cell: Tuple[int, int],
        key: Tuple[int, bool],
        endpoint: Point,
        other: Point,
    ) -> None:
        block = self.blocks.get(cell)
        if block is None:
            block = self.blocks[cell] = CellBlock()
        block.upsert(key, endpoint, other)

    def remove(self, cell: Tuple[int, int], key: Tuple[int, bool]) -> None:
        block = self.blocks.get(cell)
        if block is not None and block.remove(key) == 0:
            del self.blocks[cell]

    def occupancy(self) -> List[int]:
        return [block.count for block in self.blocks.values()]


# ---------------------------------------------------------------------------
# Overlap-structure region table
# ---------------------------------------------------------------------------


class RegionTable:
    """SoA query accelerator over an overlap structure's region dict.

    Built once per structure (lazily, invalidated by ``add``) from the
    regions *in insertion order*; both queries keep that order as the last
    lexicographic sort key, so the vectorized argmin reproduces the scalar
    loops' first-encountered-wins tie-breaks exactly:

    * smallest containing region — min by ``(area, -count, insertion index)``;
    * hottest intersecting region — min by ``(-count, area, insertion index)``.
    """

    __slots__ = ("lx", "ly", "hx", "hy", "area", "neg_count", "members", "rects")

    def __init__(self, regions: Dict) -> None:
        n = len(regions)
        self.members = list(regions.keys())
        self.rects = list(regions.values())
        self.lx = _np.empty(n, dtype=_np.float64)
        self.ly = _np.empty(n, dtype=_np.float64)
        self.hx = _np.empty(n, dtype=_np.float64)
        self.hy = _np.empty(n, dtype=_np.float64)
        self.neg_count = _np.empty(n, dtype=_np.int64)
        for index, (members, rect) in enumerate(regions.items()):
            self.lx[index] = rect.low.x
            self.ly[index] = rect.low.y
            self.hx[index] = rect.high.x
            self.hy[index] = rect.high.y
            self.neg_count[index] = -len(members)
        # The same two IEEE multiplications Rectangle.area performs, so a
        # float area tie in the scalar loop is a float area tie here too.
        self.area = (self.hx - self.lx) * (self.hy - self.ly)

    def smallest_containing(self, point: Point) -> Optional[int]:
        """Index of the scalar winner of ``smallest_region_containing``."""
        mask = (self.lx <= point.x) & (point.x <= self.hx)
        mask &= (self.ly <= point.y) & (point.y <= self.hy)
        rows = _np.flatnonzero(mask)
        if rows.size == 0:
            return None
        order = _np.lexsort((rows, self.neg_count[rows], self.area[rows]))
        return int(rows[order[0]])

    def hottest_intersecting(self, fsa: Rectangle) -> Optional[int]:
        """Index of the scalar winner of ``hottest_region_intersecting``."""
        mask = (self.lx <= fsa.high.x) & (fsa.low.x <= self.hx)
        mask &= (self.ly <= fsa.high.y) & (fsa.low.y <= self.hy)
        rows = _np.flatnonzero(mask)
        if rows.size == 0:
            return None
        order = _np.lexsort((rows, self.area[rows], self.neg_count[rows]))
        return int(rows[order[0]])


# ---------------------------------------------------------------------------
# Shared-memory epoch shipments (ProcessBackend transport)
# ---------------------------------------------------------------------------
#
# Wire layout of one "work" shipment inside a worker's shared block: an
# ``int64`` section followed by a ``float64`` section (the float offset is
# the block's integer capacity, carried in the pipe header so parent and
# worker never disagree about it).  Section order is fixed:
#
#   ints:   ops[n_ops, 4]      -- (tag, a, b, c); tag 0=insert, 1=delete,
#                                  2=renumber; a/b/c are (path_id, shard,
#                                  created_at) for inserts, (path_id, shard,
#                                  0) for deletes, (old, new, shard) for
#                                  renumbers
#           tasks[n_tasks, 2]  -- (position, shard_id)
#           pools[n_pools, 2]  -- (pool_index, member_count)
#           members[n_entries] -- object ids, pool-concatenated
#   floats: ops[n_ops, 4]      -- (sx, sy, ex, ey) for inserts, zeros else
#           tasks[n_tasks, 6]  -- (sx, sy, flx, fly, fhx, fhy)
#           members[n_entries, 4] -- FSA (lx, ly, hx, hy), pool-concatenated
#
# The pipe still carries a small header per shipment (and all replies), so
# it keeps providing the happens-before edge between the parent's writes
# and the worker's reads; the block itself is plain memory.

_OP_TAGS = {"i": 0, "d": 1, "r": 2}


def _shipment_sizes(ops, tasks, overlap_tasks) -> Tuple[int, int, int, int, int, int]:
    n_ops = len(ops)
    n_tasks = len(tasks)
    n_pools = len(overlap_tasks)
    n_entries = sum(len(members) for _pool_index, members in overlap_tasks)
    ints = 4 * n_ops + 2 * n_tasks + 2 * n_pools + n_entries
    floats = 4 * n_ops + 6 * n_tasks + 4 * n_entries
    return n_ops, n_tasks, n_pools, n_entries, ints, floats


class ShipmentRing:
    """One worker's reusable shared-memory shipment block (parent side).

    Grows geometrically and is reused across epochs, so the steady state
    allocates nothing: the parent packs each epoch's journal slice, candidate
    tasks and cache-missed halo pools into the existing block and ships a
    constant-size header over the pipe.  ``pack`` returns that header;
    :func:`decode_work_shipment` is its worker-side inverse.
    """

    __slots__ = ("_shm", "_int_capacity", "_float_capacity")

    def __init__(self) -> None:
        self._shm = None
        self._int_capacity = 0
        self._float_capacity = 0

    def _ensure_capacity(self, ints: int, floats: int) -> None:
        if self._shm is not None and ints <= self._int_capacity and floats <= self._float_capacity:
            return
        from multiprocessing import shared_memory

        int_capacity = max(self._int_capacity * 2, ints, 256)
        float_capacity = max(self._float_capacity * 2, floats, 256)
        if self._shm is not None:
            self.close(unlink=True)
        self._shm = shared_memory.SharedMemory(
            create=True, size=8 * (int_capacity + float_capacity)
        )
        self._int_capacity = int_capacity
        self._float_capacity = float_capacity

    def pack(self, ops, tasks, overlap_tasks) -> tuple:
        """Write one epoch shipment; returns the ``("work_shm", ...)`` header."""
        n_ops, n_tasks, n_pools, n_entries, ints, floats = _shipment_sizes(
            ops, tasks, overlap_tasks
        )
        self._ensure_capacity(ints, floats)
        int_view = _np.ndarray(
            (self._int_capacity,), dtype=_np.int64, buffer=self._shm.buf
        )
        float_view = _np.ndarray(
            (self._float_capacity,),
            dtype=_np.float64,
            buffer=self._shm.buf,
            offset=8 * self._int_capacity,
        )
        cursor = 0
        op_ints = int_view[cursor : cursor + 4 * n_ops].reshape(n_ops, 4)
        cursor += 4 * n_ops
        task_ints = int_view[cursor : cursor + 2 * n_tasks].reshape(n_tasks, 2)
        cursor += 2 * n_tasks
        pool_ints = int_view[cursor : cursor + 2 * n_pools].reshape(n_pools, 2)
        cursor += 2 * n_pools
        member_ints = int_view[cursor : cursor + n_entries]
        cursor = 0
        op_floats = float_view[cursor : cursor + 4 * n_ops].reshape(n_ops, 4)
        cursor += 4 * n_ops
        task_floats = float_view[cursor : cursor + 6 * n_tasks].reshape(n_tasks, 6)
        cursor += 6 * n_tasks
        member_floats = float_view[cursor : cursor + 4 * n_entries].reshape(n_entries, 4)

        for row, op in enumerate(ops):
            tag = _OP_TAGS[op[0]]
            if tag == 0:
                _t, path_id, shard_id, s_x, s_y, e_x, e_y, created_at = op
                op_ints[row] = (0, path_id, shard_id, created_at)
                op_floats[row] = (s_x, s_y, e_x, e_y)
            elif tag == 1:
                op_ints[row] = (1, op[1], op[2], 0)
                op_floats[row] = 0.0
            else:
                op_ints[row] = (2, op[1], op[2], op[3])
                op_floats[row] = 0.0
        for row, task in enumerate(tasks):
            task_ints[row] = task[:2]
            task_floats[row] = task[2:]
        entry = 0
        for row, (pool_index, members) in enumerate(overlap_tasks):
            pool_ints[row] = (pool_index, len(members))
            for object_id, f_lx, f_ly, f_hx, f_hy in members:
                member_ints[entry] = object_id
                member_floats[entry] = (f_lx, f_ly, f_hx, f_hy)
                entry += 1
        return (
            "work_shm",
            self._shm.name,
            self._int_capacity,
            n_ops,
            n_tasks,
            n_pools,
            n_entries,
        )

    def close(self, unlink: bool = True) -> None:
        """Release the block (and destroy it with ``unlink=True``)."""
        if self._shm is None:
            return
        try:
            self._shm.close()
            if unlink:
                self._shm.unlink()
        except (FileNotFoundError, OSError):  # pragma: no cover - defensive
            pass
        self._shm = None
        self._int_capacity = 0
        self._float_capacity = 0


def _attach(name: str, attachments: Dict[str, object]):
    """Worker-side attach with caching; unregisters from the resource tracker.

    Attaching registers the segment with ``multiprocessing.resource_tracker``,
    which would unlink it when this worker exits even though the parent still
    owns it (bpo-39959); ownership stays with the parent's
    :class:`ShipmentRing`, so the attachment is unregistered right away.
    """
    shm = attachments.get(name)
    if shm is None:
        from multiprocessing import shared_memory

        shm = shared_memory.SharedMemory(name=name)
        try:  # pragma: no cover - tracker layout is an implementation detail
            from multiprocessing import resource_tracker

            resource_tracker.unregister(shm._name, "shared_memory")
        except Exception:
            pass
        # A reallocation (new name) replaces the ring wholesale, so stale
        # attachments can be dropped as soon as a new name arrives.
        for stale in list(attachments.values()):
            try:
                stale.close()
            except OSError:  # pragma: no cover - defensive
                pass
        attachments.clear()
        attachments[name] = shm
    return shm


def decode_work_shipment(header: Sequence, attachments: Dict[str, object]):
    """Worker-side inverse of :meth:`ShipmentRing.pack`.

    Returns ``(ops, tasks, overlap_tasks)`` in exactly the shapes the pickled
    pipe protocol ships, so the worker loop downstream of the decode is
    transport-agnostic.
    """
    _kind, name, int_capacity, n_ops, n_tasks, n_pools, n_entries = header
    shm = _attach(name, attachments)
    int_view = _np.ndarray((int_capacity,), dtype=_np.int64, buffer=shm.buf)
    ints = 4 * n_ops + 2 * n_tasks + 2 * n_pools + n_entries
    floats = 4 * n_ops + 6 * n_tasks + 4 * n_entries
    float_view = _np.ndarray(
        (floats,), dtype=_np.float64, buffer=shm.buf, offset=8 * int_capacity
    )
    cursor = 0
    op_ints = int_view[cursor : cursor + 4 * n_ops].reshape(n_ops, 4)
    cursor += 4 * n_ops
    task_ints = int_view[cursor : cursor + 2 * n_tasks].reshape(n_tasks, 2)
    cursor += 2 * n_tasks
    pool_ints = int_view[cursor : cursor + 2 * n_pools].reshape(n_pools, 2)
    cursor += 2 * n_pools
    member_ints = int_view[cursor : cursor + n_entries]
    cursor = 0
    op_floats = float_view[cursor : cursor + 4 * n_ops].reshape(n_ops, 4)
    cursor += 4 * n_ops
    task_floats = float_view[cursor : cursor + 6 * n_tasks].reshape(n_tasks, 6)
    cursor += 6 * n_tasks
    member_floats = float_view[cursor : cursor + 4 * n_entries].reshape(n_entries, 4)

    ops = []
    for row in range(n_ops):
        tag, a, b, c = (int(value) for value in op_ints[row])
        if tag == 0:
            s_x, s_y, e_x, e_y = (float(value) for value in op_floats[row])
            ops.append(("i", a, b, s_x, s_y, e_x, e_y, c))
        elif tag == 1:
            ops.append(("d", a, b))
        else:
            ops.append(("r", a, b, c))
    tasks = [
        (
            int(task_ints[row, 0]),
            int(task_ints[row, 1]),
            float(task_floats[row, 0]),
            float(task_floats[row, 1]),
            float(task_floats[row, 2]),
            float(task_floats[row, 3]),
            float(task_floats[row, 4]),
            float(task_floats[row, 5]),
        )
        for row in range(n_tasks)
    ]
    overlap_tasks = []
    entry = 0
    for row in range(n_pools):
        pool_index, member_count = int(pool_ints[row, 0]), int(pool_ints[row, 1])
        members = [
            (
                int(member_ints[entry + offset]),
                float(member_floats[entry + offset, 0]),
                float(member_floats[entry + offset, 1]),
                float(member_floats[entry + offset, 2]),
                float(member_floats[entry + offset, 3]),
            )
            for offset in range(member_count)
        ]
        entry += member_count
        overlap_tasks.append((pool_index, members))
    return ops, tasks, overlap_tasks


def close_attachments(attachments: Dict[str, object]) -> None:
    """Worker-side cleanup on shutdown."""
    for shm in attachments.values():
        try:
            shm.close()
        except OSError:  # pragma: no cover - defensive
            pass
    attachments.clear()
