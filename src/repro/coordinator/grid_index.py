"""Lightweight grid index over motion-path endpoints (paper Section 5.1).

The space is partitioned into a fixed number of square cells.  For every
stored motion path both endpoints are indexed: each cell keeps, per endpoint
that falls inside it, the path id and the coordinates of the *other* endpoint,
organised in a hash table for constant-time insertion and deletion.

Query operations mirror what SinglePath needs:

* :meth:`paths_from_into` — motion paths that start at a given vertex and end
  inside a query rectangle (Case 1 candidates);
* :meth:`end_vertices_in` — distinct end vertices of stored paths inside a
  query rectangle together with the ids of the paths terminating there
  (Case 2 candidates).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.core.errors import ConfigurationError, CoordinatorError
from repro.core.geometry import Point, Rectangle
from repro.core.motion_path import MotionPath, MotionPathRecord

__all__ = ["GridConfig", "GridIndex"]


@dataclass(frozen=True)
class GridConfig:
    """Extent and resolution of the grid index.

    ``bounds`` is the rectangle covering the monitored area; points outside it
    are clamped into the border cells so that objects briefly straying outside
    the nominal area are still indexed.  ``cells_per_axis`` controls the grid
    resolution.
    """

    bounds: Rectangle
    cells_per_axis: int = 64

    def __post_init__(self) -> None:
        if self.cells_per_axis <= 0:
            raise ConfigurationError(
                f"cells_per_axis must be positive, got {self.cells_per_axis}"
            )
        if self.bounds.width <= 0 or self.bounds.height <= 0:
            raise ConfigurationError("grid bounds must have positive area")


class GridIndex:
    """Grid-based index of motion-path endpoints keyed by path id."""

    def __init__(self, config: GridConfig) -> None:
        self.config = config
        self._cell_width = config.bounds.width / config.cells_per_axis
        self._cell_height = config.bounds.height / config.cells_per_axis
        # cell -> {path_id -> (indexed endpoint, other endpoint, is_start)}
        self._cells: Dict[Tuple[int, int], Dict[int, Tuple[Point, Point, bool]]] = {}
        # path_id -> record, for direct lookups and deletion.
        self._records: Dict[int, MotionPathRecord] = {}
        self._next_path_id = 0

    # -- bookkeeping -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, path_id: int) -> bool:
        return path_id in self._records

    @property
    def records(self) -> Iterable[MotionPathRecord]:
        """All stored motion-path records (unspecified order)."""
        return self._records.values()

    def get(self, path_id: int) -> MotionPathRecord:
        """Return the record for ``path_id``; raises if absent."""
        try:
            return self._records[path_id]
        except KeyError:
            raise CoordinatorError(f"motion path {path_id} is not in the index") from None

    # -- insertion / deletion -------------------------------------------------------

    def insert(self, path: MotionPath, created_at: int = 0) -> MotionPathRecord:
        """Insert a new motion path and return its record (with a fresh id)."""
        record = MotionPathRecord(self._next_path_id, path, created_at)
        self._next_path_id += 1
        self._records[record.path_id] = record
        self._cell_entry(path.start)[record.path_id] = (path.start, path.end, True)
        self._cell_entry(path.end)[record.path_id] = (path.end, path.start, False)
        return record

    def delete(self, path_id: int) -> None:
        """Remove a motion path from the index (e.g. when its hotness expires)."""
        record = self.get(path_id)
        for endpoint in (record.path.start, record.path.end):
            cell = self._cells.get(self._cell_of(endpoint))
            if cell is not None:
                cell.pop(path_id, None)
                if not cell:
                    del self._cells[self._cell_of(endpoint)]
        del self._records[path_id]

    # -- queries ----------------------------------------------------------------------

    def paths_from_into(self, start: Point, region: Rectangle) -> List[MotionPathRecord]:
        """Motion paths starting at ``start`` whose end vertex lies inside ``region``.

        ``start`` must match the stored start vertex exactly: the covering-set
        chaining guarantees that a reporting object's SSA start coincides with
        the endpoint the coordinator previously assigned to it.
        """
        results: List[MotionPathRecord] = []
        for path_id, (endpoint, _other, is_start) in self._entries_in(region):
            if is_start:
                continue
            record = self._records[path_id]
            if record.path.start == start and region.contains_point(record.path.end):
                results.append(record)
        return results

    def end_vertices_in(self, region: Rectangle) -> Dict[Point, List[int]]:
        """Distinct end vertices inside ``region`` mapped to the ids of paths ending there."""
        vertices: Dict[Point, List[int]] = {}
        for path_id, (endpoint, _other, is_start) in self._entries_in(region):
            if is_start:
                continue
            if region.contains_point(endpoint):
                vertices.setdefault(endpoint, []).append(path_id)
        return vertices

    def paths_intersecting(self, region: Rectangle) -> List[MotionPathRecord]:
        """Motion paths with at least one endpoint inside ``region``.

        Used by the DP baseline and by analyses; SinglePath itself relies on
        the more specific queries above.
        """
        seen: Set[int] = set()
        results: List[MotionPathRecord] = []
        for path_id, (endpoint, _other, _is_start) in self._entries_in(region):
            if path_id in seen:
                continue
            if region.contains_point(endpoint):
                seen.add(path_id)
                results.append(self._records[path_id])
        return results

    # -- cell arithmetic ------------------------------------------------------------------

    def _cell_of(self, point: Point) -> Tuple[int, int]:
        bounds = self.config.bounds
        col = int((point.x - bounds.low.x) / self._cell_width)
        row = int((point.y - bounds.low.y) / self._cell_height)
        last = self.config.cells_per_axis - 1
        return (min(max(col, 0), last), min(max(row, 0), last))

    def _cell_entry(self, point: Point) -> Dict[int, Tuple[Point, Point, bool]]:
        return self._cells.setdefault(self._cell_of(point), {})

    def _cells_overlapping(self, region: Rectangle) -> Iterator[Tuple[int, int]]:
        low_col, low_row = self._cell_of(region.low)
        high_col, high_row = self._cell_of(region.high)
        for col in range(low_col, high_col + 1):
            for row in range(low_row, high_row + 1):
                yield (col, row)

    def _entries_in(self, region: Rectangle) -> Iterator[Tuple[int, Tuple[Point, Point, bool]]]:
        for cell_key in self._cells_overlapping(region):
            cell = self._cells.get(cell_key)
            if not cell:
                continue
            for path_id, entry in cell.items():
                yield path_id, entry

    # -- diagnostics --------------------------------------------------------------------------

    def cell_statistics(self) -> Dict[str, float]:
        """Occupancy statistics of the grid, useful for the resolution ablation."""
        occupied = [len(cell) for cell in self._cells.values()]
        total_cells = self.config.cells_per_axis ** 2
        if not occupied:
            return {
                "occupied_cells": 0,
                "total_cells": total_cells,
                "max_entries_per_cell": 0,
                "mean_entries_per_occupied_cell": 0.0,
            }
        return {
            "occupied_cells": len(occupied),
            "total_cells": total_cells,
            "max_entries_per_cell": max(occupied),
            "mean_entries_per_occupied_cell": sum(occupied) / len(occupied),
        }
