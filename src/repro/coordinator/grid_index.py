"""Lightweight grid index over motion-path endpoints (paper Section 5.1).

The space is partitioned into a fixed number of square cells.  For every
stored motion path both endpoints are indexed: each cell keeps one entry per
endpoint that falls inside it, keyed by ``(path_id, is_start)`` and carrying
the coordinates of the endpoint itself plus the *other* endpoint, organised in
a hash table for constant-time insertion and deletion.  Keying by the full
``(path_id, is_start)`` pair (rather than the path id alone) matters when both
endpoints of a path land in the same cell — e.g. short paths, or endpoints
clamped into the same border cell — since each endpoint must keep its own
entry.

Query operations mirror what SinglePath needs:

* :meth:`paths_starting_at` — motion paths that start at a given vertex and
  end inside a query rectangle, answered from the single cell containing the
  start vertex (Case 1 candidates);
* :meth:`paths_from_into` — the same result set, answered by scanning the end
  entries inside the query rectangle instead;
* :meth:`end_vertices_in` — distinct end vertices of stored paths inside a
  query rectangle together with the ids of the paths terminating there
  (Case 2 candidates).

For sharded deployments (see :mod:`repro.coordinator.sharding`) the record
store and the endpoint entries can be decoupled: a shard indexes only the
endpoints it owns via :meth:`add_entry` / :meth:`remove_entry`, registers only
the records it owns via :meth:`register`, and resolves foreign records through
the optional ``record_resolver`` callback.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.core.errors import ConfigurationError, CoordinatorError
from repro.core.geometry import Point, Rectangle
from repro.core.motion_path import MotionPath, MotionPathRecord
from repro.coordinator.columnar import ColumnarCellStore, resolve_kernel

__all__ = ["GridConfig", "GridIndex"]

#: One indexed endpoint: ``(path_id, is_start) -> (indexed endpoint, other endpoint)``.
EntryKey = Tuple[int, bool]
Entry = Tuple[Point, Point]


@dataclass(frozen=True)
class GridConfig:
    """Extent and resolution of the grid index.

    ``bounds`` is the rectangle covering the monitored area; points outside it
    are clamped into the border cells so that objects briefly straying outside
    the nominal area are still indexed.  ``cells_per_axis`` controls the grid
    resolution.
    """

    bounds: Rectangle
    cells_per_axis: int = 64

    def __post_init__(self) -> None:
        if self.cells_per_axis <= 0:
            raise ConfigurationError(
                f"cells_per_axis must be positive, got {self.cells_per_axis}"
            )
        if self.bounds.width <= 0 or self.bounds.height <= 0:
            raise ConfigurationError("grid bounds must have positive area")


class GridIndex:
    """Grid-based index of motion-path endpoints keyed by path id."""

    def __init__(
        self,
        config: GridConfig,
        record_resolver: Optional[Callable[[int], Optional[MotionPathRecord]]] = None,
        kernel: str = "object",
    ) -> None:
        self.config = config
        self._cell_width = config.bounds.width / config.cells_per_axis
        self._cell_height = config.bounds.height / config.cells_per_axis
        # ``object`` keeps entries in per-cell dicts (the scalar reference);
        # ``columnar`` keeps them in per-cell SoA blocks and answers the
        # queries below with vectorized kernels — bit-for-bit equal (see
        # :mod:`repro.coordinator.columnar`).  The default stays ``object``
        # at this layer: the coordinator config flips it fleet-wide.
        self.kernel = resolve_kernel(kernel)
        # cell -> {(path_id, is_start) -> (indexed endpoint, other endpoint)}
        self._cells: Dict[Tuple[int, int], Dict[EntryKey, Entry]] = {}
        self._columnar: Optional[ColumnarCellStore] = (
            ColumnarCellStore() if self.kernel == "columnar" else None
        )
        # path_id -> record, for direct lookups and deletion.
        self._records: Dict[int, MotionPathRecord] = {}
        self._next_path_id = 0
        self._record_resolver = record_resolver

    # -- bookkeeping -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, path_id: int) -> bool:
        return path_id in self._records

    @property
    def records(self) -> Iterable[MotionPathRecord]:
        """All stored motion-path records (unspecified order)."""
        return self._records.values()

    def get(self, path_id: int) -> MotionPathRecord:
        """Return the record for ``path_id``; raises if absent."""
        try:
            return self._records[path_id]
        except KeyError:
            raise CoordinatorError(f"motion path {path_id} is not in the index") from None

    def _record_of(self, path_id: int) -> MotionPathRecord:
        """Resolve a record, falling back to the foreign-record resolver."""
        record = self._records.get(path_id)
        if record is None and self._record_resolver is not None:
            record = self._record_resolver(path_id)
        if record is None:
            raise CoordinatorError(f"motion path {path_id} is not in the index")
        return record

    # -- insertion / deletion -------------------------------------------------------

    def insert(self, path: MotionPath, created_at: int = 0) -> MotionPathRecord:
        """Insert a new motion path and return its record (with a fresh id)."""
        record = MotionPathRecord(self._next_path_id, path, created_at)
        self._next_path_id += 1
        self.register(record)
        self.add_entry(record, is_start=True)
        self.add_entry(record, is_start=False)
        return record

    def delete(self, path_id: int) -> None:
        """Remove a motion path from the index (e.g. when its hotness expires)."""
        record = self.get(path_id)
        self.remove_entry(path_id, record.path.start, is_start=True)
        self.remove_entry(path_id, record.path.end, is_start=False)
        self.unregister(path_id)

    # -- entry-level primitives (used directly by the sharded router) ---------------

    def register(self, record: MotionPathRecord) -> None:
        """Store a record in the record table without indexing its endpoints."""
        self._records[record.path_id] = record

    def unregister(self, path_id: int) -> None:
        """Drop a record from the record table (its entries must be gone already)."""
        del self._records[path_id]

    def add_entry(self, record: MotionPathRecord, is_start: bool) -> None:
        """Index one endpoint of ``record`` in the cell that contains it."""
        if is_start:
            endpoint, other = record.path.start, record.path.end
        else:
            endpoint, other = record.path.end, record.path.start
        if self._columnar is not None:
            self._columnar.upsert(
                self._cell_of(endpoint), (record.path_id, is_start), endpoint, other
            )
            return
        self._cells.setdefault(self._cell_of(endpoint), {})[
            (record.path_id, is_start)
        ] = (endpoint, other)

    def remove_entry(self, path_id: int, endpoint: Point, is_start: bool) -> None:
        """Remove one endpoint entry, dropping its cell when it becomes empty."""
        key = self._cell_of(endpoint)
        if self._columnar is not None:
            self._columnar.remove(key, (path_id, is_start))
            return
        cell = self._cells.get(key)
        if cell is not None:
            cell.pop((path_id, is_start), None)
            if not cell:
                del self._cells[key]

    # -- queries ----------------------------------------------------------------------

    def paths_starting_at(self, start: Point, region: Rectangle) -> List[MotionPathRecord]:
        """Motion paths starting exactly at ``start`` whose end lies inside ``region``.

        Answered from the single cell containing ``start``, so the cost is
        independent of the query rectangle's size — this is the hot-loop form
        of the Case 1 candidate query.
        """
        if self._columnar is not None:
            block = self._columnar.blocks.get(self._cell_of(start))
            if block is None:
                return []
            return [self._record_of(pid) for pid in block.start_matches(start, region)]
        cell = self._cells.get(self._cell_of(start))
        results: List[MotionPathRecord] = []
        if cell:
            for (path_id, is_start), (endpoint, other) in cell.items():
                if is_start and endpoint == start and region.contains_point(other):
                    results.append(self._record_of(path_id))
        return results

    def paths_from_into(self, start: Point, region: Rectangle) -> List[MotionPathRecord]:
        """Motion paths starting at ``start`` whose end vertex lies inside ``region``.

        ``start`` must match the stored start vertex exactly: the covering-set
        chaining guarantees that a reporting object's SSA start coincides with
        the endpoint the coordinator previously assigned to it.
        """
        if self._columnar is not None:
            results = []
            for cell_key in self._cells_overlapping(region):
                block = self._columnar.blocks.get(cell_key)
                if block is not None:
                    results.extend(
                        self._record_of(pid)
                        for pid in block.from_into_matches(start, region)
                    )
            return results
        results: List[MotionPathRecord] = []
        for (path_id, is_start), (endpoint, other) in self._entries_in(region):
            if is_start:
                continue
            if other == start and region.contains_point(endpoint):
                results.append(self._record_of(path_id))
        return results

    def end_vertices_in(self, region: Rectangle) -> Dict[Point, List[int]]:
        """Distinct end vertices inside ``region`` mapped to the ids of paths ending there."""
        vertices: Dict[Point, List[int]] = {}
        if self._columnar is not None:
            for cell_key in self._cells_overlapping(region):
                block = self._columnar.blocks.get(cell_key)
                if block is None:
                    continue
                pids, xs, ys = block.end_rows_in(region)
                for pid, x, y in zip(pids, xs, ys):
                    vertices.setdefault(Point(float(x), float(y)), []).append(int(pid))
            return vertices
        for (path_id, is_start), (endpoint, _other) in self._entries_in(region):
            if is_start:
                continue
            if region.contains_point(endpoint):
                vertices.setdefault(endpoint, []).append(path_id)
        return vertices

    def paths_intersecting(self, region: Rectangle) -> List[MotionPathRecord]:
        """Motion paths with at least one endpoint inside ``region``.

        Used by the DP baseline and by analyses; SinglePath itself relies on
        the more specific queries above.
        """
        seen: Set[int] = set()
        results: List[MotionPathRecord] = []
        if self._columnar is not None:
            for cell_key in self._cells_overlapping(region):
                block = self._columnar.blocks.get(cell_key)
                if block is None:
                    continue
                for pid in block.endpoints_in(region):
                    path_id = int(pid)
                    if path_id not in seen:
                        seen.add(path_id)
                        results.append(self._record_of(path_id))
            return results
        for (path_id, _is_start), (endpoint, _other) in self._entries_in(region):
            if path_id in seen:
                continue
            if region.contains_point(endpoint):
                seen.add(path_id)
                results.append(self._record_of(path_id))
        return results

    # -- cell arithmetic ------------------------------------------------------------------

    def _cell_of(self, point: Point) -> Tuple[int, int]:
        bounds = self.config.bounds
        col = int((point.x - bounds.low.x) / self._cell_width)
        row = int((point.y - bounds.low.y) / self._cell_height)
        last = self.config.cells_per_axis - 1
        return (min(max(col, 0), last), min(max(row, 0), last))

    def _cells_overlapping(self, region: Rectangle) -> Iterator[Tuple[int, int]]:
        low_col, low_row = self._cell_of(region.low)
        high_col, high_row = self._cell_of(region.high)
        for col in range(low_col, high_col + 1):
            for row in range(low_row, high_row + 1):
                yield (col, row)

    def _entries_in(self, region: Rectangle) -> Iterator[Tuple[EntryKey, Entry]]:
        for cell_key in self._cells_overlapping(region):
            cell = self._cells.get(cell_key)
            if not cell:
                continue
            for entry_key, entry in cell.items():
                yield entry_key, entry

    # -- diagnostics --------------------------------------------------------------------------

    def cell_statistics(self) -> Dict[str, float]:
        """Occupancy statistics of the grid, useful for the resolution ablation."""
        if self._columnar is not None:
            occupied = self._columnar.occupancy()
        else:
            occupied = [len(cell) for cell in self._cells.values()]
        total_cells = self.config.cells_per_axis ** 2
        if not occupied:
            return {
                "occupied_cells": 0,
                "total_cells": total_cells,
                "max_entries_per_cell": 0,
                "mean_entries_per_occupied_cell": 0.0,
            }
        return {
            "occupied_cells": len(occupied),
            "total_cells": total_cells,
            "max_entries_per_cell": max(occupied),
            "mean_entries_per_occupied_cell": sum(occupied) / len(occupied),
        }
