"""Coordinator facade: message intake, epoch processing and top-k reporting.

The coordinator owns the three structures of Section 5 — the grid index over
motion-path endpoints, the hotness tracker with its expiry event queue and the
SinglePath strategy — and exposes the small protocol surface the simulation
engine (or a real deployment) needs:

* :meth:`submit_state` — accept a state message from a client at any time;
* :meth:`run_epoch` — at an epoch boundary, expire stale crossings, run
  SinglePath over the accumulated batch and return the per-object responses;
* :meth:`top_k` / :meth:`hot_paths` — query the currently hot motion paths.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.errors import ConfigurationError
from repro.core.geometry import Rectangle
from repro.core.motion_path import MotionPathRecord
from repro.core.scoring import ScoredPath, select_top_k, top_k_score
from repro.client.state import CoordinatorResponse, ObjectState
from repro.coordinator.columnar import KERNELS, resolve_kernel
from repro.coordinator.delta import EPOCH_MODES, EpochDelta
from repro.coordinator.execution import BACKEND_NAMES
from repro.coordinator.overlaps import OverlapPoolCache
from repro.coordinator.grid_index import GridConfig, GridIndex
from repro.coordinator.hotness import HotnessTracker
from repro.coordinator.sharding import ELASTIC_MODES, PARTITION_KINDS, ShardRouter
from repro.coordinator.single_path import SinglePathStrategy
from repro.coordinator.stitching import (
    STITCHING_MODES,
    CompositeCorridor,
    IncrementalStitcher,
    select_top_k_corridors,
    stitch_paths,
)

__all__ = ["CoordinatorConfig", "EpochOutcome", "Coordinator"]


@dataclass(frozen=True)
class CoordinatorConfig:
    """Configuration of the coordinator.

    ``window`` is the sliding-window length ``W`` in time units; ``bounds`` is
    the monitored area used to size the grid index; ``cells_per_axis`` sets the
    grid resolution.  ``num_shards`` partitions the area into an R x C shard
    grid (see :mod:`repro.coordinator.sharding`); the default of 1 keeps the
    single-shard structures of the paper.  ``backend`` selects how a sharded
    fleet executes its epoch pipeline — ``serial``, ``threads`` or
    ``processes`` (see :mod:`repro.coordinator.execution`); every backend is
    bit-for-bit equivalent.  ``overlap_halo`` sizes the halo of the
    shard-local FSA overlap structures: ``None`` (the default) is the
    adaptive exact halo, still bit-for-bit with the seed coordinator (as
    long as the overlap-region cap is not saturated — see
    :mod:`repro.coordinator.sharding`); an
    integer ``h >= 0`` fixes the halo at ``h`` rings of neighbouring shards,
    trading exactness for bounded halo planning (the differential harness
    quantifies the deviation).  A single-shard coordinator always runs the
    paper's inline strategy and ignores the backend and the halo.

    ``partition`` selects the fleet's spatial partition layer
    (:mod:`repro.coordinator.partition`): ``uniform`` (the default) is the
    fixed R x C shard grid; ``kd`` is the load-adaptive kd-split partition —
    fitted to endpoint density and *rebalanced* at epoch boundaries whenever
    the per-shard record-load imbalance (``max / mean``) exceeds
    ``rebalance_threshold``, migrating every shard's state (index entries,
    hotness, boundary ledgers, worker replicas) onto the new splits.  Both
    partitions — rebalancing included — stay bit-for-bit equivalent to the
    seed coordinator: the partition decides *where* state lives, never what
    the algorithm answers.

    ``stitching`` controls the corridor report
    (:meth:`Coordinator.hot_corridors`): ``exact`` (the default) chains hot
    paths welded end-to-start into composite corridors across shard
    boundaries — bit-for-bit equal to a global stitch of the seed
    coordinator's hot paths; ``off`` cuts corridors at shard boundaries
    (quantified by the differential harness).  The report is maintained at
    epoch granularity: each ``run_epoch`` commit invalidates it, and the
    first corridor query afterwards runs the stitching merge once and
    caches it until the next epoch — epochs that nobody asks corridors of
    never pay for stitching.  A single-shard coordinator has no boundaries,
    so both modes produce the full global stitch.

    ``epoch_mode`` selects the incremental epoch pipeline
    (:mod:`repro.coordinator.delta`): ``delta`` (the default) makes per-epoch
    cost proportional to what changed — unchanged halo overlap pools are
    reused across epochs, corridor chains are maintained incrementally under
    insert/expire/weld events, only dirtied pools are shipped to
    process-backend workers, and every :class:`EpochOutcome` carries the
    epoch's :class:`~repro.coordinator.delta.EpochDelta`; ``full`` rebuilds
    everything each epoch (the pre-incremental pipeline).  The two modes are
    required to be bit-for-bit equal on every observable — responses, index,
    hotness, overlap answers, corridor report — which the differential
    harnesses enforce per epoch.

    ``kernel`` selects the geometry kernel of the hot path
    (:mod:`repro.coordinator.columnar`): ``columnar`` (the default) answers
    the grid-index candidate scans and overlap-region queries from
    vectorized numpy SoA tables and moves the process backend's epoch
    shipments onto shared memory; ``object`` is the scalar per-object
    reference, kept as the pinned bit-for-bit baseline exactly like
    ``epoch_mode="full"``.  Without numpy, ``columnar`` silently degrades
    to the scalar kernel (same answers, scalar speed).

    ``elastic`` turns the fleet's shard *count* into a managed resource
    (:mod:`repro.coordinator.sharding`): ``off`` (the default) keeps the
    pre-elastic behaviour — the count is fixed at ``num_shards`` and only
    kd refits may migrate; ``auto`` lets the router's cost model split hot
    shards, merge cold neighbours and refit, keeping the count between
    ``min_shards`` (default 1) and ``max_shards`` (default uncapped).
    ``migration_budget`` bounds how many records any one rebalance migrates
    per epoch boundary: 0 (the default) migrates stop-the-world; ``N > 0``
    warms at most ``N`` records per boundary onto the incoming fleet while
    the outgoing fleet stays fully authoritative, handing off only once
    every record is warm.  Elastic decisions consume only
    stream-deterministic signals, so every elastic run remains bit-for-bit
    equal to the seed coordinator.
    """

    bounds: Rectangle
    window: int = 100
    cells_per_axis: int = 64
    num_shards: int = 1
    backend: str = "serial"
    overlap_halo: Optional[int] = None
    stitching: str = "exact"
    partition: str = "uniform"
    rebalance_threshold: float = 2.0
    epoch_mode: str = "delta"
    kernel: str = "columnar"
    elastic: str = "off"
    migration_budget: int = 0
    min_shards: Optional[int] = None
    max_shards: Optional[int] = None

    def __post_init__(self) -> None:
        if self.window <= 0:
            raise ConfigurationError(f"window must be positive, got {self.window}")
        if self.num_shards <= 0:
            raise ConfigurationError(f"num_shards must be positive, got {self.num_shards}")
        if self.partition not in PARTITION_KINDS:
            raise ConfigurationError(
                f"partition must be one of {', '.join(PARTITION_KINDS)}, got {self.partition!r}"
            )
        if self.rebalance_threshold <= 1.0:
            raise ConfigurationError(
                "rebalance_threshold must exceed 1.0 (max/mean shard load), "
                f"got {self.rebalance_threshold}"
            )
        if self.backend not in BACKEND_NAMES:
            raise ConfigurationError(
                f"backend must be one of {', '.join(BACKEND_NAMES)}, got {self.backend!r}"
            )
        if self.overlap_halo is not None and self.overlap_halo < 0:
            raise ConfigurationError(
                f"overlap_halo must be None (adaptive) or >= 0, got {self.overlap_halo}"
            )
        if self.stitching not in STITCHING_MODES:
            raise ConfigurationError(
                f"stitching must be one of {', '.join(STITCHING_MODES)}, got {self.stitching!r}"
            )
        if self.epoch_mode not in EPOCH_MODES:
            raise ConfigurationError(
                f"epoch_mode must be one of {', '.join(EPOCH_MODES)}, got {self.epoch_mode!r}"
            )
        if self.kernel not in KERNELS:
            raise ConfigurationError(
                f"kernel must be one of {', '.join(KERNELS)}, got {self.kernel!r}"
            )
        if self.elastic not in ELASTIC_MODES:
            raise ConfigurationError(
                f"elastic must be one of {', '.join(ELASTIC_MODES)}, got {self.elastic!r}"
            )
        if self.migration_budget < 0:
            raise ConfigurationError(
                f"migration_budget must be >= 0, got {self.migration_budget}"
            )
        if self.min_shards is not None and self.min_shards < 1:
            raise ConfigurationError(
                f"min_shards must be at least 1, got {self.min_shards}"
            )
        if self.max_shards is not None and self.max_shards < (self.min_shards or 1):
            raise ConfigurationError(
                f"max_shards must be >= min_shards, got {self.max_shards}"
            )


@dataclass
class EpochOutcome:
    """Result of processing one epoch at the coordinator."""

    timestamp: int
    responses: List[CoordinatorResponse] = field(default_factory=list)
    states_processed: int = 0
    paths_inserted: int = 0
    paths_reused: int = 0
    paths_expired: int = 0
    #: Whether the epoch boundary triggered a shard-partition rebalance
    #: (kd partitions only; never changes any other field of the outcome).
    rebalanced: bool = False
    processing_seconds: float = 0.0
    #: The epoch's first-class change record (``epoch_mode="delta"`` only;
    #: ``None`` in full mode).  Purely observational — no pipeline stage's
    #: correctness depends on it.
    delta: Optional[EpochDelta] = None


class Coordinator:
    """Central coordinator maintaining hot motion paths over a sliding window."""

    def __init__(self, config: CoordinatorConfig) -> None:
        self.config = config
        kernel = resolve_kernel(config.kernel)
        if config.num_shards == 1:
            self.router = None
            self.index = GridIndex(
                GridConfig(config.bounds, config.cells_per_axis), kernel=kernel
            )
            self.hotness = HotnessTracker(config.window)
            # Delta mode runs the single "pool" (the epoch's full FSA map)
            # through the same cross-epoch cache protocol the sharded router
            # uses, so the pools_* delta counters mean the same thing at
            # every fleet size.
            self._pool_cache: Optional[OverlapPoolCache] = (
                OverlapPoolCache(kernel=kernel)
                if config.epoch_mode == "delta"
                else None
            )
            self.strategy = SinglePathStrategy(
                self.index, self.hotness, kernel=kernel, pool_cache=self._pool_cache
            )
            if config.epoch_mode == "delta":
                self.hotness.enable_delta_log()
                self._stitcher: Optional[IncrementalStitcher] = IncrementalStitcher()
            else:
                self._stitcher = None
        else:
            # The router views expose the exact GridIndex / HotnessTracker /
            # SinglePathStrategy interfaces, so the epoch loop below is the
            # same code whether the state lives in one shard or a fleet.
            self.router = ShardRouter(
                config.bounds,
                config.window,
                config.cells_per_axis,
                config.num_shards,
                backend=config.backend,
                overlap_halo=config.overlap_halo,
                stitching=config.stitching,
                partition=config.partition,
                rebalance_threshold=config.rebalance_threshold,
                epoch_mode=config.epoch_mode,
                kernel=kernel,
                elastic=config.elastic,
                migration_budget=config.migration_budget,
                min_shards=config.min_shards,
                max_shards=config.max_shards,
            )
            self.index = self.router.index
            self.hotness = self.router.hotness
            self.strategy = self.router.pipeline
            self._pool_cache = None  # the router owns the pool cache
            self._stitcher = None  # the router owns the incremental stitcher
        self._pending_states: List[ObjectState] = []
        self._corridor_cache: Optional[List[CompositeCorridor]] = None
        # Rebalance count the cached corridor report was computed at: a
        # manual ShardRouter.rebalance() between epochs redraws the shard
        # boundaries the 'off'-mode report truncates at, so the cache must
        # not outlive the partition it was stitched against.
        self._corridor_cache_rebalances = 0
        self._epochs_processed = 0
        self._total_processing_seconds = 0.0

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        """Release the execution backend's worker pool, if any.

        Queries (``top_k``, ``hot_paths`` …) remain valid after closing; a
        subsequent ``run_epoch`` lazily revives the pool.
        """
        if self.router is not None:
            self.router.pipeline.close()

    # -- intake ---------------------------------------------------------------

    def submit_state(self, state: ObjectState) -> None:
        """Queue a state message for processing at the next epoch."""
        self._pending_states.append(state)

    @property
    def pending_states(self) -> int:
        return len(self._pending_states)

    # -- epoch processing -----------------------------------------------------------

    def run_epoch(self, now: int) -> EpochOutcome:
        """Process all queued state messages and expire stale crossings.

        ``now`` is the current timestamp (the epoch boundary).  Returns the
        responses to deliver to the reporting objects along with bookkeeping
        counters used by the evaluation harness.
        """
        started = time.perf_counter()
        outcome = EpochOutcome(timestamp=now)
        self._corridor_cache = None

        expired = self.hotness.advance_time(now)
        deleted: List[int] = []
        for path_id in expired:
            if path_id in self.index:
                self.index.delete(path_id)
                deleted.append(path_id)
        outcome.paths_expired = len(expired)

        states, self._pending_states = self._pending_states, []
        outcome.states_processed = len(states)
        epoch_result = self.strategy.process_epoch(states)
        outcome.responses = epoch_result.responses
        outcome.paths_inserted = epoch_result.paths_inserted
        outcome.paths_reused = epoch_result.paths_reused

        # Epoch-boundary rebalance check: a kd fleet whose record load drifted
        # past the imbalance threshold refits its partition and migrates here,
        # between epochs — behaviour-invisible (state moves, answers don't).
        if self.router is not None:
            outcome.rebalanced = self.router.maybe_rebalance()

        if self.config.epoch_mode == "delta":
            outcome.delta = self._assemble_delta(
                now, deleted, epoch_result, outcome.rebalanced
            )

        elapsed = time.perf_counter() - started
        if self.router is not None:
            # Feed the elastic cost model's *diagnostic* timing signal.  The
            # router attributes the epoch's wall-clock to shards by bucket
            # share; decisions never consume it (wall-clock is not
            # stream-deterministic), it only surfaces in shard_statistics.
            self.router.note_epoch_seconds(elapsed)
        outcome.processing_seconds = elapsed
        self._epochs_processed += 1
        self._total_processing_seconds += outcome.processing_seconds
        return outcome

    def _assemble_delta(
        self,
        now: int,
        deleted: List[int],
        epoch_result,
        rebalanced: bool,
    ) -> EpochDelta:
        """Fold the epoch's change record into a first-class :class:`EpochDelta`.

        Inserted ids come from the decisions (already renumbered to the
        serial allocation on parallel backends, so the tuple is
        backend-independent); hotness transitions are drained from the
        trackers' delta logs, with the merged categories sorted ascending —
        the deterministic encoding of the underlying event sets.
        """
        log = self.hotness.drain_delta_log()
        inserted = tuple(
            decision.path_id
            for decision in epoch_result.decisions
            if not decision.reused_existing_path
        )
        if self.router is not None:
            pool_stats = self.router.last_pool_stats
            renumbered = self.router.last_renumbered
            records_migrated = self.router.last_migration_moved
            migration_active = self.router.last_migration_active
        else:
            # The single-shard strategy runs its one pool per epoch through
            # the same cache protocol as the sharded pipeline, so its
            # counters slot straight in (serial commits never renumber).
            pool_stats = self.strategy.last_pool_stats
            renumbered = 0
            records_migrated = 0
            migration_active = False
        return EpochDelta(
            timestamp=now,
            inserted=inserted,
            deleted=tuple(sorted(deleted)),
            newly_hot=tuple(sorted(log.newly_hot)),
            touched=tuple(sorted(log.touched)),
            decayed=tuple(sorted(log.decayed)),
            vanished=tuple(sorted(log.vanished)),
            renumbered=renumbered,
            pools_total=pool_stats["pools_total"],
            pools_reused=pool_stats["pools_reused"],
            pools_prefix_reused=pool_stats["pools_prefix_reused"],
            pools_rebuilt=pool_stats["pools_rebuilt"],
            rebalanced=rebalanced,
            records_migrated=records_migrated,
            migration_active=migration_active,
        )

    # -- queries ---------------------------------------------------------------------

    def index_size(self) -> int:
        """Number of motion paths currently stored in the grid index."""
        return len(self.index)

    def shard_statistics(self) -> Dict[str, float]:
        """Load-balance diagnostics; a single-shard coordinator reports one shard."""
        if self.router is not None:
            return self.router.shard_statistics()
        # The single-shard fallback reports the exact schema (and types) of
        # the sharded path: record counts are ints with a float mean, and
        # the delta counters carry the pool cache's and the stitcher's live
        # lifetime totals — the same semantics a 1-shard fleet reports, not
        # hardcoded zeros (pinned by tests/test_rebalancing.py).
        size = len(self.index)
        statistics = {
            "num_shards": 1,
            "total_records": size,
            "max_shard_records": size,
            "min_shard_records": size,
            "mean_shard_records": float(size),
            "imbalance": 1.0,
            "straddling_paths": 0,
            "rebalances": 0,
            "elastic_migrations": 0,
            "records_migrated": 0,
            "migration_active": 0.0,
            "max_shard_epoch_seconds": 0.0,
            "mean_shard_epoch_seconds": 0.0,
            "pools_total": 0,
            "pools_reused": 0,
            "pools_prefix_reused": 0,
            "pools_rebuilt": 0,
            "chains_rewelded": 0,
            "chains_reused": 0,
            "fragments_added": 0,
            "fragments_removed": 0,
            "expiry_coalesced": 0,
            "corridors_patched": 0,
            "corridors_reused": 0,
        }
        if self._pool_cache is not None:
            statistics["pools_reused"] = self._pool_cache.reused
            statistics["pools_prefix_reused"] = self._pool_cache.prefix_reused
            statistics["pools_rebuilt"] = self._pool_cache.rebuilt
            statistics["pools_total"] = (
                self._pool_cache.reused
                + self._pool_cache.prefix_reused
                + self._pool_cache.rebuilt
            )
        if self._stitcher is not None:
            statistics.update(self._stitcher.totals)
        return statistics

    def hot_paths(self) -> List[Tuple[MotionPathRecord, int]]:
        """All stored paths with non-zero hotness, as ``(record, hotness)`` pairs."""
        results: List[Tuple[MotionPathRecord, int]] = []
        for path_id, hotness in self.hotness.items():
            if path_id in self.index:
                results.append((self.index.get(path_id), hotness))
        return results

    def top_k(self, k: int, by_score: bool = False) -> List[ScoredPath]:
        """Top-k hottest motion paths (optionally ranked by score instead)."""
        return select_top_k(self.hot_paths(), k, by_score=by_score)

    def top_k_score(self, k: int) -> float:
        """Average score of the current top-k set (paper's quality metric)."""
        return top_k_score(self.top_k(k))

    def hot_corridors(self) -> List[CompositeCorridor]:
        """The current hot paths stitched into composite corridors.

        A sharded fleet runs the distributed stitching merge (per-shard weld
        passes on the execution backend; corridors cut at shard boundaries
        in ``off`` mode); a single-shard coordinator stitches its hot paths
        globally — the seed long-path report the sharded ``exact`` mode is
        required to reproduce bit for bit.  The first query after an
        epoch's commit stitches once and caches the report until the next
        epoch; mutating the index or hotness directly between epochs
        (outside ``run_epoch``) does not refresh that cache.  A partition
        rebalance *does* refresh it — in ``off`` mode corridors truncate at
        shard boundaries, and a migration moves the boundaries.
        """
        rebalances = self.router.rebalances if self.router is not None else 0
        if self._corridor_cache is None or self._corridor_cache_rebalances != rebalances:
            if self.router is not None:
                self._corridor_cache = self.router.stitch_epoch()
            elif self._stitcher is not None:
                # Single-shard delta mode: same incremental maintenance as
                # the sharded delta path, with one constant owner (no
                # boundaries, so exact == off and boundary welds are zero).
                current = {
                    path_id: (self.index.get(path_id).path, hotness)
                    for path_id, hotness in self.hotness.items()
                    if path_id in self.index
                }
                self._stitcher.sync(current)
                self._corridor_cache, _stats = self._stitcher.report(
                    "exact", lambda path_id: 0
                )
            else:
                self._corridor_cache = stitch_paths(self.hot_paths())
            self._corridor_cache_rebalances = rebalances
        return self._corridor_cache

    def top_k_corridors(self, k: int, by_score: bool = False) -> List[CompositeCorridor]:
        """Top-k composite corridors — the corridor-aware top-k merge.

        Ranked by merged hotness (or summed score with ``by_score``), with
        the same total-order tie-break style as the path top-k, so the merge
        accepts per-shard stitching output in any arrival order.
        """
        return select_top_k_corridors(self.hot_corridors(), k, by_score=by_score)

    # -- accounting ------------------------------------------------------------------------

    @property
    def epochs_processed(self) -> int:
        return self._epochs_processed

    @property
    def total_processing_seconds(self) -> float:
        return self._total_processing_seconds

    @property
    def mean_processing_seconds_per_epoch(self) -> float:
        if self._epochs_processed == 0:
            return 0.0
        return self._total_processing_seconds / self._epochs_processed
