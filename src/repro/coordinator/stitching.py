"""Cross-shard stitching of hot motion paths into composite corridors.

A hot *corridor* — a downtown artery, an evacuation route — is longer than any
single motion path: SinglePath deliberately stores short segments (each
RayTrace report contributes one path from the object's SSA start to its chosen
endpoint), so a corridor materialises in the index as a *chain* of hot paths,
each starting exactly where the previous one ends (the coordinator's response
endpoint becomes the next SSA start, so chains arise by construction).  This
module turns those chains into first-class :class:`CompositeCorridor` report
objects, both for the single-shard coordinator and — the interesting case —
for a sharded fleet, where a corridor crossing the R x C shard grid would
otherwise be reported as disjoint per-shard fragments.

**Welds.**  Stitching is driven by a purely local rule at each vertex ``v``:

    ``v`` welds path ``p`` to path ``q`` iff ``p`` is the *only* hot path
    ending at ``v``, ``q`` is the *only* hot path starting at ``v``, and
    ``p != q``.

The degree-1 restriction makes the decomposition canonical: welds are a set
function of the hot-fragment set (no greedy choices, no enumeration-order
dependence), every fragment has at most one weld-successor (its single end
vertex) and at most one weld-predecessor (its single start vertex), so chains
are simple and the corridor partition is unique.  A junction where several
hot paths meet is a genuine fork — chaining through it would have to pick a
branch, so the corridor ends there.

**Why the rule shards exactly.**  Endpoint-owner routing stores *every*
endpoint entry with the shard owning the endpoint's location, so the shard
owning ``v`` knows all hot paths starting **and** ending at ``v`` — including
the far side of boundary-straddling paths, whose end entries it holds.  Each
shard can therefore decide the welds at its own vertices from local
information alone, and the union of per-shard weld sets equals the global
weld set (each vertex has exactly one owner, so no weld is duplicated or
missed).  Chaining the union back into corridors is the per-boundary merge
pass of :meth:`repro.coordinator.sharding.ShardRouter.stitch_epoch`.

**Scoring.**  A corridor's ``hotness`` is the *minimum* member hotness (a
corridor is only as hot as its least-travelled link) and its ``score`` is the
*sum* of the member scores (``hotness_i * length_i`` — score is additive over
the chain, so stitching never inflates the quality metric).  Ranking uses the
same total-order tie-break style as :mod:`repro.coordinator.single_path`:
every comparison falls back to the lead path id, so the top-k merge is
independent of the order corridors were produced in.

Cycles (a chain that closes on itself) are broken deterministically at the
member with the smallest path id, which keeps the decomposition a pure
function of the fragment set.

This module is dependency-light on purpose: the execution backends' worker
processes import :func:`weld_runs` directly, so nothing here may import from
:mod:`repro.coordinator.sharding` or :mod:`repro.coordinator.execution`.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Sequence,
    Tuple,
)

from repro.core.errors import ConfigurationError
from repro.core.geometry import Point
from repro.core.motion_path import MotionPath, MotionPathRecord

__all__ = [
    "STITCHING_MODES",
    "CorridorSegment",
    "CompositeCorridor",
    "IncrementalStitcher",
    "StitchFragment",
    "weld_runs",
    "successors_from_runs",
    "chain_fragments",
    "split_chains_at_boundaries",
    "build_corridors",
    "stitch_paths",
    "select_top_k_corridors",
    "top_k_corridor_score",
]

#: Values accepted by the ``stitching`` knob (config layers and ``--stitching``):
#: ``off`` truncates corridors at shard boundaries (no cross-shard merge),
#: ``exact`` stitches across boundaries, bit-for-bit equal to a global stitch
#: over the seed coordinator's hot paths.
STITCHING_MODES: Tuple[str, ...] = ("off", "exact")

#: Wire format of one hot fragment shipped to a per-shard stitch task:
#: ``(path_id, start_x, start_y, end_x, end_y, owns_start, owns_end)``.
#: The boolean flags mark which of the fragment's endpoints the task's shard
#: owns — the worker decides welds only at vertices it owns, so a straddling
#: path (shipped to both endpoint owners) is counted once per vertex.
StitchFragment = Tuple[int, float, float, float, float, bool, bool]


@dataclass(frozen=True)
class CorridorSegment:
    """One hot motion path inside a composite corridor."""

    path_id: int
    path: MotionPath
    hotness: int

    @property
    def score(self) -> float:
        """The member's contribution to the corridor score: ``hotness * length``."""
        return self.hotness * self.path.length


@dataclass(frozen=True)
class CompositeCorridor:
    """A maximal chain of hot motion paths welded end-to-start.

    Every hot path belongs to exactly one corridor (a path with no welds forms
    a singleton corridor), so the corridor report is a partition of the hot
    set — nothing is dropped, only grouped.
    """

    segments: Tuple[CorridorSegment, ...]

    def __post_init__(self) -> None:
        if not self.segments:
            raise ConfigurationError("a composite corridor needs at least one segment")

    @property
    def path_ids(self) -> Tuple[int, ...]:
        return tuple(segment.path_id for segment in self.segments)

    @property
    def lead_path_id(self) -> int:
        """Id of the head segment — the deterministic tie-break key."""
        return self.segments[0].path_id

    @property
    def num_segments(self) -> int:
        return len(self.segments)

    @property
    def start(self) -> Point:
        return self.segments[0].path.start

    @property
    def end(self) -> Point:
        return self.segments[-1].path.end

    @property
    def length(self) -> float:
        """Total Euclidean length of the chain."""
        return sum(segment.path.length for segment in self.segments)

    @property
    def hotness(self) -> int:
        """Merged hotness: the corridor is only as hot as its weakest link."""
        return min(segment.hotness for segment in self.segments)

    @property
    def score(self) -> float:
        """Sum of the member scores — additive, so stitching never inflates it."""
        return sum(segment.score for segment in self.segments)

    def vertices(self) -> List[Point]:
        """The chain's polyline: start, every weld vertex, end."""
        points = [self.segments[0].path.start]
        points.extend(segment.path.end for segment in self.segments)
        return points


# ---------------------------------------------------------------------------
# Weld computation (per-shard worker pass)
# ---------------------------------------------------------------------------


def weld_runs(fragments: Sequence[StitchFragment]) -> List[List[int]]:
    """Decide the welds at a task's *owned* vertices and chain them into runs.

    ``fragments`` is one shard's stitch task: every hot fragment with at least
    one endpoint owned by the shard, with the ``owns_start`` / ``owns_end``
    flags marking which endpoints to count here.  Endpoint-owner routing
    guarantees the task is complete for every owned vertex, so the local
    degree counts equal the global ones and the welds decided here are
    exactly the global welds at these vertices.

    Returns *runs* — maximal chains ``[p1, .., pk]`` (``k >= 2``) under this
    task's welds, each consecutive pair encoding one weld.  Runs rather than
    raw pairs is the wire format the process backend ships back to the
    parent (serialized corridor chains); the merge pass re-derives the pairs
    and chains runs from different shards together.  A cycle closed entirely
    by this task's welds is serialized with its head repeated at the end
    (``[a, b, a]``), so the closing weld survives the run format — a cycle
    whose welds straddle two tasks already keeps every weld because each
    task reports its own half.  The merge re-breaks the rebuilt cycle at its
    smallest member id, exactly as the global chaining would.
    """
    ends_at: Dict[Tuple[float, float], List[int]] = {}
    starts_at: Dict[Tuple[float, float], List[int]] = {}
    for path_id, start_x, start_y, end_x, end_y, owns_start, owns_end in fragments:
        if owns_start:
            starts_at.setdefault((start_x, start_y), []).append(path_id)
        if owns_end:
            ends_at.setdefault((end_x, end_y), []).append(path_id)
    successor: Dict[int, int] = {}
    for vertex, enders in ends_at.items():
        starters = starts_at.get(vertex)
        if starters is None or len(enders) != 1 or len(starters) != 1:
            continue
        predecessor_id, successor_id = enders[0], starters[0]
        if predecessor_id != successor_id:  # a degenerate self-loop never welds
            successor[predecessor_id] = successor_id
    welded = set(successor)
    welded.update(successor.values())
    runs: List[List[int]] = []
    for run in chain_fragments(welded, successor):
        if len(run) < 2:
            continue
        if successor.get(run[-1]) == run[0]:
            # chain_fragments broke a task-internal weld cycle; re-append the
            # head so the closing weld is encoded by the final pair.
            run = run + [run[0]]
        runs.append(run)
    return runs


def successors_from_runs(runs: Iterable[Sequence[int]]) -> Dict[int, int]:
    """Rebuild the weld successor map from per-shard runs (the merge input).

    Each vertex has exactly one owning shard, so no weld appears in two
    shards' runs and the union is conflict-free.
    """
    successor: Dict[int, int] = {}
    for run in runs:
        for predecessor_id, successor_id in zip(run, run[1:]):
            successor[predecessor_id] = successor_id
    return successor


# ---------------------------------------------------------------------------
# Chaining (the merge pass)
# ---------------------------------------------------------------------------


def chain_fragments(
    path_ids: Iterable[int], successor: Mapping[int, int]
) -> List[List[int]]:
    """Partition ``path_ids`` into maximal chains under the weld ``successor`` map.

    Deterministic and order-free: chains are walked from their unique heads
    (fragments with no predecessor, visited in ascending id order), cycles
    are broken at their smallest member id, and the resulting chain list is
    ordered by head id.  Fragments with no welds come out as singletons.
    """
    ids = set(path_ids)
    has_predecessor = {
        successor_id for predecessor_id, successor_id in successor.items()
        if predecessor_id in ids
    }
    chains: List[List[int]] = []
    visited = set()
    for head in sorted(ids):
        if head in visited or head in has_predecessor:
            continue
        chain = [head]
        visited.add(head)
        while True:
            next_id = successor.get(chain[-1])
            if next_id is None or next_id not in ids or next_id in visited:
                break
            chain.append(next_id)
            visited.add(next_id)
        chains.append(chain)
    # Whatever remains sits on weld cycles; ascending iteration makes the
    # first unvisited member of each cycle its minimum, where we break it.
    for head in sorted(ids - visited):
        if head in visited:
            continue
        chain = [head]
        visited.add(head)
        next_id = successor.get(head)
        while next_id is not None and next_id in ids and next_id not in visited:
            chain.append(next_id)
            visited.add(next_id)
            next_id = successor.get(next_id)
        chains.append(chain)
    return sorted(chains, key=lambda chain: chain[0])


def split_chains_at_boundaries(
    chains: Iterable[Sequence[int]], owner_of: Callable[[int], int]
) -> List[List[int]]:
    """Cut every chain where consecutive fragments have different owners.

    The ``stitching='off'`` report: the exact corridors truncated at shard
    boundaries.  Defining truncation as a cut of the *exact* chains (rather
    than re-chaining with the cross-owner welds filtered out) makes the
    deviation invariant hold unconditionally — one extra corridor per cut,
    weld cycles included: a cycle is broken once, identically, before the
    cut, so the off report can never regroup fragments across the break the
    exact report chose.  The resulting pieces are re-sorted by head id, the
    same canonical order :func:`chain_fragments` produces.
    """
    pieces: List[List[int]] = []
    for chain in chains:
        piece = [chain[0]]
        for path_id in chain[1:]:
            if owner_of(piece[-1]) != owner_of(path_id):
                pieces.append(piece)
                piece = [path_id]
            else:
                piece.append(path_id)
        pieces.append(piece)
    return sorted(pieces, key=lambda piece: piece[0])


def build_corridors(
    chains: Iterable[Sequence[int]],
    resolve: Callable[[int], Tuple[MotionPath, int]],
) -> List[CompositeCorridor]:
    """Materialise id-chains into corridors; ``resolve`` maps id -> (path, hotness)."""
    corridors = []
    for chain in chains:
        segments = []
        for path_id in chain:
            path, hotness = resolve(path_id)
            segments.append(CorridorSegment(path_id, path, hotness))
        corridors.append(CompositeCorridor(tuple(segments)))
    return corridors


def stitch_paths(
    hot_paths: Iterable[Tuple[MotionPathRecord, int]]
) -> List[CompositeCorridor]:
    """Global reference stitch: the seed coordinator's long-path report.

    ``hot_paths`` yields ``(record, hotness)`` pairs (the output of
    :meth:`Coordinator.hot_paths`).  A sharded fleet's
    :meth:`~repro.coordinator.sharding.ShardRouter.stitch_epoch` in ``exact``
    mode must reproduce this bit for bit — the contract of
    ``tests/test_stitching_equivalence.py``.
    """
    info: Dict[int, Tuple[MotionPath, int]] = {}
    fragments: List[StitchFragment] = []
    for record, hotness in hot_paths:
        info[record.path_id] = (record.path, hotness)
        fragments.append(
            (
                record.path_id,
                record.path.start.x,
                record.path.start.y,
                record.path.end.x,
                record.path.end.y,
                True,
                True,
            )
        )
    successor = successors_from_runs(weld_runs(fragments))
    chains = chain_fragments(info, successor)
    return build_corridors(chains, info.__getitem__)


# ---------------------------------------------------------------------------
# Incremental stitching (epoch_mode="delta")
# ---------------------------------------------------------------------------


class IncrementalStitcher:
    """Maintain corridor chains incrementally under insert/expire/weld events.

    The full stitch re-welds the entire hot fragment set every time the
    corridor report is queried; this class keeps the weld structure — vertex
    occupancy, the weld decided at each vertex, the successor/predecessor
    maps, the chain partition and (in ``exact`` mode) the materialised
    :class:`CompositeCorridor` per chain — alive across epochs, so a query
    only pays for the fragments that changed since the last one.

    :meth:`sync` diffs the caller's current hot set against the retained one
    (membership is authoritative — renames appear as remove+add, so the
    stitcher never needs to trust an event log), re-decides the welds at the
    touched vertices via the same degree-1 rule as :func:`weld_runs`, and
    re-chains only the *tainted* chains: a chain is tainted when a member was
    added or removed or when a weld on it appeared or disappeared.  Every
    other chain — and its cached corridor — is reused untouched.  This is
    corridor-aware expiry: ``k`` fragments of one corridor expiring in the
    same epoch tear the chain down once, not ``k`` times (the coalescing is
    counted in ``expiry_coalesced``).

    **Exactness.**  The retained successor map always equals the one a global
    weld pass would compute (welds are a per-vertex set function of the hot
    set, and every touched vertex is re-decided).  Re-chaining only tainted
    chains is exact because tainted-ness is closed over weld edges: an edge
    between two surviving fragments either predates the sync — then both ends
    sat on the same old chain, so they are rebuilt (or reused) together — or
    was created by it, which taints both endpoint chains.  Hence
    :func:`chain_fragments` over the rebuilt members alone sees every edge a
    global re-chain would, and heads/cycle-breaks come out identically, so
    the report stays bit-for-bit equal to the full stitch — the contract of
    ``tests/test_stitching_equivalence.py`` and the delta property suite.

    Like the rest of this module, the class is shard-agnostic: owners are
    resolved per :meth:`report` call (so kd rebalances need no invalidation —
    geometry and ids survive a migration unchanged), and the single-shard
    coordinator uses it with a constant owner function.
    """

    def __init__(self) -> None:
        self._paths: Dict[int, MotionPath] = {}
        self._hotness: Dict[int, int] = {}
        self._starts: Dict[Tuple[float, float], set] = {}
        self._ends: Dict[Tuple[float, float], set] = {}
        self._weld_at: Dict[Tuple[float, float], Tuple[int, int]] = {}
        self._successor: Dict[int, int] = {}
        self._predecessor: Dict[int, int] = {}
        self._chains: Dict[int, List[int]] = {}
        self._chain_of: Dict[int, int] = {}
        self._corridors: Dict[int, CompositeCorridor] = {}
        #: Counters accumulated since the last :meth:`report` (folded into its
        #: stats dict and then reset).
        self._since_report: Dict[str, int] = self._zero_counters()
        #: Lifetime totals, surfaced by ``shard_statistics()``.
        self.totals: Dict[str, int] = self._zero_counters()

    @staticmethod
    def _zero_counters() -> Dict[str, int]:
        return {
            "fragments_added": 0,
            "fragments_removed": 0,
            "expiry_coalesced": 0,
            "chains_rewelded": 0,
            "chains_reused": 0,
            "corridors_patched": 0,
            "corridors_reused": 0,
        }

    def _bump(self, counter: str, amount: int = 1) -> None:
        self._since_report[counter] += amount
        self.totals[counter] += amount

    def _resolve(self, path_id: int) -> Tuple[MotionPath, int]:
        return self._paths[path_id], self._hotness[path_id]

    # -- weld maintenance ---------------------------------------------------------

    def _reweld(self, vertex: Tuple[float, float], taint: Callable[[int], None]) -> None:
        """Re-decide the degree-1 weld at ``vertex`` after its occupancy changed."""
        enders = self._ends.get(vertex)
        starters = self._starts.get(vertex)
        new_weld = None
        if enders is not None and starters is not None and len(enders) == 1 and len(starters) == 1:
            predecessor_id = next(iter(enders))
            successor_id = next(iter(starters))
            if predecessor_id != successor_id:  # a degenerate self-loop never welds
                new_weld = (predecessor_id, successor_id)
        old_weld = self._weld_at.get(vertex)
        if old_weld == new_weld:
            return
        if old_weld is not None:
            old_predecessor, old_successor = self._weld_at.pop(vertex)
            del self._successor[old_predecessor]
            del self._predecessor[old_successor]
            taint(old_predecessor)
            taint(old_successor)
        if new_weld is not None:
            predecessor_id, successor_id = new_weld
            self._weld_at[vertex] = new_weld
            self._successor[predecessor_id] = successor_id
            self._predecessor[successor_id] = predecessor_id
            taint(predecessor_id)
            taint(successor_id)

    # -- the per-epoch diff -------------------------------------------------------

    def sync(self, current: Mapping[int, Tuple[MotionPath, int]]) -> None:
        """Diff ``current`` (id -> (path, hotness)) against the retained hot set.

        Applies removals, then insertions, re-deciding welds at every touched
        vertex, then re-chains exactly the tainted chains.  Hotness-only
        changes patch the counter and drop the chain's cached corridor
        without re-welding anything.
        """
        removed = [path_id for path_id in self._paths if path_id not in current]
        added = [path_id for path_id in current if path_id not in self._paths]
        dirty_heads: set = set()
        loose: set = set()

        def taint(path_id: int) -> None:
            head = self._chain_of.get(path_id)
            if head is not None:
                dirty_heads.add(head)
            else:
                loose.add(path_id)

        removals_by_head: Dict[int, int] = {}
        for path_id in removed:
            head = self._chain_of.get(path_id)
            if head is not None:
                removals_by_head[head] = removals_by_head.get(head, 0) + 1
                dirty_heads.add(head)
            path = self._paths.pop(path_id)
            del self._hotness[path_id]
            start_vertex = (path.start.x, path.start.y)
            end_vertex = (path.end.x, path.end.y)
            self._discard(self._starts, start_vertex, path_id)
            self._discard(self._ends, end_vertex, path_id)
            self._reweld(start_vertex, taint)
            self._reweld(end_vertex, taint)
        for path_id in added:
            path, hotness = current[path_id]
            self._paths[path_id] = path
            self._hotness[path_id] = hotness
            start_vertex = (path.start.x, path.start.y)
            end_vertex = (path.end.x, path.end.y)
            self._starts.setdefault(start_vertex, set()).add(path_id)
            self._ends.setdefault(end_vertex, set()).add(path_id)
            loose.add(path_id)
            self._reweld(start_vertex, taint)
            self._reweld(end_vertex, taint)

        added_set = set(added)
        for path_id, (_path, hotness) in current.items():
            if path_id in added_set or self._hotness[path_id] == hotness:
                continue
            self._hotness[path_id] = hotness
            head = self._chain_of.get(path_id)
            if head is not None and head not in dirty_heads:
                if self._corridors.pop(head, None) is not None:
                    self._bump("corridors_patched")

        removed_set = set(removed)
        rebuilt_members = set(loose)
        for head in dirty_heads:
            members = self._chains.pop(head, None)
            if members is None:
                continue
            rebuilt_members.update(members)
            for member in members:
                self._chain_of.pop(member, None)
            self._corridors.pop(head, None)
        rebuilt_members -= removed_set
        new_chains = chain_fragments(rebuilt_members, self._successor)
        for chain in new_chains:
            head = chain[0]
            self._chains[head] = chain
            for member in chain:
                self._chain_of[member] = head

        self._bump("fragments_added", len(added))
        self._bump("fragments_removed", len(removed))
        self._bump("chains_rewelded", len(new_chains))
        self._bump(
            "expiry_coalesced",
            sum(count - 1 for count in removals_by_head.values() if count > 1),
        )

    @staticmethod
    def _discard(occupancy: Dict[Tuple[float, float], set], vertex: Tuple[float, float], path_id: int) -> None:
        members = occupancy.get(vertex)
        if members is not None:
            members.discard(path_id)
            if not members:
                del occupancy[vertex]

    # -- the patched report -------------------------------------------------------

    def report(
        self, mode: str, owner_of: Callable[[int], int]
    ) -> Tuple[List[CompositeCorridor], Dict[str, int]]:
        """The corridor report plus its stats, rebuilt only where dirtied.

        Chains come out sorted by head id — the canonical order
        :func:`chain_fragments` produces globally.  ``exact`` mode serves
        each untouched chain's corridor from the per-chain cache; ``off``
        mode cuts the exact chains at owner boundaries per call (owners may
        change under rebalancing, so boundary cuts are never cached).
        """
        heads = sorted(self._chains)
        chains = [self._chains[head] for head in heads]
        welds_used = sum(len(chain) - 1 for chain in chains)
        boundary_welds = 0
        for chain in chains:
            for left, right in zip(chain, chain[1:]):
                if owner_of(left) != owner_of(right):
                    boundary_welds += 1
        if mode == "off":
            pieces = split_chains_at_boundaries(chains, owner_of)
            corridors = build_corridors(pieces, self._resolve)
        else:
            corridors = []
            for head, chain in zip(heads, chains):
                cached = self._corridors.get(head)
                if cached is None:
                    cached = build_corridors([chain], self._resolve)[0]
                    self._corridors[head] = cached
                    self._bump("corridors_patched")
                else:
                    self._bump("corridors_reused")
                corridors.append(cached)
        self._bump(
            "chains_reused", len(chains) - min(self._since_report["chains_rewelded"], len(chains))
        )
        stats: Dict[str, int] = {
            "fragments": len(self._paths),
            "welds": welds_used,
            "boundary_welds": boundary_welds,
            "corridors": len(corridors),
            "multi_segment_corridors": sum(
                1 for corridor in corridors if corridor.num_segments > 1
            ),
        }
        stats.update(self._since_report)
        self._since_report = self._zero_counters()
        return corridors, stats


# ---------------------------------------------------------------------------
# Ranking (the corridor top-k merge)
# ---------------------------------------------------------------------------


def select_top_k_corridors(
    corridors: Iterable[CompositeCorridor], k: int, by_score: bool = False
) -> List[CompositeCorridor]:
    """Top-k corridors ranked by hotness (default) or by score.

    Mirrors :func:`repro.core.scoring.select_top_k` for composite corridors:
    ties fall back to the score (respectively hotness) and finally to the
    lead path id, so the ranking is a total order — independent of the order
    in which per-shard merge results arrive.
    """
    if k <= 0:
        raise ConfigurationError(f"k must be positive, got {k}")
    if by_score:
        key = lambda corridor: (corridor.score, corridor.hotness, -corridor.lead_path_id)
    else:
        key = lambda corridor: (corridor.hotness, corridor.score, -corridor.lead_path_id)
    return heapq.nlargest(k, corridors, key=key)


def top_k_corridor_score(top_k: Sequence[CompositeCorridor]) -> float:
    """Average score of a corridor top-k set; zero for an empty set."""
    if not top_k:
        return 0.0
    return sum(corridor.score for corridor in top_k) / len(top_k)
