"""Spatial partition layer behind the shard router.

PR 1 hard-wired the shard fleet to a uniform R x C grid: routing, halo
planning, conflict grouping and worker bootstrap all did grid arithmetic
directly.  This module extracts the partition into one small abstraction so
the fleet can run non-uniform, load-adaptive layouts behind the unchanged
:class:`~repro.coordinator.sharding.ShardRouter` interface:

* :class:`UniformGridPartition` (aliased as ``ShardGrid`` for backwards
  compatibility) — the original R x C grid with clamped floor arithmetic;
* :class:`KdSplitPartition` — a kd-split tree built by recursive quantile
  splits on endpoint density, the standard fix for skewed workloads (hot
  downtown cells vs. empty suburbs) in distributed spatial indexing.

Every partition divides the **whole plane** into exactly ``num_shards``
cells: border cells extend past the monitored bounds, which is how points
outside the nominal area are "clamped" into border shards without a special
case.  The contract the router relies on:

* :meth:`Partition.shard_id_of` is total — every point maps to exactly one
  shard;
* :meth:`Partition.shard_ids_overlapping` returns every shard whose cell
  intersects a query rectangle (so region queries fanning out over it never
  miss an endpoint entry), in ascending shard-id order;
* :meth:`Partition.single_shard_of` is the fast path of the shard-local
  view: the one shard fully containing a rectangle, or ``None``;
* :meth:`Partition.ring_of` generalises the fixed overlap halo: the shards
  within ``h`` adjacency steps (Chebyshev rings on the uniform grid, BFS
  over cell adjacency on a kd partition);
* :meth:`Partition.describe` is a canonical value-equality key — two
  partitions with equal descriptions route every point identically, which
  the rebalance protocol uses to skip no-op migrations.

**Exactness.**  Nothing the differential harness pins depends on the
partition's *shape*: path ids come from a global counter, decisions replay
submission order, endpoint-owner routing holds every vertex's entries with
exactly one shard, and the adaptive overlap halo is exact for any plane
cover (two intersecting FSAs share the shard owning any point of their
intersection).  Swapping the uniform grid for a kd partition — or migrating
between two kd partitions mid-stream — therefore preserves bit-for-bit
equivalence with the seed coordinator; ``tests/test_sharding_equivalence.py``
asserts it.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Iterator, List, Optional, Sequence, Set, Tuple, Union

from repro.core.errors import ConfigurationError
from repro.core.geometry import Point, Rectangle

__all__ = [
    "PARTITION_KINDS",
    "shard_layout",
    "Partition",
    "UniformGridPartition",
    "KdSplitPartition",
    "create_partition",
]

#: Partition kinds accepted by the config layers and the CLI ``--partition``
#: flag: ``uniform`` is the fixed R x C grid, ``kd`` the load-adaptive
#: kd-split partition (refitted by the epoch-boundary rebalance protocol).
PARTITION_KINDS: Tuple[str, ...] = ("uniform", "kd")

#: A kd tree node: ``(axis, value, left, right)`` internal nodes with
#: ``axis`` 0 for x and 1 for y (coordinates ``< value`` descend left,
#: ``>= value`` right), or an ``int`` leaf holding its shard id.
_KdNode = Union[int, Tuple[int, float, "_KdNode", "_KdNode"]]


def shard_layout(num_shards: int) -> Tuple[int, int]:
    """Factor ``num_shards`` into the most square ``(rows, cols)`` grid.

    4 becomes 2x2, 16 becomes 4x4, 6 becomes 2x3; a prime count degrades to a
    single row of column stripes.
    """
    if num_shards <= 0:
        raise ConfigurationError(f"num_shards must be positive, got {num_shards}")
    rows = int(math.isqrt(num_shards))
    while num_shards % rows:
        rows -= 1
    return rows, num_shards // rows


class Partition(ABC):
    """How the monitored plane is divided into shard cells."""

    #: Name of the partition family (one of :data:`PARTITION_KINDS`).
    kind: str = "abstract"
    #: The monitored area the partition was built over (cells at the border
    #: own everything beyond it as well).
    bounds: Rectangle

    @property
    @abstractmethod
    def num_shards(self) -> int:
        """Number of cells (= shards) in the partition."""

    @abstractmethod
    def shard_id_of(self, point: Point) -> int:
        """The shard owning ``point`` (total: outside points hit border cells)."""

    @abstractmethod
    def shard_ids_overlapping(self, region: Rectangle) -> Iterator[int]:
        """Every shard whose cell intersects ``region``, ascending by id."""

    @abstractmethod
    def shard_bounds(self, shard_id: int) -> Rectangle:
        """The sub-rectangle of the monitored bounds covered by ``shard_id``."""

    @abstractmethod
    def single_shard_of(self, region: Rectangle) -> Optional[int]:
        """The one shard whose cell contains all of ``region``, else ``None``."""

    @abstractmethod
    def ring_of(self, shard_id: int, halo: int) -> Set[int]:
        """Shards within ``halo`` adjacency steps of ``shard_id`` (inclusive)."""

    @abstractmethod
    def describe(self) -> tuple:
        """Canonical description: equal descriptions route identically."""

    # -- elastic operations -----------------------------------------------------

    @abstractmethod
    def split(
        self, shard_id: int, points: Sequence[Tuple[float, float]] = ()
    ) -> "KdSplitPartition":
        """A new partition with ``shard_id``'s cell split in two.

        The split leaf keeps its id and the new sibling is appended at
        ``num_shards`` — every other shard keeps both its id and its cell,
        which is what lets the process backend keep those shards' replicas
        alive across the migration.  ``points`` (endpoint samples inside the
        cell) place the cut at the load median; without a sample the cut is
        the cell midpoint on its wider axis.
        """

    @abstractmethod
    def merge(self, a: int, b: int) -> "KdSplitPartition":
        """A new partition with sibling cells ``a`` and ``b`` coalesced.

        Only *sibling* leaves — cells whose union is exactly their parent's
        cell — can merge (:meth:`mergeable_pairs` enumerates them).  The
        merged cell takes ``min(a, b)``'s id; ids above ``max(a, b)`` shift
        down by one to keep shard ids contiguous.
        """

    @abstractmethod
    def mergeable_pairs(self) -> List[Tuple[int, int]]:
        """All ``(a, b)`` sibling leaf pairs eligible for :meth:`merge`."""


class UniformGridPartition(Partition):
    """Point-to-shard assignment over an R x C partition of the bounds.

    Uses the same clamped floor arithmetic as :class:`GridIndex`, so ownership
    is monotone in each coordinate: any query rectangle maps to a contiguous
    inclusive range of shard rows and columns, and a point inside the
    rectangle is always owned by a shard in that range (including points
    clamped in from outside the monitored area).
    """

    kind = "uniform"

    def __init__(self, bounds: Rectangle, rows: int, cols: int) -> None:
        if rows <= 0 or cols <= 0:
            raise ConfigurationError(f"shard grid must be positive, got {rows}x{cols}")
        self.bounds = bounds
        self.rows = rows
        self.cols = cols
        self._shard_width = bounds.width / cols
        self._shard_height = bounds.height / rows

    @property
    def num_shards(self) -> int:
        return self.rows * self.cols

    def cell_of(self, point: Point) -> Tuple[int, int]:
        """The ``(col, row)`` of the shard owning ``point`` (clamped)."""
        col = int((point.x - self.bounds.low.x) / self._shard_width)
        row = int((point.y - self.bounds.low.y) / self._shard_height)
        return (
            min(max(col, 0), self.cols - 1),
            min(max(row, 0), self.rows - 1),
        )

    def shard_id_of(self, point: Point) -> int:
        col, row = self.cell_of(point)
        return row * self.cols + col

    def span_of(self, region: Rectangle) -> Tuple[int, int, int, int]:
        """Inclusive ``(col_lo, col_hi, row_lo, row_hi)`` shard range of ``region``."""
        col_lo, row_lo = self.cell_of(region.low)
        col_hi, row_hi = self.cell_of(region.high)
        return col_lo, col_hi, row_lo, row_hi

    def shard_ids_overlapping(self, region: Rectangle) -> Iterator[int]:
        col_lo, col_hi, row_lo, row_hi = self.span_of(region)
        for row in range(row_lo, row_hi + 1):
            base = row * self.cols
            for col in range(col_lo, col_hi + 1):
                yield base + col

    def single_shard_of(self, region: Rectangle) -> Optional[int]:
        col_lo, col_hi, row_lo, row_hi = self.span_of(region)
        if col_lo != col_hi or row_lo != row_hi:
            return None
        return row_lo * self.cols + col_lo

    def sub_bounds(self, col: int, row: int) -> Rectangle:
        """The sub-rectangle covered by shard ``(col, row)``.

        The last row/column extends exactly to the global bounds so no strip
        of the area is lost to floating-point division.
        """
        low = Point(
            self.bounds.low.x + col * self._shard_width,
            self.bounds.low.y + row * self._shard_height,
        )
        high = Point(
            self.bounds.high.x if col == self.cols - 1 else low.x + self._shard_width,
            self.bounds.high.y if row == self.rows - 1 else low.y + self._shard_height,
        )
        return Rectangle(low, high)

    def shard_bounds(self, shard_id: int) -> Rectangle:
        row, col = divmod(shard_id, self.cols)
        return self.sub_bounds(col, row)

    def ring_of(self, shard_id: int, halo: int) -> Set[int]:
        """All shards within Chebyshev distance ``halo`` in shard coordinates."""
        row, col = divmod(shard_id, self.cols)
        return {
            ring_row * self.cols + ring_col
            for ring_row in range(max(0, row - halo), min(self.rows, row + halo + 1))
            for ring_col in range(max(0, col - halo), min(self.cols, col + halo + 1))
        }

    def describe(self) -> tuple:
        return (
            "uniform",
            self.rows,
            self.cols,
            self.bounds.low.as_tuple(),
            self.bounds.high.as_tuple(),
        )

    # -- elastic operations -----------------------------------------------------

    def to_kd(self) -> "KdSplitPartition":
        """The kd-tree equivalent of this grid, shard ids preserved.

        Guillotine-cuts the cell range recursively (columns before rows) at
        the exact grid-line coordinates and labels each leaf with its
        row-major shard id, so the kd tree reports the same ids over the
        same cells.  Elastic split/merge then operates on the tree — a
        uniform fleet's first elastic action migrates it onto the kd
        representation once and stays there.
        """
        leaf_bounds: List[Optional[Rectangle]] = [None] * self.num_shards

        def build(col_lo: int, col_hi: int, row_lo: int, row_hi: int) -> _KdNode:
            if col_hi - col_lo == 1 and row_hi - row_lo == 1:
                shard_id = row_lo * self.cols + col_lo
                leaf_bounds[shard_id] = self.sub_bounds(col_lo, row_lo)
                return shard_id
            if col_hi - col_lo >= row_hi - row_lo and col_hi - col_lo > 1:
                cut = (col_lo + col_hi) // 2
                value = self.bounds.low.x + cut * self._shard_width
                return (
                    0,
                    value,
                    build(col_lo, cut, row_lo, row_hi),
                    build(cut, col_hi, row_lo, row_hi),
                )
            cut = (row_lo + row_hi) // 2
            value = self.bounds.low.y + cut * self._shard_height
            return (
                1,
                value,
                build(col_lo, col_hi, row_lo, cut),
                build(col_lo, col_hi, cut, row_hi),
            )

        root = build(0, self.cols, 0, self.rows)
        return KdSplitPartition(self.bounds, root, leaf_bounds)

    def split(
        self, shard_id: int, points: Sequence[Tuple[float, float]] = ()
    ) -> "KdSplitPartition":
        return self.to_kd().split(shard_id, points)

    def merge(self, a: int, b: int) -> "KdSplitPartition":
        return self.to_kd().merge(a, b)

    def mergeable_pairs(self) -> List[Tuple[int, int]]:
        return self.to_kd().mergeable_pairs()


class KdSplitPartition(Partition):
    """Leaves of a kd-split tree: non-uniform cells fitted to point density.

    Built by :meth:`fit`: recursive splits on the wider axis of each cell, at
    the weighted quantile of the sample coordinates that sends each side a
    leaf count proportional to its sample mass — i.e. recursive median
    splits when the leaf count is a power of two.  Leaves are numbered in
    in-order (left-to-right) traversal order, so shard ids are a
    deterministic function of the fitted splits.

    The tree divides the whole plane: coordinates below a split descend
    left, coordinates at or above it descend right, and border cells are
    unbounded — the kd equivalent of the uniform grid's clamping.
    :meth:`shard_bounds` reports each leaf cell clipped to the monitored
    bounds (every split lies strictly inside its cell, so clipped cells
    always have positive area and can seat a per-shard grid index).
    """

    kind = "kd"

    def __init__(self, bounds: Rectangle, root: _KdNode, leaf_bounds: Sequence[Rectangle]) -> None:
        self.bounds = bounds
        self._root = root
        self._leaf_bounds: List[Rectangle] = list(leaf_bounds)
        self._adjacency: Optional[List[Set[int]]] = None

    # -- construction -----------------------------------------------------------

    @classmethod
    def fit(
        cls,
        bounds: Rectangle,
        num_shards: int,
        points: Sequence[Tuple[float, float]] = (),
    ) -> "KdSplitPartition":
        """Fit a ``num_shards``-leaf kd partition to a point sample.

        ``points`` are ``(x, y)`` tuples (endpoint density samples); with no
        sample every split falls back to the cell midpoint, which degrades to
        a balanced binary-space partition of the bounds.  The fit is a pure
        function of the *set* of samples: the sample is sorted per axis once
        up front (so sample order never changes the splits) and each split
        partitions the sorted lists in place — the whole fit is
        O(n log n + n log shards).
        """
        if num_shards <= 0:
            raise ConfigurationError(f"num_shards must be positive, got {num_shards}")
        if bounds.width <= 0 or bounds.height <= 0:
            raise ConfigurationError("partition bounds must have positive area")
        leaf_bounds: List[Rectangle] = []

        def split(
            cell: Rectangle,
            leaves: int,
            by_x: List[Tuple[float, float]],
            by_y: List[Tuple[float, float]],
        ) -> _KdNode:
            if leaves == 1:
                leaf_bounds.append(cell)
                return len(leaf_bounds) - 1
            axis = 0 if cell.width >= cell.height else 1
            low = cell.low.x if axis == 0 else cell.low.y
            high = cell.high.x if axis == 0 else cell.high.y
            left_leaves = (leaves + 1) // 2
            ordered = by_x if axis == 0 else by_y
            value = cls._split_value(
                [p[axis] for p in ordered], left_leaves / leaves, low, high
            )
            # Filtering the pre-sorted lists preserves their order, so each
            # tree level costs O(sample) — the sample is sorted once per
            # axis up front, never inside the recursion.
            left_x = [p for p in by_x if p[axis] < value]
            right_x = [p for p in by_x if p[axis] >= value]
            left_y = [p for p in by_y if p[axis] < value]
            right_y = [p for p in by_y if p[axis] >= value]
            if axis == 0:
                left_cell = Rectangle(cell.low, Point(value, cell.high.y))
                right_cell = Rectangle(Point(value, cell.low.y), cell.high)
            else:
                left_cell = Rectangle(cell.low, Point(cell.high.x, value))
                right_cell = Rectangle(Point(cell.low.x, value), cell.high)
            left = split(left_cell, left_leaves, left_x, left_y)
            right = split(right_cell, leaves - left_leaves, right_x, right_y)
            return (axis, value, left, right)

        sample = [(p[0], p[1]) for p in points]
        root = split(
            bounds,
            num_shards,
            sorted(sample),
            sorted(sample, key=lambda p: (p[1], p[0])),
        )
        return cls(bounds, root, leaf_bounds)

    @staticmethod
    def _split_value(coords: List[float], fraction: float, low: float, high: float) -> float:
        """The split coordinate: a sample quantile, clamped strictly inside the cell.

        The quantile is the midpoint of two adjacent sorted samples — which
        coincides with a sample coordinate when duplicates surround the cut
        (the coordinate then routes right, like any on-split point).  What
        rules out degenerate cells is the clamp, not the midpoint: whenever
        the quantile is not strictly inside ``(low, high)`` — empty sample,
        all coordinates equal, or a cut at the cell edge — the cell
        midpoint is used instead, and a positive-extent cell always has a
        strictly interior midpoint.
        """
        midpoint = (low + high) / 2.0
        if len(coords) < 2:
            return midpoint
        cut = min(len(coords) - 1, max(1, round(fraction * len(coords))))
        value = (coords[cut - 1] + coords[cut]) / 2.0
        if not (low < value < high):
            return midpoint
        return value

    # -- partition interface ----------------------------------------------------

    @property
    def num_shards(self) -> int:
        return len(self._leaf_bounds)

    def shard_id_of(self, point: Point) -> int:
        node = self._root
        while not isinstance(node, int):
            axis, value, left, right = node
            coordinate = point.x if axis == 0 else point.y
            node = left if coordinate < value else right
        return node

    def shard_ids_overlapping(self, region: Rectangle) -> Iterator[int]:
        stack: List[_KdNode] = [self._root]
        found: List[int] = []
        while stack:
            node = stack.pop()
            if isinstance(node, int):
                found.append(node)
                continue
            axis, value, left, right = node
            low = region.low.x if axis == 0 else region.low.y
            high = region.high.x if axis == 0 else region.high.y
            if high >= value:
                stack.append(right)
            if low < value:
                stack.append(left)
        # Ascending id order, matching the uniform grid's iteration contract.
        return iter(sorted(found))

    def shard_bounds(self, shard_id: int) -> Rectangle:
        return self._leaf_bounds[shard_id]

    def single_shard_of(self, region: Rectangle) -> Optional[int]:
        node = self._root
        while not isinstance(node, int):
            axis, value, left, right = node
            low = region.low.x if axis == 0 else region.low.y
            high = region.high.x if axis == 0 else region.high.y
            if high < value:
                node = left
            elif low >= value:
                node = right
            else:
                return None
        return node

    def ring_of(self, shard_id: int, halo: int) -> Set[int]:
        """BFS over cell adjacency — the kd analogue of a Chebyshev ring.

        Two cells are adjacent when their (closed) rectangles touch, corners
        included, mirroring the uniform grid where a ring of 1 covers the
        eight surrounding cells.
        """
        if self._adjacency is None:
            cells = self._leaf_bounds
            self._adjacency = [
                {
                    other
                    for other in range(len(cells))
                    if other != cell_id and self._touch(cells[cell_id], cells[other])
                }
                for cell_id in range(len(cells))
            ]
        frontier = {shard_id}
        ring = {shard_id}
        for _step in range(halo):
            frontier = {
                neighbour
                for cell_id in frontier
                for neighbour in self._adjacency[cell_id]
                if neighbour not in ring
            }
            if not frontier:
                break
            ring.update(frontier)
        return ring

    @staticmethod
    def _touch(a: Rectangle, b: Rectangle) -> bool:
        return (
            a.low.x <= b.high.x
            and b.low.x <= a.high.x
            and a.low.y <= b.high.y
            and b.low.y <= a.high.y
        )

    def describe(self) -> tuple:
        def serialize(node: _KdNode) -> tuple:
            if isinstance(node, int):
                return ("leaf", node)
            axis, value, left, right = node
            return (axis, value, serialize(left), serialize(right))

        return (
            "kd",
            self.bounds.low.as_tuple(),
            self.bounds.high.as_tuple(),
            serialize(self._root),
        )

    # -- elastic operations -----------------------------------------------------

    def split(
        self, shard_id: int, points: Sequence[Tuple[float, float]] = ()
    ) -> "KdSplitPartition":
        if not 0 <= shard_id < self.num_shards:
            raise ConfigurationError(
                f"cannot split shard {shard_id}: partition has {self.num_shards} shards"
            )
        cell = self._leaf_bounds[shard_id]
        axis = 0 if cell.width >= cell.height else 1
        low = cell.low.x if axis == 0 else cell.low.y
        high = cell.high.x if axis == 0 else cell.high.y
        if not low < (low + high) / 2.0 < high:
            raise ConfigurationError(
                f"cannot split shard {shard_id}: cell extent degenerate at {low}..{high}"
            )
        inside = sorted(
            p[axis]
            for p in points
            if cell.low.x <= p[0] <= cell.high.x and cell.low.y <= p[1] <= cell.high.y
        )
        value = self._split_value(inside, 0.5, low, high)
        new_id = self.num_shards
        if axis == 0:
            left_cell = Rectangle(cell.low, Point(value, cell.high.y))
            right_cell = Rectangle(Point(value, cell.low.y), cell.high)
        else:
            left_cell = Rectangle(cell.low, Point(cell.high.x, value))
            right_cell = Rectangle(Point(cell.low.x, value), cell.high)

        def rebuild(node: _KdNode) -> _KdNode:
            if isinstance(node, int):
                return (axis, value, shard_id, new_id) if node == shard_id else node
            node_axis, node_value, left, right = node
            return (node_axis, node_value, rebuild(left), rebuild(right))

        leaf_bounds = list(self._leaf_bounds)
        leaf_bounds[shard_id] = left_cell
        leaf_bounds.append(right_cell)
        return KdSplitPartition(self.bounds, rebuild(self._root), leaf_bounds)

    def merge(self, a: int, b: int) -> "KdSplitPartition":
        if a == b or not (0 <= a < self.num_shards and 0 <= b < self.num_shards):
            raise ConfigurationError(
                f"cannot merge shards {a} and {b} in a {self.num_shards}-shard partition"
            )
        pair = {a, b}
        keep, drop = min(a, b), max(a, b)
        found = False

        def rebuild(node: _KdNode) -> _KdNode:
            nonlocal found
            if isinstance(node, int):
                return node - 1 if node > drop else node
            node_axis, node_value, left, right = node
            if isinstance(left, int) and isinstance(right, int) and {left, right} == pair:
                found = True
                return keep
            return (node_axis, node_value, rebuild(left), rebuild(right))

        root = rebuild(self._root)
        if not found:
            raise ConfigurationError(
                f"shards {a} and {b} are not sibling cells; only siblings can merge "
                f"(see mergeable_pairs())"
            )
        cell_a, cell_b = self._leaf_bounds[a], self._leaf_bounds[b]
        merged = Rectangle(
            Point(min(cell_a.low.x, cell_b.low.x), min(cell_a.low.y, cell_b.low.y)),
            Point(max(cell_a.high.x, cell_b.high.x), max(cell_a.high.y, cell_b.high.y)),
        )
        leaf_bounds: List[Rectangle] = []
        for old_id, bounds in enumerate(self._leaf_bounds):
            if old_id == keep:
                leaf_bounds.append(merged)
            elif old_id != drop:
                leaf_bounds.append(bounds)
        return KdSplitPartition(self.bounds, root, leaf_bounds)

    def mergeable_pairs(self) -> List[Tuple[int, int]]:
        pairs: List[Tuple[int, int]] = []

        def walk(node: _KdNode) -> None:
            if isinstance(node, int):
                return
            _axis, _value, left, right = node
            if isinstance(left, int) and isinstance(right, int):
                pairs.append((min(left, right), max(left, right)))
            walk(left)
            walk(right)

        walk(self._root)
        return sorted(pairs)


def create_partition(kind: str, bounds: Rectangle, num_shards: int) -> Partition:
    """Build the initial partition of a fresh router (no density data yet).

    ``uniform`` factors ``num_shards`` into the most square R x C grid;
    ``kd`` fits a sample-free kd partition (midpoint splits — a balanced
    binary-space partition the rebalance protocol refits once load exists).
    """
    if kind == "uniform":
        rows, cols = shard_layout(num_shards)
        return UniformGridPartition(bounds, rows, cols)
    if kind == "kd":
        return KdSplitPartition.fit(bounds, num_shards)
    raise ConfigurationError(
        f"partition must be one of {', '.join(PARTITION_KINDS)}, got {kind!r}"
    )
