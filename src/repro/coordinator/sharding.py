"""Sharded coordinator subsystem: horizontal partitioning of the monitored area.

The paper's coordinator is a single process owning one grid index, one hotness
tracker and one SinglePath strategy.  To scale towards millions of objects the
monitored area is partitioned into an R x C *shard grid*; every shard owns the
full coordinator state for its sub-rectangle:

* a :class:`~repro.coordinator.grid_index.GridIndex` holding the motion-path
  records whose **start** vertex falls in the shard, plus the endpoint entries
  the shard owns;
* a :class:`~repro.coordinator.hotness.HotnessTracker` with the expiry events
  of the paths the shard owns;
* a :class:`~repro.coordinator.single_path.SinglePathStrategy` bound to a
  shard-local index view.

**Endpoint-owner routing.**  A motion path is a segment whose two endpoints
may fall into different shards.  Each endpoint entry is indexed by the shard
that owns the endpoint's location; the record itself (and the path's hotness)
lives with the shard owning the *start* vertex.  A path straddling a shard
boundary therefore has its start entry and record in one shard and its end
entry in the neighbouring shard, which the neighbour resolves through the
router when a query returns that entry.  Point-to-shard assignment uses the
same clamped floor arithmetic as the per-shard grids, so points outside the
monitored area land in border shards and every query region maps to a
contiguous rectangle of shards.

**Batched epoch pipeline.**  :class:`ShardedSinglePath` processes an epoch's
submissions in three batched stages instead of per-message dispatch:

1. one pass groups the batch by owning shard (O(batch) dict operations);
2. each shard computes the Case 1 candidate sets for its whole bucket in a
   single pass — candidate paths start at the reporting object's SSA start,
   so the owning shard answers from one local grid cell without touching its
   neighbours;
3. decisions run in global submission order (preserving the sequential
   semantics of Algorithm 2), with Case 2/3 index reads fanning out only to
   the shards actually overlapped by the object's FSA.

Per-shard expiry queues are drained lazily at the epoch boundary (the
*deferred drain*): :meth:`ShardedHotnessTracker.advance_time` sweeps each
shard's event heap once per epoch rather than interleaving expiry work with
message intake.

**Parallel execution.**  Both stages of the pipeline can run on a worker pool
(see :mod:`repro.coordinator.execution`): the per-shard candidate passes are
read-only and embarrassingly parallel, and the decision stage is partitioned
into *conflict groups* — two states conflict when the shards touched by their
FSAs or SSA starts intersect — that commit concurrently while submission
order is replayed inside each group.  Parallel commits allocate provisional
path ids (``_commit_base + submission position``, a range disjoint from both
pre-epoch and final ids); because no decision ever compares the numeric id of
a path inserted in the same epoch, :meth:`ShardRouter.finish_parallel_commit`
can renumber the epoch's insertions in global submission order afterwards,
reproducing exactly the ids the serial replay allocates.  The full
correctness argument lives in the :mod:`repro.coordinator.execution`
docstring.

**Sharded overlap structure.**  The epoch's FSA overlap structure (``R_all``
of Algorithm 2) is partitioned by shard as well: stage 1 routes every
reporting object's FSA to the shards its rectangle overlaps, and each shard
with a bucket builds a *local* :class:`FsaOverlapStructure` from the FSAs of
its **halo** — by default the adaptive exact halo, every shard any of the
bucket's FSAs overlaps (see :func:`plan_shard_overlaps`).  The local build is
exact, not approximate: every region relevant to a query the shard's strategy
can issue (``smallest_region_containing`` on an end vertex inside a state's
FSA, ``hottest_region_intersecting`` / ``candidate_vertex_for`` on the FSA
itself) has all of its member FSAs intersecting that FSA, hence routed into
the halo pool — so the local structure stores exactly the relevant regions of
the global one, in the same relative order (the construction is a set
function of the pool below the region cap, and pool order is the submission
order filtered).  ``ShardRouter.overlap_halo`` trades this adaptive halo for
a fixed ring of neighbouring shards: cheaper to plan, but FSAs reaching past
the ring are truncated from the pool and decisions may deviate from the seed
coordinator — the differential harness quantifies the deviation
(``tests/test_sharding_equivalence.py::TestOverlapHalo``).

**Cross-shard corridor stitching.**  Hot motion paths chain by construction
(the coordinator's response endpoint becomes the reporting object's next SSA
start), and a hot corridor crossing the shard grid is such a chain whose links
are owned by different shards.  :meth:`ShardRouter.stitch_epoch` reassembles
them: every shard decides the *welds* at the vertices it owns (endpoint-owner
routing guarantees it holds every endpoint entry there, including the far
side of straddling paths — tracked per boundary in
:attr:`ShardRouter.boundary_ledger`), the weld passes run as per-shard tasks
on the execution backend, and a merge pass chains the union of welds into
:class:`~repro.coordinator.stitching.CompositeCorridor` objects.  In ``exact``
mode the result is bit-for-bit the global stitch of the seed coordinator's
hot paths (each vertex has exactly one owner, so the per-shard weld sets
partition the global one); ``off`` cuts the stitched chains at every
cross-shard weld, truncating corridors at shard boundaries — the deviation
the differential harness quantifies, exactly one extra corridor per cut
(``tests/test_stitching_equivalence.py``).

**Exactness.**  The sharded coordinator is behaviour-identical to the
single-shard coordinator, not an approximation: path ids come from one global
counter, decisions execute in submission order against the same live state
(or in conflict groups proven equivalent to it), every SinglePath tie-break
is a total order (independent of candidate enumeration order), shard-local
overlap structures answer exactly like the global build (previous paragraph),
and the top-k merge ranks the union of per-shard hot paths with the same
total key.  ``tests/test_sharding_equivalence.py`` holds the differential
harness asserting bit-for-bit equality on full simulation workloads, for
every execution backend.  Two deliberate, documented exceptions: a fixed
``overlap_halo`` relaxes exactness for bounded halo-planning cost (the
harness quantifies the deviation rather than assuming it away), and a
*saturated* overlap-region cap makes shard-local and global builds keep
different — still deterministic — region subsets, because the capped
construction is no longer a set function of its pool
(:meth:`FsaOverlapStructure.add`; the default cap of 10000 sits far above
any harness or benchmark epoch).
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass
from itertools import chain
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from repro.core.errors import ConfigurationError, CoordinatorError
from repro.core.geometry import Point, Rectangle
from repro.core.motion_path import MotionPath, MotionPathRecord
from repro.client.state import ObjectState
from repro.coordinator.execution import (
    ExecutionBackend,
    SerialBackend,
    conflict_groups,
    create_backend,
)
from repro.coordinator.grid_index import GridConfig, GridIndex
from repro.coordinator.hotness import HotnessTracker
from repro.coordinator.overlaps import FsaOverlapStructure
from repro.coordinator.stitching import (
    STITCHING_MODES,
    CompositeCorridor,
    StitchFragment,
    build_corridors,
    chain_fragments,
    split_chains_at_boundaries,
    successors_from_runs,
)
from repro.coordinator.single_path import (
    CandidatePath,
    SinglePathDecision,
    SinglePathEpochResult,
    SinglePathStrategy,
    apply_co_occurrence_boost,
)

__all__ = [
    "shard_layout",
    "OverlapPlan",
    "plan_shard_overlaps",
    "ShardGrid",
    "Shard",
    "ShardRouter",
    "ShardedGridIndex",
    "ShardedHotnessTracker",
    "ShardedSinglePath",
]


def shard_layout(num_shards: int) -> Tuple[int, int]:
    """Factor ``num_shards`` into the most square ``(rows, cols)`` grid.

    4 becomes 2x2, 16 becomes 4x4, 6 becomes 2x3; a prime count degrades to a
    single row of column stripes.
    """
    if num_shards <= 0:
        raise ConfigurationError(f"num_shards must be positive, got {num_shards}")
    rows = int(math.isqrt(num_shards))
    while num_shards % rows:
        rows -= 1
    return rows, num_shards // rows


class ShardGrid:
    """Point-to-shard assignment over an R x C partition of the bounds.

    Uses the same clamped floor arithmetic as :class:`GridIndex`, so ownership
    is monotone in each coordinate: any query rectangle maps to a contiguous
    inclusive range of shard rows and columns, and a point inside the
    rectangle is always owned by a shard in that range (including points
    clamped in from outside the monitored area).
    """

    def __init__(self, bounds: Rectangle, rows: int, cols: int) -> None:
        if rows <= 0 or cols <= 0:
            raise ConfigurationError(f"shard grid must be positive, got {rows}x{cols}")
        self.bounds = bounds
        self.rows = rows
        self.cols = cols
        self._shard_width = bounds.width / cols
        self._shard_height = bounds.height / rows

    @property
    def num_shards(self) -> int:
        return self.rows * self.cols

    def cell_of(self, point: Point) -> Tuple[int, int]:
        """The ``(col, row)`` of the shard owning ``point`` (clamped)."""
        col = int((point.x - self.bounds.low.x) / self._shard_width)
        row = int((point.y - self.bounds.low.y) / self._shard_height)
        return (
            min(max(col, 0), self.cols - 1),
            min(max(row, 0), self.rows - 1),
        )

    def shard_id_of(self, point: Point) -> int:
        col, row = self.cell_of(point)
        return row * self.cols + col

    def span_of(self, region: Rectangle) -> Tuple[int, int, int, int]:
        """Inclusive ``(col_lo, col_hi, row_lo, row_hi)`` shard range of ``region``."""
        col_lo, row_lo = self.cell_of(region.low)
        col_hi, row_hi = self.cell_of(region.high)
        return col_lo, col_hi, row_lo, row_hi

    def shard_ids_overlapping(self, region: Rectangle) -> Iterator[int]:
        col_lo, col_hi, row_lo, row_hi = self.span_of(region)
        for row in range(row_lo, row_hi + 1):
            base = row * self.cols
            for col in range(col_lo, col_hi + 1):
                yield base + col

    def sub_bounds(self, col: int, row: int) -> Rectangle:
        """The sub-rectangle covered by shard ``(col, row)``.

        The last row/column extends exactly to the global bounds so no strip
        of the area is lost to floating-point division.
        """
        low = Point(
            self.bounds.low.x + col * self._shard_width,
            self.bounds.low.y + row * self._shard_height,
        )
        high = Point(
            self.bounds.high.x if col == self.cols - 1 else low.x + self._shard_width,
            self.bounds.high.y if row == self.rows - 1 else low.y + self._shard_height,
        )
        return Rectangle(low, high)


@dataclass
class OverlapPlan:
    """Per-shard FSA pools for the epoch's shard-local overlap structures.

    ``pools`` holds the *distinct* pools only — neighbouring shards frequently
    resolve to the identical halo pool, and the built structures are read-only
    in the decision stage, so shards sharing a pool share one structure.
    Every pool preserves the global submission order of its members, which
    makes the shard-local build's region iteration order the global build's
    order restricted to the pool (first-encountered tie-breaks depend on it).
    """

    #: ``shard_id -> index into pools`` for every shard with a bucket.
    pool_of_shard: Dict[int, int]
    #: Distinct ``object_id -> FSA`` pools, each in submission order.
    pools: List[Dict[int, Rectangle]]


def plan_shard_overlaps(
    grid: "ShardGrid",
    buckets: Dict[int, List[Tuple[int, "ObjectState"]]],
    fsas: Dict[int, Rectangle],
    halo: Optional[int] = None,
) -> OverlapPlan:
    """Assign every bucketed shard the FSA pool of its overlap halo.

    ``fsas`` is the epoch's ``object_id -> final FSA`` map in submission order
    (a duplicate reporter keeps its first position but the later FSA — the
    same replacement the global build applies).  Each FSA is routed to every
    shard its rectangle overlaps; a shard's pool is the union of the FSAs
    routed to its *halo shards*:

    * ``halo=None`` (the default) uses the **adaptive exact halo**: the shard
      itself plus every shard overlapped by any FSA in its bucket.  Any FSA
      intersecting a bucket state's FSA shares a shard with it (the grid's
      span arithmetic is monotone, so the intersection's span is contained in
      both spans), hence lands in the pool — the construction the equivalence
      argument in the module docstring relies on.
    * ``halo=h >= 0`` uses a **fixed ring**: all shards within Chebyshev
      distance ``h`` in shard coordinates.  FSAs interacting only beyond the
      ring are truncated away, so queries may deviate from the global build;
      a ring covering the whole grid (``h >= max(rows, cols) - 1``) is again
      exact.
    """
    spans = {
        object_id: frozenset(grid.shard_ids_overlapping(fsa))
        for object_id, fsa in fsas.items()
    }
    pool_of_shard: Dict[int, int] = {}
    pools: List[Dict[int, Rectangle]] = []
    index_of_members: Dict[Tuple[int, ...], int] = {}
    for shard_id, bucket in buckets.items():
        if halo is None:
            halo_shards = {shard_id}
            for _position, state in bucket:
                halo_shards.update(grid.shard_ids_overlapping(state.fsa))
        else:
            row, col = divmod(shard_id, grid.cols)
            halo_shards = {
                ring_row * grid.cols + ring_col
                for ring_row in range(max(0, row - halo), min(grid.rows, row + halo + 1))
                for ring_col in range(max(0, col - halo), min(grid.cols, col + halo + 1))
            }
        members = tuple(
            object_id for object_id, span in spans.items()
            if not halo_shards.isdisjoint(span)
        )
        index = index_of_members.get(members)
        if index is None:
            index = len(pools)
            index_of_members[members] = index
            pools.append({object_id: fsas[object_id] for object_id in members})
        pool_of_shard[shard_id] = index
    return OverlapPlan(pool_of_shard, pools)


@dataclass
class Shard:
    """One shard: its sub-area plus the coordinator state it owns."""

    shard_id: int
    col: int
    row: int
    bounds: Rectangle
    index: GridIndex
    hotness: HotnessTracker
    strategy: Optional[SinglePathStrategy]


class _ShardLocalView:
    """Index facade handed to a shard's SinglePath strategy.

    Case 1 candidate scans stay on the shard (the owning shard holds every
    start entry for its vertices); region queries consult the router only when
    the query rectangle actually straddles the shard boundary.
    """

    def __init__(self, router: "ShardRouter", shard_id: int) -> None:
        self._router = router
        self._shard_id = shard_id

    def _local_only(self, region: Rectangle) -> bool:
        grid = self._router.grid
        col_lo, col_hi, row_lo, row_hi = grid.span_of(region)
        if col_lo != col_hi or row_lo != row_hi:
            return False
        return row_lo * grid.cols + col_lo == self._shard_id

    @property
    def _local_index(self) -> GridIndex:
        return self._router.shards[self._shard_id].index

    def paths_starting_at(self, start: Point, region: Rectangle) -> List[MotionPathRecord]:
        return self._local_index.paths_starting_at(start, region)

    def end_vertices_in(self, region: Rectangle) -> Dict[Point, List[int]]:
        if self._local_only(region):
            return self._local_index.end_vertices_in(region)
        return self._router.index.end_vertices_in(region)

    def paths_from_into(self, start: Point, region: Rectangle) -> List[MotionPathRecord]:
        if self._local_only(region):
            return self._local_index.paths_from_into(start, region)
        return self._router.index.paths_from_into(start, region)

    def insert(self, path: MotionPath, created_at: int = 0) -> MotionPathRecord:
        return self._router.insert(path, created_at)


class ShardedGridIndex:
    """Router-backed facade with the :class:`GridIndex` query/update surface.

    Point operations go straight to the owning shard; region queries fan out
    to the contiguous block of shards the region overlaps and merge the
    per-shard answers.  The merge is exact: endpoint entries are partitioned
    across shards, so concatenation never duplicates an end entry and a seen
    set deduplicates paths whose two endpoints live in different shards.
    """

    def __init__(self, router: "ShardRouter") -> None:
        self._router = router
        self.config = router.global_grid_config

    # -- bookkeeping -------------------------------------------------------------

    def __len__(self) -> int:
        return sum(len(shard.index) for shard in self._router.shards)

    def __contains__(self, path_id: int) -> bool:
        return path_id in self._router.owners

    @property
    def records(self) -> Iterable[MotionPathRecord]:
        return chain.from_iterable(shard.index.records for shard in self._router.shards)

    def get(self, path_id: int) -> MotionPathRecord:
        shard = self._router.owners.get(path_id)
        if shard is None:
            raise CoordinatorError(f"motion path {path_id} is not in the index")
        return shard.index.get(path_id)

    # -- insertion / deletion -------------------------------------------------------

    def insert(self, path: MotionPath, created_at: int = 0) -> MotionPathRecord:
        return self._router.insert(path, created_at)

    def delete(self, path_id: int) -> None:
        self._router.delete(path_id)

    # -- queries ----------------------------------------------------------------------

    def paths_starting_at(self, start: Point, region: Rectangle) -> List[MotionPathRecord]:
        owner = self._router.shard_of(start)
        return owner.index.paths_starting_at(start, region)

    def paths_from_into(self, start: Point, region: Rectangle) -> List[MotionPathRecord]:
        results: List[MotionPathRecord] = []
        for shard in self._router.shards_overlapping(region):
            results.extend(shard.index.paths_from_into(start, region))
        return results

    def end_vertices_in(self, region: Rectangle) -> Dict[Point, List[int]]:
        vertices: Dict[Point, List[int]] = {}
        for shard in self._router.shards_overlapping(region):
            for vertex, path_ids in shard.index.end_vertices_in(region).items():
                vertices.setdefault(vertex, []).extend(path_ids)
        return vertices

    def paths_intersecting(self, region: Rectangle) -> List[MotionPathRecord]:
        seen = set()
        results: List[MotionPathRecord] = []
        for shard in self._router.shards_overlapping(region):
            for record in shard.index.paths_intersecting(region):
                if record.path_id not in seen:
                    seen.add(record.path_id)
                    results.append(record)
        return results

    # -- diagnostics --------------------------------------------------------------------------

    def cell_statistics(self) -> Dict[str, float]:
        """Grid occupancy aggregated over every shard's local grid."""
        occupied = 0
        total = 0
        max_entries = 0
        entry_sum = 0.0
        for shard in self._router.shards:
            stats = shard.index.cell_statistics()
            occupied += int(stats["occupied_cells"])
            total += int(stats["total_cells"])
            max_entries = max(max_entries, int(stats["max_entries_per_cell"]))
            entry_sum += stats["mean_entries_per_occupied_cell"] * stats["occupied_cells"]
        return {
            "occupied_cells": occupied,
            "total_cells": total,
            "max_entries_per_cell": max_entries,
            "mean_entries_per_occupied_cell": entry_sum / occupied if occupied else 0.0,
        }


class ShardedHotnessTracker:
    """Hotness facade over the per-shard trackers.

    Crossings are recorded with the shard owning the path; the epoch-boundary
    :meth:`advance_time` performs the deferred drain of every shard's expiry
    heap in one sweep and returns the union of vanished paths.
    """

    def __init__(self, router: "ShardRouter", window: int) -> None:
        self._router = router
        self.window = window

    def record_crossing(self, path_id: int, t_end: int) -> int:
        shard = self._router.owners.get(path_id)
        if shard is None:
            raise CoordinatorError(f"cannot record crossing of unknown path {path_id}")
        return shard.hotness.record_crossing(path_id, t_end)

    def advance_time(self, now: int) -> List[int]:
        vanished: List[int] = []
        for shard in self._router.shards:
            vanished.extend(shard.hotness.advance_time(now))
        return vanished

    def hotness(self, path_id: int) -> int:
        shard = self._router.owners.get(path_id)
        return shard.hotness.hotness(path_id) if shard is not None else 0

    def __contains__(self, path_id: int) -> bool:
        shard = self._router.owners.get(path_id)
        return shard is not None and path_id in shard.hotness

    def __len__(self) -> int:
        return sum(len(shard.hotness) for shard in self._router.shards)

    @property
    def pending_events(self) -> int:
        return sum(shard.hotness.pending_events for shard in self._router.shards)

    def items(self) -> Iterable[Tuple[int, int]]:
        return chain.from_iterable(shard.hotness.items() for shard in self._router.shards)

    def total_crossings(self) -> int:
        return sum(shard.hotness.total_crossings() for shard in self._router.shards)


class ShardedSinglePath:
    """Batched SinglePath epoch pipeline over the shard fleet.

    Drop-in replacement for :meth:`SinglePathStrategy.process_epoch`: the
    intake is grouped by shard and candidate generation runs as one pass per
    shard on the execution backend's worker pool, while the decision stage
    replays global submission order — directly on the serial backend, or per
    conflict group with deferred id renumbering on the parallel backends —
    so the outcome is identical to the single-shard strategy.
    """

    def __init__(self, router: "ShardRouter", backend: Optional[ExecutionBackend] = None) -> None:
        self._router = router
        self.backend = backend if backend is not None else SerialBackend()

    def close(self) -> None:
        """Release the backend's worker pool (revived lazily if reused)."""
        self.backend.close()

    def process_epoch(self, states: Sequence[ObjectState]) -> SinglePathEpochResult:
        result = SinglePathEpochResult()
        if not states:
            return result
        router = self._router

        # Stage 1: group the batch by owning shard — one dict operation per
        # message — collect the FSAs for the epoch's overlap structures and
        # route each FSA to the shards it overlaps (the overlap plan).
        # Duplicate reporters: like the candidate dict below, ``fsas`` keeps
        # only the *later* state's FSA per object — the overlap structures
        # hold one FSA per object, not per state message, while both state
        # messages are still decided against them.  This mirrors the
        # single-shard strategy bit for bit and is pinned by
        # tests/test_overlaps.py::TestDuplicateReports.
        routed: List[Tuple[ObjectState, Shard]] = []
        buckets: Dict[int, List[Tuple[int, ObjectState]]] = {}
        fsas: Dict[int, Rectangle] = {}
        for position, state in enumerate(states):
            shard = router.shard_of(state.start)
            routed.append((state, shard))
            buckets.setdefault(shard.shard_id, []).append((position, state))
            fsas[state.object_id] = state.fsa
        plan = plan_shard_overlaps(router.grid, buckets, fsas, router.overlap_halo)

        # Stage 2: per-shard candidate generation, one pass over each bucket,
        # mapped onto the backend's workers together with the shard-local
        # overlap-structure builds (both are read-only).  Candidate paths
        # start at the object's SSA start, which the bucket's shard owns, so
        # no cross-shard traffic happens here.  The per-object dict is
        # rebuilt in submission order afterwards: when one object reports
        # twice in an epoch the single-shard strategy keeps the later state's
        # candidates, and bucket order must not change which one wins.
        per_state, structures = self.backend.map_candidate_buckets(
            router, buckets, states, plan.pools
        )
        candidate_paths: Dict[int, List[CandidatePath]] = {}
        for position, state in enumerate(states):
            candidate_paths[state.object_id] = per_state[position]
        overlaps_of: Dict[int, FsaOverlapStructure] = {
            shard_id: structures[index] for shard_id, index in plan.pool_of_shard.items()
        }
        apply_co_occurrence_boost(candidate_paths)

        # Stage 3: decisions in global submission order.  Sequential order is
        # what makes the pipeline exact: within an epoch, later objects see
        # the paths and crossings earlier objects produced, exactly as the
        # single-shard strategy interleaves them.  Every decision consults
        # its own shard's local overlap structure, which answers exactly like
        # the global build (module docstring) at the default adaptive halo.
        if not self.backend.parallel_decisions:
            for state, shard in routed:
                result.tally(
                    shard.strategy.decide(
                        state,
                        candidate_paths[state.object_id],
                        overlaps_of[shard.shard_id],
                    )
                )
            return result

        # Parallel decision stage: non-conflicting groups commit concurrently
        # (submission order replayed within each group), with provisional path
        # ids renumbered to the serial allocation afterwards.  See the
        # :mod:`repro.coordinator.execution` docstring for the equivalence
        # argument.
        groups = conflict_groups(states, router.grid)

        def commit(group: List[int]) -> List[Tuple[int, SinglePathDecision]]:
            outcomes: List[Tuple[int, SinglePathDecision]] = []
            try:
                for position in group:
                    state, shard = routed[position]
                    router.set_commit_position(position)
                    outcomes.append(
                        (
                            position,
                            shard.strategy.decide(
                                state,
                                candidate_paths[state.object_id],
                                overlaps_of[shard.shard_id],
                            ),
                        )
                    )
            finally:
                router.set_commit_position(None)
            return outcomes

        decisions: List[Optional[SinglePathDecision]] = [None] * len(states)
        router.begin_parallel_commit(len(states))
        try:
            for chunk in self.backend.map_decision_groups(groups, commit):
                for position, decision in chunk:
                    decisions[position] = decision
        finally:
            id_mapping = router.finish_parallel_commit()
        for decision in decisions:
            final_id = id_mapping.get(decision.path_id)
            if final_id is not None:
                decision.path_id = final_id
            result.tally(decision)
        return result


class ShardRouter:
    """Owner of the shard fleet: id allocation, routing and the merge views.

    ``index``, ``hotness`` and ``pipeline`` expose the exact interfaces of
    :class:`GridIndex`, :class:`HotnessTracker` and
    :class:`SinglePathStrategy`, so the coordinator runs the same epoch loop
    whether it holds one shard or a fleet.
    """

    def __init__(
        self,
        bounds: Rectangle,
        window: int,
        cells_per_axis: int,
        num_shards: int,
        backend: Union[str, ExecutionBackend] = "serial",
        overlap_halo: Optional[int] = None,
        stitching: str = "exact",
    ) -> None:
        rows, cols = shard_layout(num_shards)
        self.grid = ShardGrid(bounds, rows, cols)
        self.global_grid_config = GridConfig(bounds, cells_per_axis)
        if overlap_halo is not None and overlap_halo < 0:
            raise ConfigurationError(
                f"overlap_halo must be None (adaptive) or >= 0, got {overlap_halo}"
            )
        if stitching not in STITCHING_MODES:
            raise ConfigurationError(
                f"stitching must be one of {', '.join(STITCHING_MODES)}, got {stitching!r}"
            )
        #: Halo of the shard-local overlap structures: ``None`` = adaptive
        #: exact halo (bit-for-bit with the global build), ``h`` = fixed ring
        #: of ``h`` neighbouring shards (see :func:`plan_shard_overlaps`).
        self.overlap_halo = overlap_halo
        #: Default mode of :meth:`stitch_epoch`: ``exact`` merges corridors
        #: across shard boundaries, ``off`` truncates them at the boundary.
        self.stitching = stitching
        #: Per-boundary ledgers of straddling paths: ``(shard_a, shard_b)``
        #: (sorted pair) -> ``{path_id: (start_shard, end_shard)}``.  A path
        #: whose endpoints are owned by different shards is recorded here on
        #: insert and dropped on delete, so the stitching merge can walk the
        #: boundaries without re-deriving ownership from geometry.  Both
        #: sides of the boundary see the entry (:meth:`boundary_ledger_of`).
        self.boundary_ledger: Dict[Tuple[int, int], Dict[int, Tuple[int, int]]] = {}
        #: Diagnostics of the most recent :meth:`stitch_epoch` run.
        self.stitch_stats: Dict[str, object] = {}
        #: Mutation journal replayed by process-backend replicas: one compact
        #: tuple per insert/delete, appended in commit order.  Recorded only
        #: when the backend consumes it (``needs_journal``), and truncated by
        #: the consumer once every replica has replayed a prefix.
        self.journal: List[tuple] = []
        self._journal_enabled = False
        # Parallel-commit state: while a commit is open, inserts performed by
        # group workers allocate the provisional id ``_commit_base + position``
        # of the deciding state (position communicated via a thread-local).
        self._commit_base: Optional[int] = None
        self._commit_log: List[Tuple[int, MotionPathRecord]] = []
        self._commit_tls = threading.local()
        # Shard grids must never be coarser than the global grid on either
        # axis (GridConfig is square, shards may not be): divide by the
        # smaller layout dimension so the worse axis matches the global cell
        # size and the other gets finer.  Cells are stored sparsely, so the
        # extra resolution costs nothing.
        shard_cells = max(1, cells_per_axis // min(rows, cols))
        self.owners: Dict[int, Shard] = {}
        self._next_path_id = 0
        self.shards: List[Shard] = []
        for row in range(rows):
            for col in range(cols):
                shard_id = row * cols + col
                sub_bounds = self.grid.sub_bounds(col, row)
                index = GridIndex(
                    GridConfig(sub_bounds, shard_cells), record_resolver=self._resolve
                )
                self.shards.append(
                    Shard(
                        shard_id=shard_id,
                        col=col,
                        row=row,
                        bounds=sub_bounds,
                        index=index,
                        hotness=HotnessTracker(window),
                        strategy=None,  # bound below, once the router views exist
                    )
                )
        self.index = ShardedGridIndex(self)
        self.hotness = ShardedHotnessTracker(self, window)
        if isinstance(backend, str):
            backend = create_backend(backend)
        self._journal_enabled = backend.needs_journal
        self.pipeline = ShardedSinglePath(self, backend)
        for shard in self.shards:
            shard.strategy = SinglePathStrategy(
                _ShardLocalView(self, shard.shard_id), self.hotness
            )

    # -- routing -----------------------------------------------------------------

    def shard_of(self, point: Point) -> Shard:
        return self.shards[self.grid.shard_id_of(point)]

    def shards_overlapping(self, region: Rectangle) -> Iterator[Shard]:
        for shard_id in self.grid.shard_ids_overlapping(region):
            yield self.shards[shard_id]

    def _resolve(self, path_id: int) -> Optional[MotionPathRecord]:
        """Foreign-record resolver for per-shard grids (straddling end entries)."""
        shard = self.owners.get(path_id)
        return shard.index.get(path_id) if shard is not None else None

    # -- global record lifecycle ---------------------------------------------------

    def insert(self, path: MotionPath, created_at: int = 0) -> MotionPathRecord:
        """Insert a path: global id, record with the start owner, entries per endpoint.

        During an open parallel commit the id is provisional (derived from the
        deciding state's submission position, a range disjoint from real ids)
        and the insertion is logged for renumbering; otherwise ids come
        straight off the global counter.
        """
        position = getattr(self._commit_tls, "position", None)
        if self._commit_base is not None and position is not None:
            record = MotionPathRecord(self._commit_base + position, path, created_at)
            self._commit_log.append((record.path_id, record))
        else:
            record = MotionPathRecord(self._next_path_id, path, created_at)
            self._next_path_id += 1
        start_owner = self.shard_of(path.start)
        end_owner = self.shard_of(path.end)
        start_owner.index.register(record)
        start_owner.index.add_entry(record, is_start=True)
        end_owner.index.add_entry(record, is_start=False)
        self.owners[record.path_id] = start_owner
        if start_owner is not end_owner:
            self._ledger_add(record.path_id, start_owner.shard_id, end_owner.shard_id)
        if self._journal_enabled:
            self.journal.append(
                (
                    "i",
                    record.path_id,
                    start_owner.shard_id,
                    path.start.x,
                    path.start.y,
                    path.end.x,
                    path.end.y,
                    created_at,
                )
            )
        return record

    def delete(self, path_id: int) -> None:
        """Remove a path's record and both endpoint entries, wherever they live."""
        owner = self.owners.get(path_id)
        if owner is None:
            raise CoordinatorError(f"motion path {path_id} is not in the index")
        record = owner.index.get(path_id)
        self.shard_of(record.path.start).index.remove_entry(
            path_id, record.path.start, is_start=True
        )
        end_owner = self.shard_of(record.path.end)
        end_owner.index.remove_entry(path_id, record.path.end, is_start=False)
        owner.index.unregister(path_id)
        del self.owners[path_id]
        if owner is not end_owner:
            self._ledger_discard(path_id, owner.shard_id, end_owner.shard_id)
        if self._journal_enabled:
            self.journal.append(("d", path_id, owner.shard_id))

    # -- boundary ledger -------------------------------------------------------------

    @staticmethod
    def _boundary_key(shard_a: int, shard_b: int) -> Tuple[int, int]:
        return (shard_a, shard_b) if shard_a <= shard_b else (shard_b, shard_a)

    def _ledger_add(self, path_id: int, start_shard: int, end_shard: int) -> None:
        key = self._boundary_key(start_shard, end_shard)
        self.boundary_ledger.setdefault(key, {})[path_id] = (start_shard, end_shard)

    def _ledger_discard(self, path_id: int, start_shard: int, end_shard: int) -> None:
        key = self._boundary_key(start_shard, end_shard)
        entries = self.boundary_ledger.get(key)
        if entries is not None and path_id in entries:
            del entries[path_id]
            if not entries:
                del self.boundary_ledger[key]

    def boundary_ledger_of(self, shard_id: int) -> Dict[int, Tuple[int, int]]:
        """One shard's view of the ledgers: every straddling path it co-owns.

        A straddling path is visible from both of its endpoint shards — the
        start owner holds the record, the end owner holds the end entry the
        stitching merge welds against.
        """
        view: Dict[int, Tuple[int, int]] = {}
        for (shard_a, shard_b), entries in self.boundary_ledger.items():
            if shard_id == shard_a or shard_id == shard_b:
                view.update(entries)
        return view

    # -- cross-shard corridor stitching ------------------------------------------------

    def stitch_epoch(self, mode: Optional[str] = None) -> List[CompositeCorridor]:
        """Stitch the current hot paths into composite corridors.

        Runs on demand after an epoch's stage-3 commit (the coordinator
        invalidates its cached corridor report at every commit and calls
        this on the first query that follows): every shard's hot fragments
        are gathered — straddling fragments,
        found by walking the per-boundary ledgers, are shipped to *both*
        endpoint owners — the per-shard weld passes run on the execution
        backend (:meth:`ExecutionBackend.map_stitch_buckets`), and the union
        of welds is chained into corridors.

        ``mode=None`` uses the router's configured default.  ``exact``
        reproduces the global stitch of the seed coordinator's hot paths bit
        for bit; ``off`` truncates at shard boundaries — by construction it
        is the exact chains cut at every cross-owner weld, so the deviation
        is exactly one extra corridor per reported ``boundary_welds`` (weld
        cycles included: the cycle break happens once, before the cut — the
        invariant the deviation harness pins).
        """
        mode = self.stitching if mode is None else mode
        if mode not in STITCHING_MODES:
            raise ConfigurationError(
                f"stitching mode must be one of {', '.join(STITCHING_MODES)}, got {mode!r}"
            )
        straddling: Dict[int, Tuple[int, int]] = {}
        for entries in self.boundary_ledger.values():
            straddling.update(entries)
        #: path_id -> (path, hotness, owner shard id) for every hot fragment.
        info: Dict[int, Tuple[MotionPath, int, int]] = {}
        tasks: Dict[int, List[StitchFragment]] = {}
        for shard in self.shards:
            shard_id = shard.shard_id
            for path_id, hotness in shard.hotness.items():
                if path_id not in self.owners:
                    continue  # hot entry without a live record (mirrors hot_paths())
                path = shard.index.get(path_id).path
                end_shard = straddling.get(path_id, (shard_id, shard_id))[1]
                info[path_id] = (path, hotness, shard_id)
                tasks.setdefault(shard_id, []).append(
                    (
                        path_id,
                        path.start.x,
                        path.start.y,
                        path.end.x,
                        path.end.y,
                        True,
                        end_shard == shard_id,
                    )
                )
                if end_shard != shard_id:
                    tasks.setdefault(end_shard, []).append(
                        (path_id, path.start.x, path.start.y, path.end.x, path.end.y, False, True)
                    )
        runs = self.pipeline.backend.map_stitch_buckets(self, tasks) if tasks else []
        successor = successors_from_runs(runs)
        owner_of = lambda path_id: info[path_id][2]
        chains = chain_fragments(info, successor)
        # Both weld stats count the welds the exact chaining actually
        # *consumes* (one closing weld per cycle drops out first): that
        # makes ``welds`` layout-independent — a cycle broken inside one
        # shard's run and a cycle broken by the merge report the same
        # number — keeps ``fragments - welds == corridors`` in exact mode,
        # and makes ``len(off corridors) == len(exact) + boundary_welds``
        # hold unconditionally.
        welds_used = sum(len(chain) - 1 for chain in chains)
        boundary_welds = sum(
            1
            for chain in chains
            for predecessor_id, successor_id in zip(chain, chain[1:])
            if owner_of(predecessor_id) != owner_of(successor_id)
        )
        if mode == "off":
            chains = split_chains_at_boundaries(chains, owner_of)
        corridors = build_corridors(chains, lambda path_id: info[path_id][:2])
        self.stitch_stats = {
            "mode": mode,
            "fragments": len(info),
            "welds": welds_used,
            "boundary_welds": boundary_welds,
            "corridors": len(corridors),
            "multi_segment_corridors": sum(
                1 for corridor in corridors if corridor.num_segments > 1
            ),
        }
        return corridors

    # -- parallel decision commits ---------------------------------------------------

    def set_commit_position(self, position: Optional[int]) -> None:
        """Bind the calling worker thread to the submission position it replays."""
        self._commit_tls.position = position

    def begin_parallel_commit(self, batch_size: int) -> None:
        """Open a parallel commit for an epoch of ``batch_size`` states.

        Provisional ids are ``_commit_base + position``; the base leaves room
        below it for the final ids (at most one insert per state), so the
        provisional range collides with neither pre-epoch nor renumbered ids.
        Per-shard hotness trackers buffer their expiry-event pushes for the
        span of the commit (crossings may carry provisional ids).
        """
        self._commit_base = self._next_path_id + batch_size
        self._commit_log = []
        for shard in self.shards:
            shard.hotness.begin_deferred()

    def finish_parallel_commit(self) -> Dict[int, int]:
        """Renumber the commit's insertions into global submission order.

        Sorting the commit log by provisional id is sorting by submission
        position, which is exactly the order the serial replay allocates ids
        in.  Returns the provisional -> final id mapping.
        """
        mapping: Dict[int, int] = {}
        hotness_renames: Dict[int, Dict[int, int]] = {}
        for provisional_id, record in sorted(self._commit_log, key=lambda item: item[0]):
            final_id = self._next_path_id
            self._next_path_id += 1
            mapping[provisional_id] = final_id
            owner = self.owners.pop(provisional_id)
            start, end = record.path.start, record.path.end
            end_owner = self.shard_of(end)
            owner.index.remove_entry(provisional_id, start, is_start=True)
            end_owner.index.remove_entry(provisional_id, end, is_start=False)
            owner.index.unregister(provisional_id)
            record.path_id = final_id
            owner.index.register(record)
            owner.index.add_entry(record, is_start=True)
            end_owner.index.add_entry(record, is_start=False)
            self.owners[final_id] = owner
            if owner is not end_owner:
                self._ledger_discard(provisional_id, owner.shard_id, end_owner.shard_id)
                self._ledger_add(final_id, owner.shard_id, end_owner.shard_id)
            hotness_renames.setdefault(owner.shard_id, {})[provisional_id] = final_id
            if self._journal_enabled:
                self.journal.append(("r", provisional_id, final_id, owner.shard_id))
        # Every shard flushes its deferred expiry events (crossings happen on
        # shards that inserted nothing too); renames re-key counters and the
        # buffered events without touching the existing heaps.
        for shard in self.shards:
            shard.hotness.flush_deferred(hotness_renames.get(shard.shard_id, {}))
        self._commit_base = None
        self._commit_log = []
        return mapping

    # -- diagnostics ----------------------------------------------------------------

    def shard_statistics(self) -> Dict[str, float]:
        """Load-balance diagnostics: how evenly records spread over the fleet."""
        sizes = [len(shard.index) for shard in self.shards]
        total = sum(sizes)
        mean = total / len(sizes) if sizes else 0.0
        return {
            "num_shards": len(self.shards),
            "total_records": total,
            "max_shard_records": max(sizes) if sizes else 0,
            "min_shard_records": min(sizes) if sizes else 0,
            "mean_shard_records": mean,
            "straddling_paths": sum(
                len(entries) for entries in self.boundary_ledger.values()
            ),
        }
