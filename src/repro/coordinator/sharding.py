"""Sharded coordinator subsystem: horizontal partitioning of the monitored area.

The paper's coordinator is a single process owning one grid index, one hotness
tracker and one SinglePath strategy.  To scale towards millions of objects the
monitored area is partitioned into a fleet of shards — by default a uniform
R x C *shard grid*, optionally a load-adaptive kd-split layout (see the
partition layer in :mod:`repro.coordinator.partition` and the rebalance
protocol below); every shard owns the full coordinator state for its cell:

* a :class:`~repro.coordinator.grid_index.GridIndex` holding the motion-path
  records whose **start** vertex falls in the shard, plus the endpoint entries
  the shard owns;
* a :class:`~repro.coordinator.hotness.HotnessTracker` with the expiry events
  of the paths the shard owns;
* a :class:`~repro.coordinator.single_path.SinglePathStrategy` bound to a
  shard-local index view.

**Endpoint-owner routing.**  A motion path is a segment whose two endpoints
may fall into different shards.  Each endpoint entry is indexed by the shard
that owns the endpoint's location; the record itself (and the path's hotness)
lives with the shard owning the *start* vertex.  A path straddling a shard
boundary therefore has its start entry and record in one shard and its end
entry in the neighbouring shard, which the neighbour resolves through the
router when a query returns that entry.  Point-to-shard assignment is the
active partition's (:attr:`ShardRouter.grid`): total over the plane, so
points outside the monitored area land in border shards, and every query
region fans out to exactly the shards whose cells it overlaps.

**Load-adaptive rebalancing.**  :meth:`ShardRouter.shard_statistics` exposes
how unevenly records spread over the fleet (``imbalance`` = max/mean shard
records); on skewed workloads (hot downtown cells vs. empty suburbs) a
uniform grid concentrates most of the state on a few shards, which
serialises the parallel epoch pipeline.  With ``partition="kd"`` the router
runs an epoch-boundary *rebalance protocol* (:meth:`ShardRouter.rebalance`,
checked by :meth:`maybe_rebalance` after every epoch): when the imbalance
exceeds the configured threshold, a fresh
:class:`~repro.coordinator.partition.KdSplitPartition` is fitted to the
live records' start-vertex density and the fleet *migrates* — grid-index
entries re-route by endpoint ownership, hotness counters and pending expiry
events follow their paths' new owners, boundary ledgers are recomputed, the
mutation journal resets and process-backend replicas re-bootstrap from a
fresh snapshot under a new load-aware shard→worker assignment.  Migration
moves state, never answers: ids, geometry, counters and event times are
preserved bit for bit, so a rebalanced fleet stays on the differential
harness's exactness contract (``TestRebalanceDifferential``).

**Batched epoch pipeline.**  :class:`ShardedSinglePath` processes an epoch's
submissions in three batched stages instead of per-message dispatch:

1. one pass groups the batch by owning shard (O(batch) dict operations);
2. each shard computes the Case 1 candidate sets for its whole bucket in a
   single pass — candidate paths start at the reporting object's SSA start,
   so the owning shard answers from one local grid cell without touching its
   neighbours;
3. decisions run in global submission order (preserving the sequential
   semantics of Algorithm 2), with Case 2/3 index reads fanning out only to
   the shards actually overlapped by the object's FSA.

Per-shard expiry queues are drained lazily at the epoch boundary (the
*deferred drain*): :meth:`ShardedHotnessTracker.advance_time` sweeps each
shard's event heap once per epoch rather than interleaving expiry work with
message intake.

**Parallel execution.**  Both stages of the pipeline can run on a worker pool
(see :mod:`repro.coordinator.execution`): the per-shard candidate passes are
read-only and embarrassingly parallel, and the decision stage is partitioned
into *conflict groups* — two states conflict when the shards touched by their
FSAs or SSA starts intersect — that commit concurrently while submission
order is replayed inside each group.  Parallel commits allocate provisional
path ids (``_commit_base + submission position``, a range disjoint from both
pre-epoch and final ids); because no decision ever compares the numeric id of
a path inserted in the same epoch, :meth:`ShardRouter.finish_parallel_commit`
can renumber the epoch's insertions in global submission order afterwards,
reproducing exactly the ids the serial replay allocates.  The full
correctness argument lives in the :mod:`repro.coordinator.execution`
docstring.

**Sharded overlap structure.**  The epoch's FSA overlap structure (``R_all``
of Algorithm 2) is partitioned by shard as well: stage 1 routes every
reporting object's FSA to the shards its rectangle overlaps, and each shard
with a bucket builds a *local* :class:`FsaOverlapStructure` from the FSAs of
its **halo** — by default the adaptive exact halo, every shard any of the
bucket's FSAs overlaps (see :func:`plan_shard_overlaps`).  The local build is
exact, not approximate: every region relevant to a query the shard's strategy
can issue (``smallest_region_containing`` on an end vertex inside a state's
FSA, ``hottest_region_intersecting`` / ``candidate_vertex_for`` on the FSA
itself) has all of its member FSAs intersecting that FSA, hence routed into
the halo pool — so the local structure stores exactly the relevant regions of
the global one, in the same relative order (the construction is a set
function of the pool below the region cap, and pool order is the submission
order filtered).  ``ShardRouter.overlap_halo`` trades this adaptive halo for
a fixed ring of neighbouring shards: cheaper to plan, but FSAs reaching past
the ring are truncated from the pool and decisions may deviate from the seed
coordinator — the differential harness quantifies the deviation
(``tests/test_sharding_equivalence.py::TestOverlapHalo``).

**Cross-shard corridor stitching.**  Hot motion paths chain by construction
(the coordinator's response endpoint becomes the reporting object's next SSA
start), and a hot corridor crossing the shard grid is such a chain whose links
are owned by different shards.  :meth:`ShardRouter.stitch_epoch` reassembles
them: every shard decides the *welds* at the vertices it owns (endpoint-owner
routing guarantees it holds every endpoint entry there, including the far
side of straddling paths — tracked per boundary in
:attr:`ShardRouter.boundary_ledger`), the weld passes run as per-shard tasks
on the execution backend, and a merge pass chains the union of welds into
:class:`~repro.coordinator.stitching.CompositeCorridor` objects.  In ``exact``
mode the result is bit-for-bit the global stitch of the seed coordinator's
hot paths (each vertex has exactly one owner, so the per-shard weld sets
partition the global one); ``off`` cuts the stitched chains at every
cross-shard weld, truncating corridors at shard boundaries — the deviation
the differential harness quantifies, exactly one extra corridor per cut
(``tests/test_stitching_equivalence.py``).

**Exactness.**  The sharded coordinator is behaviour-identical to the
single-shard coordinator, not an approximation: path ids come from one global
counter, decisions execute in submission order against the same live state
(or in conflict groups proven equivalent to it), every SinglePath tie-break
is a total order (independent of candidate enumeration order), shard-local
overlap structures answer exactly like the global build (previous paragraph),
and the top-k merge ranks the union of per-shard hot paths with the same
total key.  ``tests/test_sharding_equivalence.py`` holds the differential
harness asserting bit-for-bit equality on full simulation workloads, for
every execution backend.  Two deliberate, documented exceptions: a fixed
``overlap_halo`` relaxes exactness for bounded halo-planning cost (the
harness quantifies the deviation rather than assuming it away), and a
*saturated* overlap-region cap makes shard-local and global builds keep
different — still deterministic — region subsets, because the capped
construction is no longer a set function of its pool
(:meth:`FsaOverlapStructure.add`; the default cap of 10000 sits far above
any harness or benchmark epoch).
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass
from itertools import chain
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from repro.core.errors import ConfigurationError, CoordinatorError
from repro.core.geometry import Point, Rectangle
from repro.core.motion_path import MotionPath, MotionPathRecord
from repro.client.state import ObjectState
from repro.coordinator.execution import (
    ExecutionBackend,
    SerialBackend,
    conflict_groups,
    create_backend,
)
from repro.coordinator.columnar import resolve_kernel
from repro.coordinator.delta import EPOCH_MODES
from repro.coordinator.grid_index import GridConfig, GridIndex
from repro.coordinator.hotness import HotnessDeltaLog, HotnessTracker
from repro.coordinator.overlaps import FsaOverlapStructure, OverlapPoolCache
from repro.coordinator.partition import (
    PARTITION_KINDS,
    KdSplitPartition,
    Partition,
    UniformGridPartition,
    create_partition,
    shard_layout,
)
from repro.coordinator.stitching import (
    STITCHING_MODES,
    CompositeCorridor,
    IncrementalStitcher,
    StitchFragment,
    build_corridors,
    chain_fragments,
    split_chains_at_boundaries,
    successors_from_runs,
)
from repro.coordinator.single_path import (
    CandidatePath,
    SinglePathDecision,
    SinglePathEpochResult,
    SinglePathStrategy,
    apply_co_occurrence_boost,
)

__all__ = [
    "shard_layout",
    "PARTITION_KINDS",
    "ELASTIC_MODES",
    "Partition",
    "UniformGridPartition",
    "KdSplitPartition",
    "OverlapPlan",
    "plan_shard_overlaps",
    "ShardGrid",
    "Shard",
    "ShardRouter",
    "ShardedGridIndex",
    "ShardedHotnessTracker",
    "ShardedSinglePath",
]

#: Values accepted by the ``elastic`` knob (config layers and ``--elastic``):
#: ``off`` (the default) keeps the fleet size fixed at construction — every
#: rebalance preserves the shard count, exactly the pre-elastic behaviour;
#: ``auto`` enables the cost-model-driven controller that may split hot
#: shards, merge cold sibling cells or refit the layout at epoch boundaries,
#: bounded by ``min_shards``/``max_shards``.
ELASTIC_MODES: Tuple[str, ...] = ("off", "auto")


#: Backwards-compatible name of the uniform R x C partition (PR 1's only
#: layout); the partition layer itself lives in
#: :mod:`repro.coordinator.partition`.
ShardGrid = UniformGridPartition


@dataclass
class OverlapPlan:
    """Per-shard FSA pools for the epoch's shard-local overlap structures.

    ``pools`` holds the *distinct* pools only — neighbouring shards frequently
    resolve to the identical halo pool, and the built structures are read-only
    in the decision stage, so shards sharing a pool share one structure.
    Every pool preserves the global submission order of its members, which
    makes the shard-local build's region iteration order the global build's
    order restricted to the pool (first-encountered tie-breaks depend on it).
    """

    #: ``shard_id -> index into pools`` for every shard with a bucket.
    pool_of_shard: Dict[int, int]
    #: Distinct ``object_id -> FSA`` pools, each in submission order.
    pools: List[Dict[int, Rectangle]]


def plan_shard_overlaps(
    grid: Partition,
    buckets: Dict[int, List[Tuple[int, "ObjectState"]]],
    fsas: Dict[int, Rectangle],
    halo: Optional[int] = None,
) -> OverlapPlan:
    """Assign every bucketed shard the FSA pool of its overlap halo.

    ``grid`` is any :class:`~repro.coordinator.partition.Partition` — the
    plan derives halo shards from the partition's own routing and adjacency,
    never from grid arithmetic, so non-uniform (kd) layouts plan identically.
    ``fsas`` is the epoch's ``object_id -> final FSA`` map in submission order
    (a duplicate reporter keeps its first position but the later FSA — the
    same replacement the global build applies).  Each FSA is routed to every
    shard its rectangle overlaps; a shard's pool is the union of the FSAs
    routed to its *halo shards*:

    * ``halo=None`` (the default) uses the **adaptive exact halo**: the shard
      itself plus every shard overlapped by any FSA in its bucket.  Any FSA
      intersecting a bucket state's FSA shares a shard with it (the shard
      owning any point of the intersection — partitions cover the plane),
      hence lands in the pool — the construction the equivalence argument in
      the module docstring relies on.
    * ``halo=h >= 0`` uses a **fixed ring**: all shards within ``h``
      adjacency steps (:meth:`Partition.ring_of` — Chebyshev rings on the
      uniform grid, cell-adjacency BFS on a kd partition).  FSAs interacting
      only beyond the ring are truncated away, so queries may deviate from
      the global build; a ring covering the whole fleet is again exact.
    """
    spans = {
        object_id: frozenset(grid.shard_ids_overlapping(fsa))
        for object_id, fsa in fsas.items()
    }
    pool_of_shard: Dict[int, int] = {}
    pools: List[Dict[int, Rectangle]] = []
    index_of_members: Dict[Tuple[int, ...], int] = {}
    for shard_id, bucket in buckets.items():
        if halo is None:
            halo_shards = {shard_id}
            for _position, state in bucket:
                halo_shards.update(grid.shard_ids_overlapping(state.fsa))
        else:
            halo_shards = grid.ring_of(shard_id, halo)
        members = tuple(
            object_id for object_id, span in spans.items()
            if not halo_shards.isdisjoint(span)
        )
        index = index_of_members.get(members)
        if index is None:
            index = len(pools)
            index_of_members[members] = index
            pools.append({object_id: fsas[object_id] for object_id in members})
        pool_of_shard[shard_id] = index
    return OverlapPlan(pool_of_shard, pools)


@dataclass
class _ShardMigration:
    """State of one in-flight incremental (budgeted) fleet migration.

    The *outgoing* fleet (``ShardRouter.shards``) stays fully authoritative —
    routing, decisions, queries and epoch commits are untouched — while the
    *incoming* ``shadow`` fleet laid out by ``target`` warms a bounded number
    of records per epoch boundary (the double-read of the handoff protocol:
    old owner answers, new owner warms).  ``shadow_owners`` maps every warmed
    path to its incoming start-owner shard and becomes the router's owner
    table verbatim at handoff; ``shadow_ledger`` is the incoming boundary
    ledger, maintained incrementally as straddling records warm and unwound
    when a warmed record is deleted mid-flight.
    """

    target: Partition
    shadow: List["Shard"]
    shadow_owners: Dict[int, "Shard"]
    shadow_ledger: Dict[Tuple[int, int], Dict[int, Tuple[int, int]]]
    #: Epoch boundaries this migration has spanned, and records warmed so far.
    boundaries: int = 0
    moved: int = 0
    #: Router insert-counter reading at the previous boundary: the inserts
    #: since then are the epoch's churn, warmed *on top of* the budget.
    #: Deletions only ever shrink the unwarmed set, so the set loses at
    #: least ``budget`` records every boundary and the migration completes
    #: in at most ``ceil(initial_records / budget)`` boundaries no matter
    #: how fast the stream inserts.
    last_insert_total: int = 0


@dataclass
class Shard:
    """One shard: its sub-area plus the coordinator state it owns.

    Grid coordinates are deliberately absent — a cell's place in the layout
    is the partition's business (:attr:`ShardRouter.grid`), not the
    shard's.  ``bounds`` and ``index`` are replaced in place when the
    rebalance protocol migrates the fleet to a new partition; ``shard_id``,
    ``hotness`` (contents redistributed) and ``strategy`` (bound to a
    router-backed view that reads the live index) survive migrations.
    """

    shard_id: int
    bounds: Rectangle
    index: GridIndex
    hotness: HotnessTracker
    strategy: Optional[SinglePathStrategy]


class _ShardLocalView:
    """Index facade handed to a shard's SinglePath strategy.

    Case 1 candidate scans stay on the shard (the owning shard holds every
    start entry for its vertices); region queries consult the router only when
    the query rectangle actually straddles the shard boundary.
    """

    def __init__(self, router: "ShardRouter", shard_id: int) -> None:
        self._router = router
        self._shard_id = shard_id

    def _local_only(self, region: Rectangle) -> bool:
        return self._router.grid.single_shard_of(region) == self._shard_id

    @property
    def _local_index(self) -> GridIndex:
        return self._router.shards[self._shard_id].index

    def paths_starting_at(self, start: Point, region: Rectangle) -> List[MotionPathRecord]:
        return self._local_index.paths_starting_at(start, region)

    def end_vertices_in(self, region: Rectangle) -> Dict[Point, List[int]]:
        if self._local_only(region):
            return self._local_index.end_vertices_in(region)
        return self._router.index.end_vertices_in(region)

    def paths_from_into(self, start: Point, region: Rectangle) -> List[MotionPathRecord]:
        if self._local_only(region):
            return self._local_index.paths_from_into(start, region)
        return self._router.index.paths_from_into(start, region)

    def insert(self, path: MotionPath, created_at: int = 0) -> MotionPathRecord:
        return self._router.insert(path, created_at)


class ShardedGridIndex:
    """Router-backed facade with the :class:`GridIndex` query/update surface.

    Point operations go straight to the owning shard; region queries fan out
    to the contiguous block of shards the region overlaps and merge the
    per-shard answers.  The merge is exact: endpoint entries are partitioned
    across shards, so concatenation never duplicates an end entry and a seen
    set deduplicates paths whose two endpoints live in different shards.
    """

    def __init__(self, router: "ShardRouter") -> None:
        self._router = router
        self.config = router.global_grid_config

    # -- bookkeeping -------------------------------------------------------------

    def __len__(self) -> int:
        return sum(len(shard.index) for shard in self._router.shards)

    def __contains__(self, path_id: int) -> bool:
        return path_id in self._router.owners

    @property
    def records(self) -> Iterable[MotionPathRecord]:
        return chain.from_iterable(shard.index.records for shard in self._router.shards)

    def get(self, path_id: int) -> MotionPathRecord:
        shard = self._router.owners.get(path_id)
        if shard is None:
            raise CoordinatorError(f"motion path {path_id} is not in the index")
        return shard.index.get(path_id)

    # -- insertion / deletion -------------------------------------------------------

    def insert(self, path: MotionPath, created_at: int = 0) -> MotionPathRecord:
        return self._router.insert(path, created_at)

    def delete(self, path_id: int) -> None:
        self._router.delete(path_id)

    # -- queries ----------------------------------------------------------------------

    def paths_starting_at(self, start: Point, region: Rectangle) -> List[MotionPathRecord]:
        owner = self._router.shard_of(start)
        return owner.index.paths_starting_at(start, region)

    def paths_from_into(self, start: Point, region: Rectangle) -> List[MotionPathRecord]:
        results: List[MotionPathRecord] = []
        for shard in self._router.shards_overlapping(region):
            results.extend(shard.index.paths_from_into(start, region))
        return results

    def end_vertices_in(self, region: Rectangle) -> Dict[Point, List[int]]:
        vertices: Dict[Point, List[int]] = {}
        for shard in self._router.shards_overlapping(region):
            for vertex, path_ids in shard.index.end_vertices_in(region).items():
                vertices.setdefault(vertex, []).extend(path_ids)
        return vertices

    def paths_intersecting(self, region: Rectangle) -> List[MotionPathRecord]:
        seen = set()
        results: List[MotionPathRecord] = []
        for shard in self._router.shards_overlapping(region):
            for record in shard.index.paths_intersecting(region):
                if record.path_id not in seen:
                    seen.add(record.path_id)
                    results.append(record)
        return results

    # -- diagnostics --------------------------------------------------------------------------

    def cell_statistics(self) -> Dict[str, float]:
        """Grid occupancy aggregated over every shard's local grid."""
        occupied = 0
        total = 0
        max_entries = 0
        entry_sum = 0.0
        for shard in self._router.shards:
            stats = shard.index.cell_statistics()
            occupied += int(stats["occupied_cells"])
            total += int(stats["total_cells"])
            max_entries = max(max_entries, int(stats["max_entries_per_cell"]))
            entry_sum += stats["mean_entries_per_occupied_cell"] * stats["occupied_cells"]
        return {
            "occupied_cells": occupied,
            "total_cells": total,
            "max_entries_per_cell": max_entries,
            "mean_entries_per_occupied_cell": entry_sum / occupied if occupied else 0.0,
        }


class ShardedHotnessTracker:
    """Hotness facade over the per-shard trackers.

    Crossings are recorded with the shard owning the path; the epoch-boundary
    :meth:`advance_time` performs the deferred drain of every shard's expiry
    heap in one sweep and returns the union of vanished paths.
    """

    def __init__(self, router: "ShardRouter", window: int) -> None:
        self._router = router
        self.window = window

    def record_crossing(self, path_id: int, t_end: int) -> int:
        shard = self._router.owners.get(path_id)
        if shard is None:
            raise CoordinatorError(f"cannot record crossing of unknown path {path_id}")
        return shard.hotness.record_crossing(path_id, t_end)

    def advance_time(self, now: int) -> List[int]:
        vanished: List[int] = []
        for shard in self._router.shards:
            vanished.extend(shard.hotness.advance_time(now))
        return vanished

    def hotness(self, path_id: int) -> int:
        shard = self._router.owners.get(path_id)
        return shard.hotness.hotness(path_id) if shard is not None else 0

    def __contains__(self, path_id: int) -> bool:
        shard = self._router.owners.get(path_id)
        return shard is not None and path_id in shard.hotness

    def __len__(self) -> int:
        return sum(len(shard.hotness) for shard in self._router.shards)

    @property
    def pending_events(self) -> int:
        return sum(shard.hotness.pending_events for shard in self._router.shards)

    def items(self) -> Iterable[Tuple[int, int]]:
        return chain.from_iterable(shard.hotness.items() for shard in self._router.shards)

    def total_crossings(self) -> int:
        return sum(shard.hotness.total_crossings() for shard in self._router.shards)

    def drain_delta_log(self) -> HotnessDeltaLog:
        """Union of the per-shard delta logs since the last drain.

        Per-shard logs are chronological for that shard (a shard's crossings
        all come from one conflict group, replayed in submission order); the
        delta assembler sorts the merged categories, so the cross-shard
        interleaving here carries no information.
        """
        merged = HotnessDeltaLog()
        for shard in self._router.shards:
            merged.merge_from(shard.hotness.drain_delta_log())
        return merged


class ShardedSinglePath:
    """Batched SinglePath epoch pipeline over the shard fleet.

    Drop-in replacement for :meth:`SinglePathStrategy.process_epoch`: the
    intake is grouped by shard and candidate generation runs as one pass per
    shard on the execution backend's worker pool, while the decision stage
    replays global submission order — directly on the serial backend, or per
    conflict group with deferred id renumbering on the parallel backends —
    so the outcome is identical to the single-shard strategy.
    """

    def __init__(self, router: "ShardRouter", backend: Optional[ExecutionBackend] = None) -> None:
        self._router = router
        self.backend = backend if backend is not None else SerialBackend()

    def close(self) -> None:
        """Release the backend's worker pool (revived lazily if reused)."""
        self.backend.close()

    def process_epoch(self, states: Sequence[ObjectState]) -> SinglePathEpochResult:
        router = self._router
        # Per-epoch delta diagnostics reset up front so an empty epoch (or a
        # serial commit) never reports the previous epoch's numbers.
        router.last_renumbered = 0
        router.last_pool_stats = ShardRouter.zero_pool_stats()
        result = SinglePathEpochResult()
        if not states:
            router._note_epoch_buckets({}, {})
            return result

        # Stage 1: group the batch by owning shard — one dict operation per
        # message — collect the FSAs for the epoch's overlap structures and
        # route each FSA to the shards it overlaps (the overlap plan).
        # Duplicate reporters: like the candidate dict below, ``fsas`` keeps
        # only the *later* state's FSA per object — the overlap structures
        # hold one FSA per object, not per state message, while both state
        # messages are still decided against them.  This mirrors the
        # single-shard strategy bit for bit and is pinned by
        # tests/test_overlaps.py::TestDuplicateReports.
        routed: List[Tuple[ObjectState, Shard]] = []
        buckets: Dict[int, List[Tuple[int, ObjectState]]] = {}
        fsas: Dict[int, Rectangle] = {}
        for position, state in enumerate(states):
            shard = router.shard_of(state.start)
            routed.append((state, shard))
            buckets.setdefault(shard.shard_id, []).append((position, state))
            fsas[state.object_id] = state.fsa
        plan = plan_shard_overlaps(router.grid, buckets, fsas, router.overlap_halo)
        router._note_epoch_buckets(
            {shard_id: len(bucket) for shard_id, bucket in buckets.items()},
            {
                shard_id: len(plan.pools[index])
                for shard_id, index in plan.pool_of_shard.items()
            },
        )

        # Stage 2: per-shard candidate generation, one pass over each bucket,
        # mapped onto the backend's workers together with the shard-local
        # overlap-structure builds (both are read-only).  Candidate paths
        # start at the object's SSA start, which the bucket's shard owns, so
        # no cross-shard traffic happens here.  The per-object dict is
        # rebuilt in submission order afterwards: when one object reports
        # twice in an epoch the single-shard strategy keeps the later state's
        # candidates, and bucket order must not change which one wins.
        if router.pool_cache is not None:
            # Delta mode: resolve every pool against the cross-epoch cache
            # first and ship only the *misses* to the backend — under low
            # churn most pools repeat verbatim, so process replicas receive
            # a handful of dirtied pools instead of the full epoch shipment.
            # Bit-identical to the full build: exact hits reuse a structure
            # built from identical ordered content, prefix hits resume the
            # same shared-prefix construction ``build_structures`` uses.
            structures, miss_indexes, pool_stats = router.pool_cache.resolve(
                plan.pools
            )
            per_state, built = self.backend.map_candidate_buckets(
                router, buckets, states, [plan.pools[index] for index in miss_indexes]
            )
            for slot, structure in zip(miss_indexes, built):
                structures[slot] = structure
            router.pool_cache.store(plan.pools, structures)
            router.last_pool_stats = pool_stats
        else:
            per_state, structures = self.backend.map_candidate_buckets(
                router, buckets, states, plan.pools
            )
        candidate_paths: Dict[int, List[CandidatePath]] = {}
        for position, state in enumerate(states):
            candidate_paths[state.object_id] = per_state[position]
        overlaps_of: Dict[int, FsaOverlapStructure] = {
            shard_id: structures[index] for shard_id, index in plan.pool_of_shard.items()
        }
        apply_co_occurrence_boost(candidate_paths)

        # Stage 3: decisions in global submission order.  Sequential order is
        # what makes the pipeline exact: within an epoch, later objects see
        # the paths and crossings earlier objects produced, exactly as the
        # single-shard strategy interleaves them.  Every decision consults
        # its own shard's local overlap structure, which answers exactly like
        # the global build (module docstring) at the default adaptive halo.
        if not self.backend.parallel_decisions:
            for state, shard in routed:
                result.tally(
                    shard.strategy.decide(
                        state,
                        candidate_paths[state.object_id],
                        overlaps_of[shard.shard_id],
                    )
                )
            return result

        # Parallel decision stage: non-conflicting groups commit concurrently
        # (submission order replayed within each group), with provisional path
        # ids renumbered to the serial allocation afterwards.  See the
        # :mod:`repro.coordinator.execution` docstring for the equivalence
        # argument.
        groups = conflict_groups(states, router.grid)

        def commit(group: List[int]) -> List[Tuple[int, SinglePathDecision]]:
            outcomes: List[Tuple[int, SinglePathDecision]] = []
            try:
                for position in group:
                    state, shard = routed[position]
                    router.set_commit_position(position)
                    outcomes.append(
                        (
                            position,
                            shard.strategy.decide(
                                state,
                                candidate_paths[state.object_id],
                                overlaps_of[shard.shard_id],
                            ),
                        )
                    )
            finally:
                router.set_commit_position(None)
            return outcomes

        decisions: List[Optional[SinglePathDecision]] = [None] * len(states)
        router.begin_parallel_commit(len(states))
        try:
            for chunk in self.backend.map_decision_groups(groups, commit):
                for position, decision in chunk:
                    decisions[position] = decision
        finally:
            id_mapping = router.finish_parallel_commit()
        router.last_renumbered = len(id_mapping)
        for decision in decisions:
            final_id = id_mapping.get(decision.path_id)
            if final_id is not None:
                decision.path_id = final_id
            result.tally(decision)
        return result


class ShardRouter:
    """Owner of the shard fleet: id allocation, routing and the merge views.

    ``index``, ``hotness`` and ``pipeline`` expose the exact interfaces of
    :class:`GridIndex`, :class:`HotnessTracker` and
    :class:`SinglePathStrategy`, so the coordinator runs the same epoch loop
    whether it holds one shard or a fleet.
    """

    def __init__(
        self,
        bounds: Rectangle,
        window: int,
        cells_per_axis: int,
        num_shards: int,
        backend: Union[str, ExecutionBackend] = "serial",
        overlap_halo: Optional[int] = None,
        stitching: str = "exact",
        partition: Union[str, Partition] = "uniform",
        rebalance_threshold: float = 2.0,
        epoch_mode: str = "delta",
        kernel: str = "object",
        elastic: str = "off",
        migration_budget: int = 0,
        min_shards: Optional[int] = None,
        max_shards: Optional[int] = None,
    ) -> None:
        if isinstance(partition, Partition):
            if partition.num_shards != num_shards:
                raise ConfigurationError(
                    f"partition has {partition.num_shards} cells, expected {num_shards}"
                )
            if partition.bounds != bounds:
                raise ConfigurationError(
                    f"partition bounds {partition.bounds} do not match the "
                    f"monitored bounds {bounds}"
                )
            self.grid = partition
        else:
            self.grid = create_partition(partition, bounds, num_shards)
        if rebalance_threshold <= 1.0:
            raise ConfigurationError(
                f"rebalance_threshold must exceed 1.0 (max/mean load), got {rebalance_threshold}"
            )
        #: Load-imbalance ratio (``max_shard_records / mean_shard_records``)
        #: above which :meth:`maybe_rebalance` refits a kd partition.
        self.rebalance_threshold = rebalance_threshold
        # Auto-rebalancing follows the *configured* layout, not the active
        # one: a fleet configured uniform stays a deliberate fixed layout
        # even after a manual rebalance() migrates it onto kd splits.
        self._auto_rebalance = self.grid.kind == "kd"
        #: Number of completed partition migrations (diagnostics).
        self.rebalances = 0
        #: Lifetime record inserts — the in-flight migration protocol reads
        #: the increment between boundaries as the epoch's churn.
        self.inserts_total = 0
        if elastic not in ELASTIC_MODES:
            raise ConfigurationError(
                f"elastic must be one of {', '.join(ELASTIC_MODES)}, got {elastic!r}"
            )
        if migration_budget < 0:
            raise ConfigurationError(
                f"migration_budget must be >= 0 (0 = stop-the-world), got {migration_budget}"
            )
        resolved_min = 1 if min_shards is None else min_shards
        if resolved_min < 1:
            raise ConfigurationError(f"min_shards must be >= 1, got {min_shards}")
        if max_shards is not None and max_shards < resolved_min:
            raise ConfigurationError(
                f"max_shards ({max_shards}) must be >= min_shards ({resolved_min})"
            )
        #: ``off`` keeps the fleet size fixed at construction (every pre-PR-10
        #: behaviour, including the shard-count guard on explicit
        #: :meth:`rebalance` partitions); ``auto`` enables the elastic cost
        #: model: :meth:`maybe_rebalance` may split a hot shard, merge cold
        #: sibling cells or refit the layout, within ``[min_shards,
        #: max_shards]``.
        self.elastic = elastic
        #: Records moved per epoch boundary by an incremental migration; 0
        #: migrates stop-the-world at a single boundary (the PR-5 protocol).
        self.migration_budget = migration_budget
        self.min_shards = resolved_min
        self.max_shards = max_shards
        #: In-flight incremental migration, if any (see ``_begin_migration``).
        self._migration: Optional[_ShardMigration] = None
        #: Records warmed at the most recent epoch boundary / whether a
        #: migration was still mid-flight when it ended (delta assembly).
        self.last_migration_moved = 0
        self.last_migration_active = False
        #: Lifetime counters: elastic migrations begun, records warmed.
        self.migrations_started = 0
        self.records_migrated_total = 0
        # Deterministic per-shard load signals for the elastic cost model.
        # ``_activity_ewma`` smooths each shard's epoch bucket size (states
        # routed to the shard) — a pure function of the input stream, so
        # split/merge decisions stay deterministic and backend-independent.
        # ``_epoch_seconds_ewma`` attributes measured wall-clock epoch time
        # across shards proportionally to the same bucket sizes: the
        # *ratios* are deterministic, the scale is diagnostics-only and
        # never consulted by decisions.
        self._last_buckets: Dict[int, int] = {}
        self._last_halo_sizes: Dict[int, int] = {}
        self._activity_ewma: Dict[int, float] = {}
        self._epoch_seconds_ewma: Dict[int, float] = {}
        # Hysteresis: a split/merge condition must hold for this many
        # consecutive epoch boundaries before the fleet acts on it.
        self._elastic_patience = 2
        self._split_streak = 0
        self._merge_streak = 0
        # No-op-refit backoff: a workload the kd tree cannot split further
        # (e.g. a point mass) keeps its imbalance above the threshold
        # forever; after a refit that reproduced the active splits,
        # exponentially more epoch boundaries are skipped before fitting
        # again, bounding the amortised refit cost.  Purely epoch-counted,
        # so the schedule stays deterministic and backend-independent.
        self._refit_backoff = 0
        self._refit_wait = 0
        self.global_grid_config = GridConfig(bounds, cells_per_axis)
        if overlap_halo is not None and overlap_halo < 0:
            raise ConfigurationError(
                f"overlap_halo must be None (adaptive) or >= 0, got {overlap_halo}"
            )
        if stitching not in STITCHING_MODES:
            raise ConfigurationError(
                f"stitching must be one of {', '.join(STITCHING_MODES)}, got {stitching!r}"
            )
        if epoch_mode not in EPOCH_MODES:
            raise ConfigurationError(
                f"epoch_mode must be one of {', '.join(EPOCH_MODES)}, got {epoch_mode!r}"
            )
        #: ``delta`` (default) makes epoch cost proportional to what changed:
        #: halo pools are reused across epochs through :attr:`pool_cache`,
        #: the corridor report is maintained incrementally by the
        #: :class:`~repro.coordinator.stitching.IncrementalStitcher`, and
        #: per-shard hotness trackers log their transitions for the epoch's
        #: :class:`~repro.coordinator.delta.EpochDelta`.  ``full`` rebuilds
        #: everything per epoch — the differential reference the delta mode
        #: must match bit for bit.
        self.epoch_mode = epoch_mode
        #: Geometry kernel of the fleet's hot paths: ``object`` (scalar
        #: reference) or ``columnar`` (vectorized SoA kernels plus the
        #: process backend's shared-memory shipments) — bit-for-bit equal
        #: (see :mod:`repro.coordinator.columnar`).  Execution backends read
        #: this attribute rather than carrying their own copy.
        self.kernel = resolve_kernel(kernel)
        self.pool_cache: Optional[OverlapPoolCache] = (
            OverlapPoolCache(kernel=self.kernel) if epoch_mode == "delta" else None
        )
        self._stitcher: Optional[IncrementalStitcher] = (
            IncrementalStitcher() if epoch_mode == "delta" else None
        )
        #: Pool-cache outcome of the most recent epoch (zeros outside delta
        #: mode and on empty epochs).
        self.last_pool_stats: Dict[str, int] = self.zero_pool_stats()
        #: Provisional ids renumbered by the most recent epoch's commit.
        self.last_renumbered = 0
        #: Halo of the shard-local overlap structures: ``None`` = adaptive
        #: exact halo (bit-for-bit with the global build), ``h`` = fixed ring
        #: of ``h`` neighbouring shards (see :func:`plan_shard_overlaps`).
        self.overlap_halo = overlap_halo
        #: Default mode of :meth:`stitch_epoch`: ``exact`` merges corridors
        #: across shard boundaries, ``off`` truncates them at the boundary.
        self.stitching = stitching
        #: Per-boundary ledgers of straddling paths: ``(shard_a, shard_b)``
        #: (sorted pair) -> ``{path_id: (start_shard, end_shard)}``.  A path
        #: whose endpoints are owned by different shards is recorded here on
        #: insert and dropped on delete, so the stitching merge can walk the
        #: boundaries without re-deriving ownership from geometry.  Both
        #: sides of the boundary see the entry (:meth:`boundary_ledger_of`).
        self.boundary_ledger: Dict[Tuple[int, int], Dict[int, Tuple[int, int]]] = {}
        #: Diagnostics of the most recent :meth:`stitch_epoch` run.
        self.stitch_stats: Dict[str, object] = {}
        #: Mutation journal replayed by process-backend replicas: one compact
        #: tuple per insert/delete, appended in commit order.  Recorded only
        #: when the backend consumes it (``needs_journal``), and truncated by
        #: the consumer once every replica has replayed a prefix.
        self.journal: List[tuple] = []
        self._journal_enabled = False
        # Parallel-commit state: while a commit is open, inserts performed by
        # group workers allocate the provisional id ``_commit_base + position``
        # of the deciding state (position communicated via a thread-local).
        self._commit_base: Optional[int] = None
        self._commit_log: List[Tuple[int, MotionPathRecord]] = []
        self._commit_tls = threading.local()
        shard_cells = self._shard_cells()
        self.owners: Dict[int, Shard] = {}
        self._next_path_id = 0
        self.shards: List[Shard] = []
        for shard_id in range(num_shards):
            sub_bounds = self.grid.shard_bounds(shard_id)
            index = GridIndex(
                GridConfig(sub_bounds, shard_cells),
                record_resolver=self._resolve,
                kernel=self.kernel,
            )
            self.shards.append(
                Shard(
                    shard_id=shard_id,
                    bounds=sub_bounds,
                    index=index,
                    hotness=HotnessTracker(window),
                    strategy=None,  # bound below, once the router views exist
                )
            )
        if epoch_mode == "delta":
            for shard in self.shards:
                shard.hotness.enable_delta_log()
        self.index = ShardedGridIndex(self)
        self.hotness = ShardedHotnessTracker(self, window)
        if isinstance(backend, str):
            backend = create_backend(backend)
        self._journal_enabled = backend.needs_journal
        self.pipeline = ShardedSinglePath(self, backend)
        for shard in self.shards:
            shard.strategy = SinglePathStrategy(
                _ShardLocalView(self, shard.shard_id), self.hotness
            )

    # -- partition layer --------------------------------------------------------

    def _shard_cells(self, grid: Optional[Partition] = None) -> int:
        """Per-shard grid resolution under ``grid`` (default: the active partition).

        Shard grids should never be much coarser than the global grid
        (``GridConfig`` is square, shard cells may not be): divide the global
        resolution by the layout's smaller dimension (uniform) or by the
        square root of the fleet size (kd).  Resolution only affects cell
        fan-out cost — every query filters entries exactly — so unequal kd
        cells simply get proportionally finer grids where load is dense.
        """
        grid = self.grid if grid is None else grid
        if isinstance(grid, UniformGridPartition):
            divisor = min(grid.rows, grid.cols)
        else:
            divisor = max(1, math.isqrt(grid.num_shards))
        return max(1, self.global_grid_config.cells_per_axis // divisor)

    # -- load-adaptive rebalancing ----------------------------------------------

    def maybe_rebalance(self) -> bool:
        """Epoch-boundary rebalance check: refit a kd partition when skewed.

        Runs only on fleets *configured* with the kd partition (the uniform
        grid is a deliberate fixed layout — manually migrating one onto kd
        splits does not opt it into automatic rebalancing).  When the
        record-load imbalance (``max / mean`` shard
        records) exceeds :attr:`rebalance_threshold`, the partition is
        refitted to the current endpoint density and the fleet migrates; a
        refit that reproduces the active splits is skipped — and backed off
        exponentially — so a workload the kd tree cannot split further
        (e.g. a point mass) neither thrashes nor pays an O(records log
        records) fit at every epoch boundary.  Returns whether a migration
        happened.

        With ``elastic="auto"`` this is also the elastic controller's tick:
        an in-flight incremental migration advances by one budgeted warming
        step first (returning ``True`` only on the boundary the handoff
        completes); otherwise the cost model proposes a split / merge /
        refit action, and only when it proposes nothing does the legacy
        imbalance-triggered refit below run (on any fleet whose active
        layout is kd, since elastic fleets convert to kd at the first
        split).
        """
        self.last_migration_moved = 0
        self.last_migration_active = False
        if self._migration is not None:
            return self._advance_migration()
        if self.elastic == "auto":
            target = self._elastic_proposal()
            if target is not None and self.rebalance(target):
                return True
        auto_refit = self._auto_rebalance or (
            self.elastic == "auto" and self.grid.kind == "kd"
        )
        if not auto_refit or len(self.shards) <= 1:
            return False
        if self._refit_wait > 0:
            self._refit_wait -= 1
            return False
        statistics = self.shard_statistics()
        if not statistics["total_records"]:
            return False
        if statistics["imbalance"] <= self.rebalance_threshold:
            return False
        migrated = self.rebalance(
            KdSplitPartition.fit(
                self.grid.bounds, len(self.shards), self._endpoint_samples()
            )
        )
        if migrated:
            self._refit_backoff = 0
        else:
            self._refit_backoff = min(64, max(1, self._refit_backoff * 2))
            self._refit_wait = self._refit_backoff
        return migrated

    def rebalance(self, partition: Optional[Partition] = None) -> bool:
        """Refit the partition to the current load and migrate the fleet.

        With ``partition=None`` a :class:`KdSplitPartition` is fitted to the
        start vertices of every live record (record ownership follows the
        start vertex, so balancing start-vertex density balances record
        load), clamped into the monitored bounds exactly as routing clamps
        them.  An explicit ``partition`` migrates to that layout instead
        (it must keep the shard count).  Returns ``False`` without touching
        anything when the new partition routes identically to the active one.

        Migration preserves every observable: records keep their ids,
        geometry, creation times, hotness counters and pending expiry
        events — only *which shard holds them* changes — so a rebalanced
        fleet remains bit-for-bit equivalent to the seed coordinator (the
        differential harness forces migrations mid-replay to prove it).
        Must run at an epoch boundary: never inside a parallel commit.

        **Elastic fleets** (``elastic="auto"``) lift the shard-count guard:
        an explicit partition may grow or shrink the fleet, and
        ``partition=None`` asks the cost model for a forced proposal (split
        the hottest shard when the cap allows, refit otherwise) — the path
        chaos ``force_rebalance`` exercises.  With ``migration_budget > 0``
        the migration is *incremental*: this call starts it (returning
        ``True`` — the migration is committed to complete) and subsequent
        :meth:`maybe_rebalance` boundaries warm the incoming fleet until
        handoff.  A second rebalance request while one is in flight
        force-completes the in-flight migration first.
        """
        if self._commit_base is not None:
            raise CoordinatorError("cannot rebalance during an open parallel commit")
        if self._migration is not None:
            self._complete_migration()
        if partition is None:
            if self.elastic == "auto":
                partition = self._forced_elastic_partition()
            else:
                partition = KdSplitPartition.fit(
                    self.grid.bounds, len(self.shards), self._endpoint_samples()
                )
        elif partition.num_shards != len(self.shards) and self.elastic != "auto":
            raise ConfigurationError(
                f"rebalance must keep the shard count: fleet has {len(self.shards)}, "
                f"partition has {partition.num_shards}"
            )
        if partition.bounds != self.grid.bounds:
            raise ConfigurationError(
                f"rebalance must keep the monitored bounds: fleet covers "
                f"{self.grid.bounds}, partition covers {partition.bounds}"
            )
        if (
            partition.num_shards == len(self.shards)
            and partition.describe() == self.grid.describe()
        ):
            return False
        if self.migration_budget > 0:
            self._begin_migration(partition)
            return True
        self._migrate(partition)
        return True

    def _endpoint_samples(self) -> List[Tuple[float, float]]:
        """Start-vertex density sample for the kd refit, clamped into bounds.

        Uses every live record (deterministic: the fit sorts coordinates, so
        sample order is irrelevant).  Endpoints outside the monitored area
        are clamped in, mirroring how routing assigns them to border shards.
        """
        bounds = self.grid.bounds
        samples = []
        for path_id, shard in self.owners.items():
            start = shard.index.get(path_id).path.start
            samples.append(
                (
                    min(max(start.x, bounds.low.x), bounds.high.x),
                    min(max(start.y, bounds.low.y), bounds.high.y),
                )
            )
        return samples

    # -- elastic cost model -------------------------------------------------------

    def _note_epoch_buckets(
        self, buckets: Dict[int, int], halo_sizes: Dict[int, int]
    ) -> None:
        """Record the epoch's per-shard routing signals (called by the pipeline).

        ``buckets`` maps each shard to the number of states routed to it this
        epoch, ``halo_sizes`` to the size of its halo FSA pool.  Both are
        deterministic functions of the input stream, as is the activity EWMA
        maintained here — the property that keeps elastic decisions
        bit-for-bit reproducible across backends and reruns.
        """
        self._last_buckets = buckets
        self._last_halo_sizes = halo_sizes
        for shard in self.shards:
            previous = self._activity_ewma.get(shard.shard_id, 0.0)
            self._activity_ewma[shard.shard_id] = (
                0.5 * previous + 0.5 * buckets.get(shard.shard_id, 0)
            )

    def note_epoch_seconds(self, seconds: float) -> None:
        """Attribute one epoch's measured wall-clock across the fleet.

        Called by ``Coordinator.run_epoch`` with the epoch's elapsed seconds.
        Each shard is attributed time proportionally to its bucket share —
        the shards the epoch actually routed work to — and the per-shard EWMA
        is surfaced through :meth:`shard_statistics`
        (``max_shard_epoch_seconds`` / ``mean_shard_epoch_seconds``).  The
        cost model reads only the deterministic *ratios* underlying this
        attribution (the activity EWMA), never the wall-clock scale, so
        timing noise cannot change a fleet decision.
        """
        if not self.shards:
            return
        total = sum(self._last_buckets.values())
        for shard in self.shards:
            if total:
                share = seconds * self._last_buckets.get(shard.shard_id, 0) / total
            else:
                share = seconds / len(self.shards)
            previous = self._epoch_seconds_ewma.get(shard.shard_id)
            self._epoch_seconds_ewma[shard.shard_id] = (
                share if previous is None else 0.5 * previous + 0.5 * share
            )
        live = {shard.shard_id for shard in self.shards}
        for shard_id in [key for key in self._epoch_seconds_ewma if key not in live]:
            del self._epoch_seconds_ewma[shard_id]

    def _elastic_loads(self) -> Dict[int, float]:
        """Combined per-shard load score consumed by the elastic cost model.

        Blends the shard-statistics signals: owned records (state size),
        straddling paths on the shard's boundaries (stitching and ledger
        cost, counted for both endpoint owners), the shard's halo pool size
        (overlap-structure build cost) and the activity EWMA (epoch routing
        pressure — the deterministic stand-in for per-shard epoch time).
        Every term is a deterministic function of the input stream.
        """
        straddling: Dict[int, int] = {}
        for (shard_a, shard_b), entries in self.boundary_ledger.items():
            straddling[shard_a] = straddling.get(shard_a, 0) + len(entries)
            straddling[shard_b] = straddling.get(shard_b, 0) + len(entries)
        loads: Dict[int, float] = {}
        for shard in self.shards:
            shard_id = shard.shard_id
            loads[shard_id] = (
                len(shard.index)
                + 2.0 * straddling.get(shard_id, 0)
                + 0.25 * self._last_halo_sizes.get(shard_id, 0)
                + self._activity_ewma.get(shard_id, 0.0)
            )
        return loads

    def _hottest_shard(self, loads: Dict[int, float]) -> int:
        """Highest-load shard id; load ties break toward the lowest id."""
        return max(loads, key=lambda shard_id: (loads[shard_id], -shard_id))

    def _elastic_proposal(self) -> Optional[Partition]:
        """One elastic controller tick: propose a new partition, or nothing.

        Decision order: grow toward the ``min_shards`` floor unconditionally;
        split the hottest shard when its combined load exceeds
        ``rebalance_threshold`` times the fleet mean (and the cap allows);
        merge the coldest mergeable sibling pair when the merged cell would
        carry at most half the *post-merge* mean load (and the floor
        allows).  Split and merge each require their condition to hold for
        ``_elastic_patience`` consecutive boundaries — hysteresis, so one
        bursty epoch cannot thrash the fleet.  Refit is not proposed here:
        the legacy imbalance-triggered kd refit in :meth:`maybe_rebalance`
        (with its no-op backoff) remains the refit path.
        """
        loads = self._elastic_loads()
        total = sum(loads.values())
        num_shards = len(self.shards)
        if num_shards < self.min_shards:
            if not self.owners:
                return None  # nothing to split against yet
            try:
                return self.grid.split(
                    self._hottest_shard(loads), self._endpoint_samples()
                )
            except ConfigurationError:
                return None  # degenerate (point-mass) cell: cannot split
        if not total:
            self._split_streak = 0
            self._merge_streak = 0
            return None
        mean = total / num_shards
        at_cap = self.max_shards is not None and num_shards >= self.max_shards
        hottest = self._hottest_shard(loads)
        if not at_cap and loads[hottest] > self.rebalance_threshold * mean:
            self._split_streak += 1
            if self._split_streak >= self._elastic_patience:
                self._split_streak = 0
                try:
                    return self.grid.split(hottest, self._endpoint_samples())
                except ConfigurationError:
                    pass  # degenerate cell: fall through to merge checks
        else:
            self._split_streak = 0
        if num_shards > self.min_shards:
            best: Optional[Tuple[float, int, int]] = None
            for pair_a, pair_b in self.grid.mergeable_pairs():
                combined = loads.get(pair_a, 0.0) + loads.get(pair_b, 0.0)
                if best is None or combined < best[0]:
                    best = (combined, pair_a, pair_b)
            if best is not None and best[0] <= 0.5 * total / (num_shards - 1):
                self._merge_streak += 1
                if self._merge_streak >= self._elastic_patience:
                    self._merge_streak = 0
                    return self.grid.merge(best[1], best[2])
            else:
                self._merge_streak = 0
        else:
            self._merge_streak = 0
        return None

    def _forced_elastic_partition(self) -> Partition:
        """Partition for a forced (chaos / manual) rebalance under elastic auto.

        Prefers growing the hottest shard — the elastic action worth
        exercising under fault injection — and falls back to a kd refit at
        the current count when the fleet sits at ``max_shards``, holds no
        records, or the hottest cell is degenerate.
        """
        at_cap = self.max_shards is not None and len(self.shards) >= self.max_shards
        if not at_cap and self.owners:
            try:
                return self.grid.split(
                    self._hottest_shard(self._elastic_loads()),
                    self._endpoint_samples(),
                )
            except ConfigurationError:
                pass
        return KdSplitPartition.fit(
            self.grid.bounds, len(self.shards), self._endpoint_samples()
        )

    # -- incremental migration protocol -------------------------------------------

    def _begin_migration(self, partition: Partition) -> None:
        """Start an incremental migration onto ``partition``.

        Builds the incoming shadow fleet — empty :class:`GridIndex` /
        :class:`HotnessTracker` state laid out by the target partition — and
        leaves the outgoing fleet fully authoritative.  Subsequent
        :meth:`maybe_rebalance` boundaries warm up to ``migration_budget``
        records each (:meth:`_advance_migration`) until everything live is
        warmed, then hand off atomically.
        """
        shard_cells = self._shard_cells(partition)
        window = self.hotness.window
        shadow: List[Shard] = []
        for shard_id in range(partition.num_shards):
            sub_bounds = partition.shard_bounds(shard_id)
            shadow.append(
                Shard(
                    shard_id=shard_id,
                    bounds=sub_bounds,
                    index=GridIndex(
                        GridConfig(sub_bounds, shard_cells),
                        record_resolver=self._resolve,
                        kernel=self.kernel,
                    ),
                    hotness=HotnessTracker(window),
                    strategy=None,  # bound at handoff
                )
            )
        self._migration = _ShardMigration(
            partition, shadow, {}, {}, last_insert_total=self.inserts_total
        )
        self.migrations_started += 1

    def _warm_record(
        self, migration: _ShardMigration, path_id: int, record: MotionPathRecord
    ) -> None:
        """Warm one live record onto the incoming fleet (the double-read write).

        Registers the record and both endpoint entries with its incoming
        owners and mirrors the straddling-path ledger entry.  Records are
        geometrically immutable after insert and warming happens only at
        epoch boundaries (after any parallel commit renumbered its ids), so
        a warmed record can go stale in exactly one way — deletion — which
        :meth:`delete` unwinds from the shadow state directly.  The warmed
        hotness counter is provisional (handoff replaces it with the exact
        export/adopt transfer).
        """
        target = migration.target
        start_owner = migration.shadow[target.shard_id_of(record.path.start)]
        end_owner = migration.shadow[target.shard_id_of(record.path.end)]
        start_owner.index.register(record)
        start_owner.index.add_entry(record, is_start=True)
        end_owner.index.add_entry(record, is_start=False)
        old_owner = self.owners[path_id]
        start_owner.hotness.adopt_count(path_id, old_owner.hotness.hotness(path_id))
        migration.shadow_owners[path_id] = start_owner
        if start_owner is not end_owner:
            key = self._boundary_key(start_owner.shard_id, end_owner.shard_id)
            migration.shadow_ledger.setdefault(key, {})[path_id] = (
                start_owner.shard_id,
                end_owner.shard_id,
            )

    def _advance_migration(self) -> bool:
        """Warm one epoch boundary's budget of records; hand off when done.

        Scans the owner table in insertion order (deterministic) and warms
        the first *quota* records not yet warmed, where the quota is the
        ``migration_budget`` plus the number of records inserted since the
        previous boundary — the budget paces the backfill of pre-migration
        records while the churn top-up keeps pace with new inserts
        (deletions only shrink the unwarmed set), so the set loses at least
        the budget every boundary and the migration completes in at most
        ``ceil(initial_records / budget)`` boundaries.  Both terms are
        stream-deterministic.  Returns ``True`` only on the boundary the
        handoff completes — warming boundaries are observable-invisible.
        """
        migration = self._migration
        assert migration is not None
        quota = self.migration_budget + (
            self.inserts_total - migration.last_insert_total
        )
        migration.last_insert_total = self.inserts_total
        moved = 0
        for path_id, shard in self.owners.items():
            if moved >= quota:
                break
            if path_id in migration.shadow_owners:
                continue
            self._warm_record(migration, path_id, shard.index.get(path_id))
            moved += 1
        migration.boundaries += 1
        migration.moved += moved
        self.last_migration_moved = moved
        self.records_migrated_total += moved
        if len(migration.shadow_owners) >= len(self.owners):
            self._handoff()
            return True
        self.last_migration_active = True
        return False

    def _complete_migration(self) -> None:
        """Force-complete the in-flight migration: warm the remainder, hand off.

        Used when a new rebalance request arrives mid-flight — the fleet
        cannot track two target layouts, so the committed migration finishes
        (unbudgeted) before the new request is considered.
        """
        migration = self._migration
        assert migration is not None
        moved = 0
        for path_id, shard in self.owners.items():
            if path_id not in migration.shadow_owners:
                self._warm_record(migration, path_id, shard.index.get(path_id))
                moved += 1
        migration.moved += moved
        self.last_migration_moved += moved
        self.records_migrated_total += moved
        self._handoff()

    def _handoff(self) -> None:
        """Atomically promote the warmed shadow fleet to authoritative.

        The promoted state is, by construction, exactly what the
        stop-the-world :meth:`_migrate` would produce at this boundary:
        grid-index contents were warmed record-by-record with endpoint-owner
        routing, the boundary ledger followed the straddling records, and
        hotness is transferred through the same exact export/adopt protocol
        — the provisional warm counters are discarded first, because
        ``adopt_count`` accumulates and would double-count them.  Pending
        delta-log events recorded this epoch by the outgoing trackers are
        absorbed by the incoming fleet so delta assembly loses nothing.
        ``OverlapPoolCache`` entries need no action: pools are
        content-addressed, so cached structures follow their records across
        any layout change.
        """
        migration = self._migration
        assert migration is not None
        window = self.hotness.window
        carried: Optional[HotnessDeltaLog] = None
        if self.epoch_mode == "delta":
            carried = HotnessDeltaLog()
            for shard in self.shards:
                carried.merge_from(shard.hotness.drain_delta_log())
        # Discard the provisional warm counters; re-create the incoming
        # trackers fresh for the exact transfer below.
        for shard in migration.shadow:
            shard.hotness = HotnessTracker(window)
            if self.epoch_mode == "delta":
                shard.hotness.enable_delta_log()
        exported = [shard.hotness.export_state() for shard in self.shards]
        old_bounds = [shard.bounds for shard in self.shards]
        old_cells = self._shard_cells()
        old_owner_ids = {
            path_id: shard.shard_id for path_id, shard in self.owners.items()
        }
        self.grid = migration.target
        self.shards = migration.shadow
        self.owners = migration.shadow_owners
        self.boundary_ledger = migration.shadow_ledger
        for previous_shard, (counters, events) in enumerate(exported):
            # Orphan rule (hotness without a live record): stay with the
            # previous shard *position*, clamped into the new fleet — a
            # shrink can leave the old position without a successor.
            fallback = self.shards[min(previous_shard, len(self.shards) - 1)]
            for path_id, count in counters.items():
                owner = self.owners.get(path_id, fallback)
                owner.hotness.adopt_count(path_id, count)
            for expiry, path_id in events:
                owner = self.owners.get(path_id, fallback)
                owner.hotness.adopt_event(expiry, path_id)
        if carried is not None:
            self.shards[0].hotness.absorb_delta_log(carried)
        for shard in self.shards:
            shard.strategy = SinglePathStrategy(
                _ShardLocalView(self, shard.shard_id), self.hotness
            )
        self._migration = None
        self._reset_elastic_signals()
        if self._journal_enabled:
            self.journal.clear()
        self.pipeline.backend.on_rebalance(
            self._fleet_update(old_bounds, old_cells, old_owner_ids)
        )
        self.rebalances += 1

    def _reset_elastic_signals(self) -> None:
        """Drop per-shard signal state after a layout change (new load profile)."""
        self._last_buckets = {}
        self._last_halo_sizes = {}
        self._activity_ewma = {}
        self._epoch_seconds_ewma = {}
        self._split_streak = 0
        self._merge_streak = 0

    def _fleet_update(
        self,
        old_bounds: List[Rectangle],
        old_cells: int,
        old_owner_ids: Dict[int, int],
    ) -> Dict[str, object]:
        """Describe a completed migration for the execution backend.

        ``unchanged`` holds the shard ids whose replica-visible state is
        byte-identical across the migration — same bounds, same per-shard
        grid resolution and the same owned record set — so a process backend
        can keep those shards' replicas alive instead of tearing the whole
        fleet down (the id-stable split/merge numbering of the partition
        layer exists to make this set large).
        """
        new_owned: Dict[int, set] = {shard.shard_id: set() for shard in self.shards}
        for path_id, shard in self.owners.items():
            new_owned[shard.shard_id].add(path_id)
        old_owned: Dict[int, set] = {}
        for path_id, shard_id in old_owner_ids.items():
            old_owned.setdefault(shard_id, set()).add(path_id)
        unchanged = set()
        if old_cells == self._shard_cells():
            for shard in self.shards:
                shard_id = shard.shard_id
                if (
                    shard_id < len(old_bounds)
                    and old_bounds[shard_id] == shard.bounds
                    and old_owned.get(shard_id, set()) == new_owned[shard_id]
                ):
                    unchanged.add(shard_id)
        return {
            "unchanged": unchanged,
            "num_shards": len(self.shards),
            "loads": [len(shard.index) for shard in self.shards],
        }

    def _migrate(self, partition: Partition) -> None:
        """Move every piece of per-shard state onto ``partition``'s layout.

        GridIndex entries are re-routed by endpoint ownership, hotness
        counters and pending expiry events follow each path's new owner
        (heap order is re-established per shard, and pops drain in sorted
        ``(expiry, path_id)`` order regardless of arrangement, so deferral
        of the rebuild is not observable), and the boundary ledgers are
        recomputed from the migrated records.  Hotness entries whose record
        is gone (possible via direct index manipulation) stay with their
        previous shard id so their expiry events keep draining.  The
        mutation journal is reset and the execution backend told to
        re-bootstrap: process workers respawn lazily with a fresh snapshot
        of the migrated fleet and a new load-aware shard assignment.
        """
        records = [
            (path_id, shard.index.get(path_id)) for path_id, shard in self.owners.items()
        ]
        migrated_hotness = [shard.hotness.export_state() for shard in self.shards]
        old_bounds = [shard.bounds for shard in self.shards]
        old_cells = self._shard_cells()
        old_owner_ids = {
            path_id: shard.shard_id for path_id, shard in self.owners.items()
        }
        # Elastic migrations may change the fleet size: dropped tail shards'
        # pending delta-log events are carried over (their counters and
        # expiry events migrate through export/adopt below), appended shards
        # start with fresh trackers.
        carried: Optional[HotnessDeltaLog] = None
        if self.epoch_mode == "delta" and partition.num_shards < len(self.shards):
            carried = HotnessDeltaLog()
            for shard in self.shards[partition.num_shards :]:
                carried.merge_from(shard.hotness.drain_delta_log())
        window = self.hotness.window
        self.grid = partition
        shard_cells = self._shard_cells()
        del self.shards[partition.num_shards :]
        while len(self.shards) < partition.num_shards:
            hotness = HotnessTracker(window)
            if self.epoch_mode == "delta":
                hotness.enable_delta_log()
            self.shards.append(
                Shard(
                    shard_id=len(self.shards),
                    bounds=partition.shard_bounds(len(self.shards)),
                    index=None,  # built in the loop below, like every shard's
                    hotness=hotness,
                    strategy=SinglePathStrategy(
                        _ShardLocalView(self, len(self.shards)), self.hotness
                    ),
                )
            )
        for shard in self.shards:
            shard.bounds = partition.shard_bounds(shard.shard_id)
            shard.index = GridIndex(
                GridConfig(shard.bounds, shard_cells),
                record_resolver=self._resolve,
                kernel=self.kernel,
            )
        self.owners.clear()
        self.boundary_ledger.clear()
        for path_id, record in records:
            start_owner = self.shard_of(record.path.start)
            end_owner = self.shard_of(record.path.end)
            start_owner.index.register(record)
            start_owner.index.add_entry(record, is_start=True)
            end_owner.index.add_entry(record, is_start=False)
            self.owners[path_id] = start_owner
            if start_owner is not end_owner:
                self._ledger_add(path_id, start_owner.shard_id, end_owner.shard_id)
        for previous_shard, (counters, events) in enumerate(migrated_hotness):
            # Orphan rule: hotness without a live record stays with its
            # previous shard *position*, clamped into the new fleet — after
            # a shrink the old position may have no successor, and counters
            # and events must land on the same shard so expiry keeps
            # draining (pinned by tests/test_rebalancing.py's back-to-back
            # migration regression).
            fallback = self.shards[min(previous_shard, len(self.shards) - 1)]
            for path_id, count in counters.items():
                owner = self.owners.get(path_id, fallback)
                owner.hotness.adopt_count(path_id, count)
            for expiry, path_id in events:
                owner = self.owners.get(path_id, fallback)
                owner.hotness.adopt_event(expiry, path_id)
        if carried is not None:
            self.shards[0].hotness.absorb_delta_log(carried)
        self._reset_elastic_signals()
        if self._journal_enabled:
            self.journal.clear()
        self.pipeline.backend.on_rebalance(
            self._fleet_update(old_bounds, old_cells, old_owner_ids)
        )
        self.rebalances += 1

    # -- routing -----------------------------------------------------------------

    def shard_of(self, point: Point) -> Shard:
        return self.shards[self.grid.shard_id_of(point)]

    def shards_overlapping(self, region: Rectangle) -> Iterator[Shard]:
        for shard_id in self.grid.shard_ids_overlapping(region):
            yield self.shards[shard_id]

    def _resolve(self, path_id: int) -> Optional[MotionPathRecord]:
        """Foreign-record resolver for per-shard grids (straddling end entries)."""
        shard = self.owners.get(path_id)
        return shard.index.get(path_id) if shard is not None else None

    # -- global record lifecycle ---------------------------------------------------

    def insert(self, path: MotionPath, created_at: int = 0) -> MotionPathRecord:
        """Insert a path: global id, record with the start owner, entries per endpoint.

        During an open parallel commit the id is provisional (derived from the
        deciding state's submission position, a range disjoint from real ids)
        and the insertion is logged for renumbering; otherwise ids come
        straight off the global counter.
        """
        position = getattr(self._commit_tls, "position", None)
        if self._commit_base is not None and position is not None:
            record = MotionPathRecord(self._commit_base + position, path, created_at)
            self._commit_log.append((record.path_id, record))
        else:
            record = MotionPathRecord(self._next_path_id, path, created_at)
            self._next_path_id += 1
        start_owner = self.shard_of(path.start)
        end_owner = self.shard_of(path.end)
        start_owner.index.register(record)
        start_owner.index.add_entry(record, is_start=True)
        end_owner.index.add_entry(record, is_start=False)
        self.owners[record.path_id] = start_owner
        self.inserts_total += 1
        if start_owner is not end_owner:
            self._ledger_add(record.path_id, start_owner.shard_id, end_owner.shard_id)
        if self._journal_enabled:
            self.journal.append(
                (
                    "i",
                    record.path_id,
                    start_owner.shard_id,
                    path.start.x,
                    path.start.y,
                    path.end.x,
                    path.end.y,
                    created_at,
                )
            )
        return record

    def delete(self, path_id: int) -> None:
        """Remove a path's record and both endpoint entries, wherever they live."""
        owner = self.owners.get(path_id)
        if owner is None:
            raise CoordinatorError(f"motion path {path_id} is not in the index")
        record = owner.index.get(path_id)
        self.shard_of(record.path.start).index.remove_entry(
            path_id, record.path.start, is_start=True
        )
        end_owner = self.shard_of(record.path.end)
        end_owner.index.remove_entry(path_id, record.path.end, is_start=False)
        owner.index.unregister(path_id)
        del self.owners[path_id]
        if owner is not end_owner:
            self._ledger_discard(path_id, owner.shard_id, end_owner.shard_id)
        if self._journal_enabled:
            self.journal.append(("d", path_id, owner.shard_id))
        if self._migration is not None:
            # Deletion is the only way a warmed record can go stale (geometry
            # is immutable and warmed ids are final): unwind it from the
            # incoming fleet so the handoff state stays exactly what
            # stop-the-world migration would produce.
            migration = self._migration
            shadow_start = migration.shadow_owners.pop(path_id, None)
            if shadow_start is not None:
                target = migration.target
                shadow_end = migration.shadow[target.shard_id_of(record.path.end)]
                shadow_start.index.remove_entry(
                    path_id, record.path.start, is_start=True
                )
                shadow_end.index.remove_entry(path_id, record.path.end, is_start=False)
                shadow_start.index.unregister(path_id)
                if shadow_start is not shadow_end:
                    key = self._boundary_key(
                        shadow_start.shard_id, shadow_end.shard_id
                    )
                    entries = migration.shadow_ledger.get(key)
                    if entries is not None and path_id in entries:
                        del entries[path_id]
                        if not entries:
                            del migration.shadow_ledger[key]

    # -- boundary ledger -------------------------------------------------------------

    @staticmethod
    def _boundary_key(shard_a: int, shard_b: int) -> Tuple[int, int]:
        return (shard_a, shard_b) if shard_a <= shard_b else (shard_b, shard_a)

    def _ledger_add(self, path_id: int, start_shard: int, end_shard: int) -> None:
        key = self._boundary_key(start_shard, end_shard)
        self.boundary_ledger.setdefault(key, {})[path_id] = (start_shard, end_shard)

    def _ledger_discard(self, path_id: int, start_shard: int, end_shard: int) -> None:
        key = self._boundary_key(start_shard, end_shard)
        entries = self.boundary_ledger.get(key)
        if entries is not None and path_id in entries:
            del entries[path_id]
            if not entries:
                del self.boundary_ledger[key]

    def boundary_ledger_of(self, shard_id: int) -> Dict[int, Tuple[int, int]]:
        """One shard's view of the ledgers: every straddling path it co-owns.

        A straddling path is visible from both of its endpoint shards — the
        start owner holds the record, the end owner holds the end entry the
        stitching merge welds against.
        """
        view: Dict[int, Tuple[int, int]] = {}
        for (shard_a, shard_b), entries in self.boundary_ledger.items():
            if shard_id == shard_a or shard_id == shard_b:
                view.update(entries)
        return view

    # -- cross-shard corridor stitching ------------------------------------------------

    def stitch_epoch(self, mode: Optional[str] = None) -> List[CompositeCorridor]:
        """Stitch the current hot paths into composite corridors.

        Runs on demand after an epoch's stage-3 commit (the coordinator
        invalidates its cached corridor report at every commit and calls
        this on the first query that follows): every shard's hot fragments
        are gathered — straddling fragments,
        found by walking the per-boundary ledgers, are shipped to *both*
        endpoint owners — the per-shard weld passes run on the execution
        backend (:meth:`ExecutionBackend.map_stitch_buckets`), and the union
        of welds is chained into corridors.

        ``mode=None`` uses the router's configured default.  ``exact``
        reproduces the global stitch of the seed coordinator's hot paths bit
        for bit; ``off`` truncates at shard boundaries — by construction it
        is the exact chains cut at every cross-owner weld, so the deviation
        is exactly one extra corridor per reported ``boundary_welds`` (weld
        cycles included: the cycle break happens once, before the cut — the
        invariant the deviation harness pins).
        """
        mode = self.stitching if mode is None else mode
        if mode not in STITCHING_MODES:
            raise ConfigurationError(
                f"stitching mode must be one of {', '.join(STITCHING_MODES)}, got {mode!r}"
            )
        if self._stitcher is not None:
            # Delta mode: diff the current hot set into the incremental
            # stitcher (the same O(hot) gather the full path pays below) and
            # let it re-weld only the touched chains — no backend round trip
            # ships fragment tasks, untouched corridors are served from the
            # per-chain cache, and the report stays bit-for-bit equal to the
            # full stitch (the stitcher's exactness argument).  Owners are
            # resolved per call, so kd migrations need no invalidation.
            current: Dict[int, Tuple[MotionPath, int]] = {}
            for shard in self.shards:
                for path_id, hotness in shard.hotness.items():
                    if path_id not in self.owners:
                        continue  # hot entry without a live record (mirrors hot_paths())
                    current[path_id] = (shard.index.get(path_id).path, hotness)
            self._stitcher.sync(current)
            corridors, stats = self._stitcher.report(
                mode, lambda path_id: self.owners[path_id].shard_id
            )
            self.stitch_stats = {"mode": mode, **stats}
            return corridors
        straddling: Dict[int, Tuple[int, int]] = {}
        for entries in self.boundary_ledger.values():
            straddling.update(entries)
        #: path_id -> (path, hotness, owner shard id) for every hot fragment.
        info: Dict[int, Tuple[MotionPath, int, int]] = {}
        tasks: Dict[int, List[StitchFragment]] = {}
        for shard in self.shards:
            shard_id = shard.shard_id
            for path_id, hotness in shard.hotness.items():
                if path_id not in self.owners:
                    continue  # hot entry without a live record (mirrors hot_paths())
                path = shard.index.get(path_id).path
                end_shard = straddling.get(path_id, (shard_id, shard_id))[1]
                info[path_id] = (path, hotness, shard_id)
                tasks.setdefault(shard_id, []).append(
                    (
                        path_id,
                        path.start.x,
                        path.start.y,
                        path.end.x,
                        path.end.y,
                        True,
                        end_shard == shard_id,
                    )
                )
                if end_shard != shard_id:
                    tasks.setdefault(end_shard, []).append(
                        (path_id, path.start.x, path.start.y, path.end.x, path.end.y, False, True)
                    )
        runs = self.pipeline.backend.map_stitch_buckets(self, tasks) if tasks else []
        successor = successors_from_runs(runs)
        owner_of = lambda path_id: info[path_id][2]
        chains = chain_fragments(info, successor)
        # Both weld stats count the welds the exact chaining actually
        # *consumes* (one closing weld per cycle drops out first): that
        # makes ``welds`` layout-independent — a cycle broken inside one
        # shard's run and a cycle broken by the merge report the same
        # number — keeps ``fragments - welds == corridors`` in exact mode,
        # and makes ``len(off corridors) == len(exact) + boundary_welds``
        # hold unconditionally.
        welds_used = sum(len(chain) - 1 for chain in chains)
        boundary_welds = sum(
            1
            for chain in chains
            for predecessor_id, successor_id in zip(chain, chain[1:])
            if owner_of(predecessor_id) != owner_of(successor_id)
        )
        if mode == "off":
            chains = split_chains_at_boundaries(chains, owner_of)
        corridors = build_corridors(chains, lambda path_id: info[path_id][:2])
        self.stitch_stats = {
            "mode": mode,
            "fragments": len(info),
            "welds": welds_used,
            "boundary_welds": boundary_welds,
            "corridors": len(corridors),
            "multi_segment_corridors": sum(
                1 for corridor in corridors if corridor.num_segments > 1
            ),
        }
        return corridors

    # -- parallel decision commits ---------------------------------------------------

    def set_commit_position(self, position: Optional[int]) -> None:
        """Bind the calling worker thread to the submission position it replays."""
        self._commit_tls.position = position

    def begin_parallel_commit(self, batch_size: int) -> None:
        """Open a parallel commit for an epoch of ``batch_size`` states.

        Provisional ids are ``_commit_base + position``; the base leaves room
        below it for the final ids (at most one insert per state), so the
        provisional range collides with neither pre-epoch nor renumbered ids.
        Per-shard hotness trackers buffer their expiry-event pushes for the
        span of the commit (crossings may carry provisional ids).
        """
        self._commit_base = self._next_path_id + batch_size
        self._commit_log = []
        for shard in self.shards:
            shard.hotness.begin_deferred()

    def finish_parallel_commit(self) -> Dict[int, int]:
        """Renumber the commit's insertions into global submission order.

        Sorting the commit log by provisional id is sorting by submission
        position, which is exactly the order the serial replay allocates ids
        in.  Returns the provisional -> final id mapping.
        """
        mapping: Dict[int, int] = {}
        hotness_renames: Dict[int, Dict[int, int]] = {}
        for provisional_id, record in sorted(self._commit_log, key=lambda item: item[0]):
            final_id = self._next_path_id
            self._next_path_id += 1
            mapping[provisional_id] = final_id
            owner = self.owners.pop(provisional_id)
            start, end = record.path.start, record.path.end
            end_owner = self.shard_of(end)
            owner.index.remove_entry(provisional_id, start, is_start=True)
            end_owner.index.remove_entry(provisional_id, end, is_start=False)
            owner.index.unregister(provisional_id)
            record.path_id = final_id
            owner.index.register(record)
            owner.index.add_entry(record, is_start=True)
            end_owner.index.add_entry(record, is_start=False)
            self.owners[final_id] = owner
            if owner is not end_owner:
                self._ledger_discard(provisional_id, owner.shard_id, end_owner.shard_id)
                self._ledger_add(final_id, owner.shard_id, end_owner.shard_id)
            hotness_renames.setdefault(owner.shard_id, {})[provisional_id] = final_id
            if self._journal_enabled:
                self.journal.append(("r", provisional_id, final_id, owner.shard_id))
        # Every shard flushes its deferred expiry events (crossings happen on
        # shards that inserted nothing too); renames re-key counters and the
        # buffered events without touching the existing heaps.
        for shard in self.shards:
            shard.hotness.flush_deferred(hotness_renames.get(shard.shard_id, {}))
        self._commit_base = None
        self._commit_log = []
        return mapping

    # -- diagnostics ----------------------------------------------------------------

    @staticmethod
    def zero_pool_stats() -> Dict[str, int]:
        """The all-zero pool-cache outcome (full mode, empty epochs)."""
        return {
            "pools_total": 0,
            "pools_reused": 0,
            "pools_prefix_reused": 0,
            "pools_rebuilt": 0,
        }

    def delta_statistics(self) -> Dict[str, float]:
        """Lifetime incrementality counters of the delta pipeline.

        All zeros in ``full`` mode (stable schema): ``pools_reused`` /
        ``pools_prefix_reused`` / ``pools_rebuilt`` tally the pool cache's
        outcomes over every epoch, the rest are the incremental stitcher's
        totals — how many corridor chains were re-welded vs. reused, how many
        fragments entered and left the hot set, how many expiry events
        coalesced into a single chain teardown, and how many corridor objects
        were patched vs. served from cache.
        """
        statistics: Dict[str, float] = {
            "pools_total": 0,
            "pools_reused": 0,
            "pools_prefix_reused": 0,
            "pools_rebuilt": 0,
            "chains_rewelded": 0,
            "chains_reused": 0,
            "fragments_added": 0,
            "fragments_removed": 0,
            "expiry_coalesced": 0,
            "corridors_patched": 0,
            "corridors_reused": 0,
        }
        if self.pool_cache is not None:
            statistics["pools_reused"] = self.pool_cache.reused
            statistics["pools_prefix_reused"] = self.pool_cache.prefix_reused
            statistics["pools_rebuilt"] = self.pool_cache.rebuilt
            statistics["pools_total"] = (
                self.pool_cache.reused
                + self.pool_cache.prefix_reused
                + self.pool_cache.rebuilt
            )
        if self._stitcher is not None:
            statistics.update(self._stitcher.totals)
        return statistics

    def shard_statistics(self) -> Dict[str, float]:
        """Load-balance diagnostics: how evenly records spread over the fleet.

        Per-shard load is ``len(shard.index)`` — the records the shard
        *owns* (registered with the start owner).  A boundary-straddling
        path contributes exactly one record to exactly one shard: the end
        owner holds only an endpoint entry, never the record, so straddling
        paths are not double-counted even though both endpoint shards can
        see them through :meth:`boundary_ledger_of` (pinned by
        ``tests/test_rebalancing.py::TestShardStatistics``).
        ``straddling_paths`` likewise counts each straddling path once:
        every path lives in exactly one per-boundary ledger (keyed by the
        sorted shard pair).  ``imbalance`` is the ``max / mean`` load ratio
        the rebalance protocol thresholds on (1.0 = perfectly even).
        """
        sizes = [len(shard.index) for shard in self.shards]
        total = sum(sizes)
        mean = total / len(sizes) if sizes else 0.0
        statistics = {
            "num_shards": len(self.shards),
            "total_records": total,
            "max_shard_records": max(sizes) if sizes else 0,
            "min_shard_records": min(sizes) if sizes else 0,
            "mean_shard_records": mean,
            "imbalance": (max(sizes) / mean) if total else 1.0,
            "straddling_paths": sum(
                len(entries) for entries in self.boundary_ledger.values()
            ),
            "rebalances": self.rebalances,
            # Elastic-fleet signals: lifetime migration counters, whether a
            # budgeted migration is mid-flight, and the per-shard epoch-time
            # attribution (measured wall-clock spread over shards by bucket
            # share, EWMA-smoothed; the cost model consumes the underlying
            # deterministic ratios, these keys are the human-readable view).
            "elastic_migrations": self.migrations_started,
            "records_migrated": self.records_migrated_total,
            "migration_active": 1.0 if self._migration is not None else 0.0,
            "max_shard_epoch_seconds": (
                max(self._epoch_seconds_ewma.values())
                if self._epoch_seconds_ewma
                else 0.0
            ),
            "mean_shard_epoch_seconds": (
                sum(self._epoch_seconds_ewma.values()) / len(self._epoch_seconds_ewma)
                if self._epoch_seconds_ewma
                else 0.0
            ),
        }
        statistics.update(self.delta_statistics())
        return statistics
