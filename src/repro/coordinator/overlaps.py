"""Overlap analysis of reporting objects' Final Safe Areas (paper Section 5.3).

When several objects report in the same epoch and their FSAs overlap, choosing
a *shared* endpoint inside the overlap lets a single new vertex (and therefore
future motion paths through it) serve all of them, boosting hotness.  The
paper maintains a structure ``R_all`` holding the original FSAs and their
pairwise/multi-way intersections, each annotated with a *count*: the number of
FSAs participating in the overlap.

Computing every subset intersection is exponential; the structure here follows
the paper's intent with a practical incremental construction: regions are the
original FSAs plus intersections discovered by repeatedly intersecting new
FSAs with existing regions, keeping for each resulting rectangle the set of
contributing objects.  Queries used by SinglePath:

* :meth:`smallest_region_containing` — the region with the *fewest* members
  containing a vertex (its count bounds how many objects could adopt that
  vertex);
* :meth:`hottest_region_intersecting` — the region with the highest count that
  intersects a given FSA (source of the fabricated candidate vertex).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.core.geometry import Point, Rectangle

__all__ = ["OverlapRegion", "FsaOverlapStructure"]


@dataclass(frozen=True)
class OverlapRegion:
    """A rectangle formed by intersecting the FSAs of ``members``."""

    rectangle: Rectangle
    members: FrozenSet[int]

    @property
    def count(self) -> int:
        """Number of FSAs participating in this overlap (the region's 'hotness')."""
        return len(self.members)


class FsaOverlapStructure:
    """The ``R_all`` structure of Algorithm 2: FSAs and their overlaps with counts."""

    def __init__(self, max_regions: int = 10000) -> None:
        # Cap on the number of derived regions, guarding against pathological
        # inputs where thousands of FSAs overlap pairwise; the cap trades a
        # little candidate quality for bounded per-epoch work.
        self._max_regions = max_regions
        self._regions: Dict[FrozenSet[int], Rectangle] = {}

    @classmethod
    def build(cls, fsas: Dict[int, Rectangle], max_regions: int = 10000) -> "FsaOverlapStructure":
        """Build the structure from ``object_id -> FSA`` of all reporting objects."""
        structure = cls(max_regions)
        for object_id, fsa in fsas.items():
            structure.add(object_id, fsa)
        return structure

    def add(self, object_id: int, fsa: Rectangle) -> None:
        """Insert one object's FSA, deriving intersections with existing regions."""
        new_regions: Dict[FrozenSet[int], Rectangle] = {}
        singleton = frozenset([object_id])
        new_regions[singleton] = fsa
        if len(self._regions) < self._max_regions:
            for members, rectangle in self._regions.items():
                if object_id in members:
                    continue
                intersection = rectangle.intersection(fsa)
                if intersection is None:
                    continue
                combined = members | singleton
                existing = new_regions.get(combined)
                if existing is None or intersection.area < existing.area:
                    new_regions[combined] = intersection
                if len(self._regions) + len(new_regions) >= self._max_regions:
                    break
        for members, rectangle in new_regions.items():
            current = self._regions.get(members)
            if current is None or rectangle.area < current.area:
                self._regions[members] = rectangle

    # -- queries -------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._regions)

    def regions(self) -> Iterable[OverlapRegion]:
        """All stored regions (original FSAs and derived overlaps)."""
        return (
            OverlapRegion(rectangle, members) for members, rectangle in self._regions.items()
        )

    def smallest_region_containing(self, point: Point) -> Optional[OverlapRegion]:
        """Region with the smallest area containing ``point``.

        The smallest containing region is the deepest overlap the point lies
        in, and its count is the number of reporting objects whose FSA covers
        the point — exactly the potential extra hotness the paper adds to an
        available vertex (Lines 23-26 of Algorithm 2).
        """
        best: Optional[OverlapRegion] = None
        for members, rectangle in self._regions.items():
            if not rectangle.contains_point(point):
                continue
            if best is None or rectangle.area < best.rectangle.area or (
                rectangle.area == best.rectangle.area and len(members) > best.count
            ):
                best = OverlapRegion(rectangle, members)
        return best

    def hottest_region_intersecting(self, fsa: Rectangle) -> Optional[OverlapRegion]:
        """Region with the highest count that intersects ``fsa`` (Lines 27-32).

        Ties are broken towards smaller area so the fabricated vertex lands in
        the most specific shared region.
        """
        best: Optional[OverlapRegion] = None
        for members, rectangle in self._regions.items():
            if not rectangle.intersects(fsa):
                continue
            candidate = OverlapRegion(rectangle, members)
            if best is None:
                best = candidate
                continue
            if candidate.count > best.count or (
                candidate.count == best.count
                and candidate.rectangle.area < best.rectangle.area
            ):
                best = candidate
        return best

    def candidate_vertex_for(self, fsa: Rectangle) -> Optional[Tuple[Point, int]]:
        """Fabricated candidate vertex for an object with Final Safe Area ``fsa``.

        Returns the centroid of the hottest intersecting region together with
        that region's count, or ``None`` when nothing intersects.  The centroid
        of the *region itself* is used (Line 33 of Algorithm 2) rather than of
        its intersection with the object's FSA, so that every object touching
        the same overlap adopts the exact same vertex and future paths through
        it can be shared.
        """
        region = self.hottest_region_intersecting(fsa)
        if region is None:
            return None
        return (region.rectangle.center, region.count)
