"""Overlap analysis of reporting objects' Final Safe Areas (paper Section 5.3).

When several objects report in the same epoch and their FSAs overlap, choosing
a *shared* endpoint inside the overlap lets a single new vertex (and therefore
future motion paths through it) serve all of them, boosting hotness.  The
paper maintains a structure ``R_all`` holding the original FSAs and their
pairwise/multi-way intersections, each annotated with a *count*: the number of
FSAs participating in the overlap.

Computing every subset intersection is exponential; the structure here follows
the paper's intent with a practical incremental construction: regions are the
original FSAs plus intersections discovered by repeatedly intersecting new
FSAs with existing regions, keeping for each resulting rectangle the set of
contributing objects.  Because axis-aligned rectangles have Helly number two,
the incremental construction is *order-independent* below the region cap: the
stored regions are exactly the singletons plus every member subset whose
common intersection has positive area, and the rectangle of a subset is the
exact intersection of its members' FSAs regardless of insertion order.  That
set-function property is what lets a sharded coordinator build one structure
per shard from a halo-filtered FSA pool and still answer every query exactly
as the global structure would (see :mod:`repro.coordinator.sharding`).

Queries used by SinglePath:

* :meth:`smallest_region_containing` — the region with the *fewest* members
  containing a vertex (its count bounds how many objects could adopt that
  vertex);
* :meth:`hottest_region_intersecting` — the region with the highest count that
  intersects a given FSA (source of the fabricated candidate vertex).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.core.errors import ConfigurationError
from repro.core.geometry import Point, Rectangle
from repro.coordinator.columnar import RegionTable, resolve_kernel

__all__ = [
    "OverlapRegion",
    "FsaOverlapStructure",
    "SerializedRegion",
    "DerivedRegionCache",
    "OverlapPoolCache",
    "build_structures",
]

#: Wire format of one region: ``(sorted member ids, low x, low y, high x, high y)``.
#: Region order is preserved by the surrounding list, so a structure rebuilt
#: with :meth:`FsaOverlapStructure.from_serialized` iterates its regions in
#: exactly the original insertion order (tie-breaks depend on it).
SerializedRegion = Tuple[Tuple[int, ...], float, float, float, float]


class DerivedRegionCache:
    """Cross-pool cache of derived overlap regions, keyed by member set.

    Neighbouring halo pools overlap heavily, so shard-local builds used to
    re-derive the same boundary regions once per pool (the redundancy called
    out in ROADMAP and measured by the overlap-build benchmark table).  The
    rectangle of a member set is the exact intersection of its members' FSAs
    — componentwise ``max`` of lows and ``min`` of highs, associative and
    commutative, so the result is bit-identical however the derivation is
    bracketed — which makes it safely cacheable *across* pools, provided
    every pool maps an object id to the same FSA (one epoch's pools do;
    :func:`build_structures` verifies the invariant before enabling the
    cache).  ``None`` entries record empty-or-degenerate intersections, so
    negative results are shared too.  ``hits`` / ``misses`` are exposed for
    the benchmark table and the cache-hit regression tests.
    """

    __slots__ = ("_table", "hits", "misses")

    _MISSING = object()

    def __init__(self) -> None:
        self._table: Dict[FrozenSet[int], Optional[Rectangle]] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._table)

    def derive(
        self, combined: FrozenSet[int], rectangle: Rectangle, fsa: Rectangle
    ) -> Optional[Rectangle]:
        """The region of ``combined`` = ``rectangle`` (the stored region of
        ``combined`` minus the new member) intersected with ``fsa``; ``None``
        when empty or degenerate (not a usable overlap)."""
        cached = self._table.get(combined, self._MISSING)
        if cached is not self._MISSING:
            self.hits += 1
            return cached
        self.misses += 1
        intersection = rectangle.intersection(fsa)
        if intersection is not None and intersection.is_degenerate():
            intersection = None
        self._table[combined] = intersection
        return intersection


@dataclass(frozen=True)
class OverlapRegion:
    """A rectangle formed by intersecting the FSAs of ``members``."""

    rectangle: Rectangle
    members: FrozenSet[int]

    @property
    def count(self) -> int:
        """Number of FSAs participating in this overlap (the region's 'hotness')."""
        return len(self.members)


class FsaOverlapStructure:
    """The ``R_all`` structure of Algorithm 2: FSAs and their overlaps with counts."""

    #: Region count below which the columnar kernel answers queries with the
    #: scalar loops anyway: building (or consulting) an array table for a
    #: handful of regions costs more than it saves, and both paths are
    #: bit-for-bit equal so the crossover is purely a performance knob.
    _COLUMNAR_MIN_REGIONS = 8

    def __init__(self, max_regions: int = 10000, kernel: str = "object") -> None:
        # Hard cap on the number of stored regions, guarding against
        # pathological inputs where thousands of FSAs overlap pairwise; the
        # cap trades a little candidate quality for bounded per-epoch work.
        # ``len(self) <= max_regions`` always holds (see :meth:`add`).
        self._max_regions = max_regions
        self._regions: Dict[FrozenSet[int], Rectangle] = {}
        self._kernel = resolve_kernel(kernel)
        # Lazily built columnar query table (see
        # :class:`repro.coordinator.columnar.RegionTable`).  Mutable derived
        # state: invalidated by :meth:`add` and *never* shared by
        # :meth:`snapshot` — a snapshot aliasing a live table would serve
        # regions its own dict no longer matches once either copy grows.
        self._table: Optional[RegionTable] = None

    @classmethod
    def build(
        cls,
        fsas: Mapping[int, Rectangle],
        max_regions: int = 10000,
        base: Optional["FsaOverlapStructure"] = None,
        cache: Optional[DerivedRegionCache] = None,
        kernel: str = "object",
    ) -> "FsaOverlapStructure":
        """Build the structure from ``object_id -> FSA`` of all reporting objects.

        ``base`` resumes from a snapshot of an already-built structure instead
        of starting empty — the shared-prefix path of :func:`build_structures`
        (neighbouring shards see almost the same halo pool, so the common
        prefix of their pools is built once).  ``cache`` shares derived-region
        intersections with other builds over the same epoch's FSAs (see
        :class:`DerivedRegionCache`); it never changes the result, only skips
        recomputing intersections another pool already derived.
        """
        structure = base.snapshot() if base is not None else cls(max_regions, kernel=kernel)
        for object_id, fsa in fsas.items():
            structure.add(object_id, fsa, cache=cache)
        return structure

    def snapshot(self) -> "FsaOverlapStructure":
        """A cheap independent copy (regions are immutable, the dict is not).

        The clone shares no mutable state with the original: the region dict
        is copied and the derived columnar table is left unbuilt rather than
        aliased.  Prefix resumption in :class:`OverlapPoolCache` depends on
        this — it extends a snapshot of a *cached* structure, and a verbatim
        hit later must return that cached entry un-extended.
        """
        clone = FsaOverlapStructure(self._max_regions, kernel=self._kernel)
        clone._regions = dict(self._regions)
        return clone

    def add(
        self,
        object_id: int,
        fsa: Rectangle,
        cache: Optional[DerivedRegionCache] = None,
    ) -> None:
        """Insert one object's FSA, deriving intersections with existing regions.

        Two deterministic guards bound the derivation:

        * **Zero-area intersections are dropped.**  Edge-adjacent FSAs touch in
          a degenerate rectangle; storing it would let the zero area win every
          ``area <`` tie-break and surface as a fabricated-vertex region even
          though no object can be *inside* it.  The singleton region of the FSA
          itself is always kept, degenerate or not — it represents the FSA.
        * **``max_regions`` is a hard bound with insertion-order priority.**
          Derivation stops once the budget is exhausted and the final merge
          never inserts a new member set into a full table (refinements of an
          already-stored member set are always applied — they do not grow it).
          Earlier-inserted FSAs therefore keep their derived overlaps when a
          flood of late arrivals would otherwise overflow the table, and
          ``len(self) <= max_regions`` holds unconditionally.

        When the cap binds, a halo-filtered shard-local build may keep a
        different subset of regions than the global build (both are
        deterministic); below the cap the stored set is order-independent.
        """
        self._table = None  # derived query table no longer matches the dict
        singleton = frozenset([object_id])
        new_regions: Dict[FrozenSet[int], Rectangle] = {singleton: fsa}
        for members, rectangle in self._regions.items():
            if len(self._regions) + len(new_regions) >= self._max_regions:
                break
            if object_id in members:
                continue
            if cache is not None:
                combined = members | singleton
                intersection = cache.derive(combined, rectangle, fsa)
                if intersection is None:
                    continue
            else:
                # The hot path computes the (4-comparison) intersection first
                # and builds the combined member set only for real overlaps.
                intersection = rectangle.intersection(fsa)
                if intersection is None or intersection.is_degenerate():
                    continue
                combined = members | singleton
            existing = new_regions.get(combined)
            if existing is None or intersection.area < existing.area:
                new_regions[combined] = intersection
        for members, rectangle in new_regions.items():
            current = self._regions.get(members)
            if current is not None:
                if rectangle.area < current.area:
                    self._regions[members] = rectangle
            elif len(self._regions) < self._max_regions:
                self._regions[members] = rectangle

    # -- serialization ---------------------------------------------------------------

    def serialized(self) -> List[SerializedRegion]:
        """Flat region list for shipping a worker-built structure to the parent."""
        return [
            (tuple(sorted(members)), rect.low.x, rect.low.y, rect.high.x, rect.high.y)
            for members, rect in self._regions.items()
        ]

    @classmethod
    def from_serialized(
        cls,
        regions: Sequence[SerializedRegion],
        max_regions: int = 10000,
        kernel: str = "object",
    ) -> "FsaOverlapStructure":
        """Rebuild a structure from :meth:`serialized` output, preserving order."""
        structure = cls(max_regions, kernel=kernel)
        for members, low_x, low_y, high_x, high_y in regions:
            structure._regions[frozenset(members)] = Rectangle(
                Point(low_x, low_y), Point(high_x, high_y)
            )
        return structure

    # -- queries -------------------------------------------------------------------

    def _query_table(self) -> Optional[RegionTable]:
        """The columnar query table, built lazily; ``None`` on the scalar path."""
        if self._kernel != "columnar" or len(self._regions) < self._COLUMNAR_MIN_REGIONS:
            return None
        if self._table is None:
            self._table = RegionTable(self._regions)
        return self._table

    def __len__(self) -> int:
        return len(self._regions)

    def regions(self) -> Iterable[OverlapRegion]:
        """All stored regions (original FSAs and derived overlaps)."""
        return (
            OverlapRegion(rectangle, members) for members, rectangle in self._regions.items()
        )

    def smallest_region_containing(self, point: Point) -> Optional[OverlapRegion]:
        """Region with the smallest area containing ``point``.

        The smallest containing region is the deepest overlap the point lies
        in, and its count is the number of reporting objects whose FSA covers
        the point — exactly the potential extra hotness the paper adds to an
        available vertex (Lines 23-26 of Algorithm 2).
        """
        table = self._query_table()
        if table is not None:
            winner = table.smallest_containing(point)
            if winner is None:
                return None
            return OverlapRegion(table.rects[winner], table.members[winner])
        best: Optional[OverlapRegion] = None
        for members, rectangle in self._regions.items():
            if not rectangle.contains_point(point):
                continue
            if best is None or rectangle.area < best.rectangle.area or (
                rectangle.area == best.rectangle.area and len(members) > best.count
            ):
                best = OverlapRegion(rectangle, members)
        return best

    def hottest_region_intersecting(self, fsa: Rectangle) -> Optional[OverlapRegion]:
        """Region with the highest count that intersects ``fsa`` (Lines 27-32).

        Ties are broken towards smaller area so the fabricated vertex lands in
        the most specific shared region.
        """
        table = self._query_table()
        if table is not None:
            winner = table.hottest_intersecting(fsa)
            if winner is None:
                return None
            return OverlapRegion(table.rects[winner], table.members[winner])
        best: Optional[OverlapRegion] = None
        for members, rectangle in self._regions.items():
            if not rectangle.intersects(fsa):
                continue
            candidate = OverlapRegion(rectangle, members)
            if best is None:
                best = candidate
                continue
            if candidate.count > best.count or (
                candidate.count == best.count
                and candidate.rectangle.area < best.rectangle.area
            ):
                best = candidate
        return best

    def candidate_vertex_for(self, fsa: Rectangle) -> Optional[Tuple[Point, int]]:
        """Fabricated candidate vertex for an object with Final Safe Area ``fsa``.

        Returns the centroid of the hottest intersecting region together with
        that region's count, or ``None`` when nothing intersects.  The centroid
        of the *region itself* is used (Line 33 of Algorithm 2) rather than of
        its intersection with the object's FSA, so that every object touching
        the same overlap adopts the exact same vertex and future paths through
        it can be shared.
        """
        region = self.hottest_region_intersecting(fsa)
        if region is None:
            return None
        return (region.rectangle.center, region.count)


#: Content address of one halo pool: its ``(object_id, FSA coordinates)``
#: entries *in pool order*.  Region insertion order feeds the structure's
#: area tie-breaks, so only an order-identical pool may share a structure.
PoolFingerprint = Tuple[Tuple[int, float, float, float, float], ...]


def pool_fingerprint(pool: Mapping[int, Rectangle]) -> PoolFingerprint:
    """The content address of a halo pool (see :class:`OverlapPoolCache`)."""
    return tuple(
        (object_id, fsa.low.x, fsa.low.y, fsa.high.x, fsa.high.y)
        for object_id, fsa in pool.items()
    )


class OverlapPoolCache:
    """Cross-epoch, content-addressed cache of built halo-pool structures.

    :func:`build_structures` already shares work *within* one epoch's pools;
    under low churn the far bigger redundancy is *across* epochs — most
    shards' halo pools repeat verbatim from one epoch to the next, and the
    rest usually extend a previous pool by a few late arrivals.  The delta
    pipeline (``epoch_mode="delta"``) resolves every pool here first and
    ships only the misses to the execution backend's workers.

    Three outcomes per pool, every one bit-identical to a from-scratch build:

    * **reused** — the fingerprint matches a cached pool exactly; the cached
      structure is returned as-is (structures are read-only to the decision
      stage, exactly like the verbatim-repeat sharing inside
      :func:`build_structures`).
    * **prefix_reused** — a cached pool is an order-preserving *prefix* of
      this one; the tail is built parent-side resuming from the cached
      structure's snapshot (:meth:`FsaOverlapStructure.build` with ``base``),
      the same shared-prefix construction the intra-epoch builder uses.
    * **rebuilt** — no usable entry; the pool is built from scratch (on the
      backend) and stored for future epochs.

    Keying on content rather than shard ids means kd rebalances need no
    invalidation: a migrated shard whose halo pool happens to match any pool
    ever built still hits.  The cache is LRU-bounded (``capacity`` pools) so
    long replays with high churn cannot grow it without bound.
    """

    def __init__(self, capacity: int = 64, kernel: str = "object") -> None:
        if capacity <= 0:
            raise ConfigurationError(f"pool cache capacity must be positive, got {capacity}")
        self._capacity = capacity
        self._kernel = resolve_kernel(kernel)
        self._table: "OrderedDict[PoolFingerprint, FsaOverlapStructure]" = OrderedDict()
        # Lifetime totals, surfaced by ``shard_statistics()``.
        self.reused = 0
        self.prefix_reused = 0
        self.rebuilt = 0

    def __len__(self) -> int:
        return len(self._table)

    def resolve(
        self, pools: Sequence[Mapping[int, Rectangle]], max_regions: int = 10000
    ) -> Tuple[List[Optional[FsaOverlapStructure]], List[int], Dict[str, int]]:
        """Serve what the cache can; report the rest as misses.

        Returns ``(structures, miss_indexes, stats)`` where ``structures``
        holds a ready structure per pool except at the ``miss_indexes``
        (``None`` there — the caller builds those, on workers, and hands them
        back via :meth:`store`).  ``stats`` is the per-call outcome tally
        feeding :class:`repro.coordinator.delta.EpochDelta`.
        """
        structures: List[Optional[FsaOverlapStructure]] = [None] * len(pools)
        miss_indexes: List[int] = []
        stats = {
            "pools_total": len(pools),
            "pools_reused": 0,
            "pools_prefix_reused": 0,
            "pools_rebuilt": 0,
        }
        for index, pool in enumerate(pools):
            fingerprint = pool_fingerprint(pool)
            cached = self._table.get(fingerprint)
            if cached is not None:
                self._table.move_to_end(fingerprint)
                structures[index] = cached
                stats["pools_reused"] += 1
                self.reused += 1
                continue
            resumed = self._resume_from_prefix(fingerprint, pool, max_regions)
            if resumed is not None:
                self._insert(fingerprint, resumed)
                structures[index] = resumed
                stats["pools_prefix_reused"] += 1
                self.prefix_reused += 1
                continue
            miss_indexes.append(index)
            stats["pools_rebuilt"] += 1
            self.rebuilt += 1
        return structures, miss_indexes, stats

    def _resume_from_prefix(
        self,
        fingerprint: PoolFingerprint,
        pool: Mapping[int, Rectangle],
        max_regions: int,
    ) -> Optional[FsaOverlapStructure]:
        """Build from the longest cached proper prefix, or ``None`` without one."""
        for cut in range(len(fingerprint) - 1, 0, -1):
            base = self._table.get(fingerprint[:cut])
            if base is None:
                continue
            tail = {
                entry[0]: pool[entry[0]] for entry in fingerprint[cut:]
            }
            # ``build`` resumes from ``base.snapshot()`` — never from the
            # cached structure itself — so extending the tail here cannot
            # mutate the cached entry (pinned by tests/test_delta_properties).
            return FsaOverlapStructure.build(
                tail, max_regions, base=base, kernel=self._kernel
            )
        return None

    def store(
        self,
        pools: Sequence[Mapping[int, Rectangle]],
        structures: Sequence[FsaOverlapStructure],
    ) -> None:
        """Remember this epoch's built structures for future epochs."""
        for pool, structure in zip(pools, structures):
            self._insert(pool_fingerprint(pool), structure)

    def _insert(self, fingerprint: PoolFingerprint, structure: FsaOverlapStructure) -> None:
        self._table[fingerprint] = structure
        self._table.move_to_end(fingerprint)
        while len(self._table) > self._capacity:
            self._table.popitem(last=False)


def _pools_are_consistent(pools: Sequence[Mapping[int, Rectangle]]) -> bool:
    """Whether every pool maps each object id to the identical FSA.

    The derived-region cache keys intersections by member set alone, which
    is only sound under this invariant (true for the pools of one epoch's
    overlap plan, all filtered from the same ``fsas`` map).  Checked in one
    dict probe per pool entry.
    """
    canonical: Dict[int, Rectangle] = {}
    for pool in pools:
        for object_id, fsa in pool.items():
            existing = canonical.setdefault(object_id, fsa)
            if existing != fsa:
                return False
    return True


def build_structures(
    pools: Sequence[Mapping[int, Rectangle]],
    max_regions: int = 10000,
    cache: Optional[DerivedRegionCache] = None,
    kernel: str = "object",
) -> List[FsaOverlapStructure]:
    """Build one structure per FSA pool, sharing work across related pools.

    The shared-prefix builder behind the shard-local overlap stage: pools are
    processed in sorted key order so that a pool repeating another verbatim
    reuses the same (read-only) structure object, and a pool extending another
    pool's *prefix* resumes from its snapshot instead of rebuilding from
    scratch.  Passing a :class:`DerivedRegionCache` additionally shares
    *derived regions* across pools that overlap without a common prefix
    (e.g. neighbouring halo pools ``(1,2,3)`` and ``(2,3,4)`` both derive
    the ``{2,3}`` overlap).  All three shortcuts are bit-identical to an
    independent build — :meth:`FsaOverlapStructure.add` is a pure function
    of the current region table and every derived rectangle is a pure
    function of its member set, so sharing reproduces the sequential build
    exactly, hard cap included.

    The cache is opt-in rather than default: measurement (the cache line in
    ``benchmarks/results/sharding_scaling.txt``) shows halo pools share
    roughly two thirds of their derivations, but at epoch-sized pools the
    per-pair member-set hashing costs more than the four-comparison
    intersection it saves, so the epoch pipeline builds cacheless and the
    cache exists for workloads with expensive derivation profiles (and to
    keep the redundancy measurable).

    Pools must be id→FSA *consistent* (each object id maps to the identical
    FSA wherever it appears — true by construction for one epoch's overlap
    plan): pool dedup and prefix resume key on id tuples alone, and the
    region cache keys on member sets (checked when a cache is supplied; the
    dedup/prefix sharing has assumed it since PR 3).
    """
    if cache is not None and not _pools_are_consistent(pools):
        raise ConfigurationError(
            "derived-region caching requires id->FSA-consistent pools"
        )
    keys = [tuple(pool) for pool in pools]
    structures: List[Optional[FsaOverlapStructure]] = [None] * len(pools)
    # Stack of built (key, structure) pairs forming a prefix chain: popping
    # until the top is a prefix of the current key leaves the *longest*
    # already-built prefix, so sibling pools diverging in their tails (e.g.
    # (1,2,3) then (1,2,4)) still resume from the shared (1,2) snapshot
    # instead of rebuilding from scratch.
    stack: List[Tuple[Tuple[int, ...], FsaOverlapStructure]] = []
    for index in sorted(range(len(pools)), key=lambda i: keys[i]):
        key, pool = keys[index], pools[index]
        while stack and key[: len(stack[-1][0])] != stack[-1][0]:
            stack.pop()
        if stack and key == stack[-1][0]:
            structures[index] = stack[-1][1]
            continue
        if stack:
            base_key, base = stack[-1]
            tail = {object_id: pool[object_id] for object_id in key[len(base_key):]}
            structure = FsaOverlapStructure.build(
                tail, max_regions, base=base, cache=cache, kernel=kernel
            )
        else:
            structure = FsaOverlapStructure.build(pool, max_regions, cache=cache, kernel=kernel)
        structures[index] = structure
        stack.append((key, structure))
    return structures
