"""Sliding-window hotness maintenance (paper Section 5.2).

The hotness of a motion path is the number of crossings recorded during the
last ``W`` time units.  The tracker keeps a hash table ``path_id -> hotness``
and a min-heap *event queue* of ``(expiry_time, path_id)`` tuples.  Recording
a crossing that ended at ``t_e`` increments the counter and schedules a
decrement at ``t_e + W``; advancing the clock pops expired events, decrements
the counters and reports the paths whose hotness dropped to zero so the caller
can evict them from the grid index.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.errors import ConfigurationError, CoordinatorError

__all__ = ["HotnessDeltaLog", "HotnessTracker"]


class HotnessDeltaLog:
    """Per-epoch event log of one tracker's hotness transitions.

    Feeds :class:`repro.coordinator.delta.EpochDelta`: each crossing lands in
    ``newly_hot`` (hotness ``0 -> 1``) or ``touched`` (``n -> n+1``), each
    expiry in ``decayed`` (counter survived) or ``vanished`` (dropped to
    zero).  Crossings may be recorded under provisional path ids during a
    parallel commit; :meth:`rename` re-keys them alongside the tracker's
    counters, so a drained log always speaks final ids.  Migration adoption
    (:meth:`HotnessTracker.adopt_count` / ``adopt_event``) is deliberately
    not logged — a rebalance moves counters between shards without changing
    any path's global hotness.
    """

    __slots__ = ("newly_hot", "touched", "decayed", "vanished")

    def __init__(self) -> None:
        self.newly_hot: List[int] = []
        self.touched: List[int] = []
        self.decayed: List[int] = []
        self.vanished: List[int] = []

    def rename(self, mapping: Dict[int, int]) -> None:
        """Re-key provisional path ids after a parallel-commit renumbering."""
        if not mapping:
            return
        for events in (self.newly_hot, self.touched, self.decayed, self.vanished):
            for position, path_id in enumerate(events):
                events[position] = mapping.get(path_id, path_id)

    def merge_from(self, other: "HotnessDeltaLog") -> None:
        """Append another tracker's events (the sharded fleet's union)."""
        self.newly_hot.extend(other.newly_hot)
        self.touched.extend(other.touched)
        self.decayed.extend(other.decayed)
        self.vanished.extend(other.vanished)


class HotnessTracker:
    """Hash table + expiry event queue implementing the sliding window."""

    def __init__(self, window: int) -> None:
        if window <= 0:
            raise ConfigurationError(f"window length must be positive, got {window}")
        self.window = window
        self._hotness: Dict[int, int] = {}
        self._events: List[Tuple[int, int]] = []  # (expiry_time, path_id) min-heap
        self._deferred: Optional[List[Tuple[int, int]]] = None
        self._delta_log: Optional[HotnessDeltaLog] = None

    # -- delta logging (epoch_mode="delta") ----------------------------------------

    def enable_delta_log(self) -> None:
        """Start logging hotness transitions for per-epoch delta assembly."""
        if self._delta_log is None:
            self._delta_log = HotnessDeltaLog()

    def drain_delta_log(self) -> HotnessDeltaLog:
        """Return the events logged since the last drain and start a fresh log."""
        if self._delta_log is None:
            raise CoordinatorError("hotness delta log was never enabled")
        drained = self._delta_log
        self._delta_log = HotnessDeltaLog()
        return drained

    def absorb_delta_log(self, log: HotnessDeltaLog) -> None:
        """Merge another tracker's pending delta-log events into this log.

        Used by the elastic fleet handoff: when a migration replaces the
        shard objects mid-epoch-boundary, the epoch's already-logged hotness
        transitions must survive the trackers that recorded them — the new
        fleet absorbs them so the epoch's delta assembly still sees every
        event.  The delta assembler sorts the merged categories, so the
        interleaving carries no information.
        """
        if self._delta_log is None:
            raise CoordinatorError("hotness delta log was never enabled")
        self._delta_log.merge_from(log)

    # -- recording --------------------------------------------------------------

    def record_crossing(self, path_id: int, t_end: int) -> int:
        """Record that an object finished crossing ``path_id`` at time ``t_end``.

        Returns the updated hotness of the path.
        """
        new_hotness = self._hotness.get(path_id, 0) + 1
        self._hotness[path_id] = new_hotness
        if self._delta_log is not None:
            if new_hotness == 1:
                self._delta_log.newly_hot.append(path_id)
            else:
                self._delta_log.touched.append(path_id)
        if self._deferred is not None:
            self._deferred.append((t_end + self.window, path_id))
        else:
            heapq.heappush(self._events, (t_end + self.window, path_id))
        return new_hotness

    # -- expiry -------------------------------------------------------------------

    def advance_time(self, now: int) -> List[int]:
        """Expire crossings whose interval fell outside the window at time ``now``.

        Returns the ids of paths whose hotness reached zero (and were removed
        from the hash table); the caller is responsible for deleting them from
        the spatial index.
        """
        vanished: List[int] = []
        while self._events and self._events[0][0] <= now:
            _expiry, path_id = heapq.heappop(self._events)
            current = self._hotness.get(path_id)
            if current is None:
                raise CoordinatorError(
                    f"expiry event for path {path_id} which has no hotness entry"
                )
            if current <= 1:
                del self._hotness[path_id]
                vanished.append(path_id)
                if self._delta_log is not None:
                    self._delta_log.vanished.append(path_id)
            else:
                self._hotness[path_id] = current - 1
                if self._delta_log is not None:
                    self._delta_log.decayed.append(path_id)
        return vanished

    # -- deferred recording (parallel epoch commits) ------------------------------

    def begin_deferred(self) -> None:
        """Buffer subsequent crossings' expiry events instead of heap-pushing.

        Opened by the sharded router for the span of a parallel epoch commit:
        crossings may be recorded under provisional path ids that are
        renumbered when the commit finishes, and expiry never runs mid-epoch,
        so the heap pushes can wait for :meth:`flush_deferred`.  Hotness
        counters still update immediately (same-epoch decisions read them).
        """
        self._deferred = []

    def flush_deferred(self, mapping: Dict[int, int]) -> None:
        """Close the deferred span, re-keying provisional ids to final ones.

        ``mapping`` holds the provisional -> final renames of the finished
        commit (see
        :meth:`repro.coordinator.sharding.ShardRouter.finish_parallel_commit`);
        counters and the buffered events are re-keyed in O(renames + buffered)
        — the existing heap is never scanned — and the events are pushed.
        Heap pops drain in sorted ``(expiry, path_id)`` order regardless of
        push order, so deferral is not observable.
        """
        deferred = self._deferred if self._deferred is not None else []
        self._deferred = None
        if self._delta_log is not None:
            self._delta_log.rename(mapping)
        for old_id, new_id in mapping.items():
            if old_id in self._hotness:
                self._hotness[new_id] = self._hotness.pop(old_id)
        for expiry, path_id in deferred:
            heapq.heappush(self._events, (expiry, mapping.get(path_id, path_id)))

    # -- migration (shard rebalancing) ---------------------------------------------

    def export_state(self) -> Tuple[Dict[int, int], List[Tuple[int, int]]]:
        """Hand off all counters and pending expiry events, leaving the tracker empty.

        Used by the shard rebalance protocol: the returned ``(counters,
        events)`` are re-adopted by the migrated paths' new owner trackers
        via :meth:`adopt_count` / :meth:`adopt_event`.  Must not be called
        inside a deferred span (a parallel commit is never open at a
        rebalance point).
        """
        if self._deferred is not None:
            raise CoordinatorError("cannot export hotness state inside a deferred span")
        counters, events = self._hotness, self._events
        self._hotness, self._events = {}, []
        return counters, events

    def adopt_count(self, path_id: int, hotness: int) -> None:
        """Absorb a migrated hotness counter (the path's events follow separately)."""
        if hotness:
            self._hotness[path_id] = self._hotness.get(path_id, 0) + hotness

    def adopt_event(self, expiry: int, path_id: int) -> None:
        """Absorb one migrated expiry event, preserving the heap invariant."""
        heapq.heappush(self._events, (expiry, path_id))

    # -- queries -------------------------------------------------------------------

    def hotness(self, path_id: int) -> int:
        """Current hotness of ``path_id`` (zero when unknown)."""
        return self._hotness.get(path_id, 0)

    def __contains__(self, path_id: int) -> bool:
        return path_id in self._hotness

    def __len__(self) -> int:
        """Number of paths with non-zero hotness."""
        return len(self._hotness)

    @property
    def pending_events(self) -> int:
        """Number of scheduled expiry events (one per recorded crossing)."""
        return len(self._events)

    def items(self) -> Iterable[Tuple[int, int]]:
        """Iterate over ``(path_id, hotness)`` pairs."""
        return self._hotness.items()

    def total_crossings(self) -> int:
        """Sum of hotness over all live paths."""
        return sum(self._hotness.values())
